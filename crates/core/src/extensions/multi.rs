//! §6.3.5 — multiple aggregates visualized simultaneously (Problem 8).
//!
//! For `SELECT X, AVG(Y), AVG(Z) … GROUP BY X`, both orderings (by `Y` and
//! by `Z`) must be correct, each with overall failure probability `δ`.
//! Following the paper's solution:
//!
//! 1. run IFOCUS on `Y` with budget `δ/2`, while *also* folding every drawn
//!    tuple's `Z` into running `Z`-estimates (free piggyback samples);
//! 2. once `Y` has no active groups, run IFOCUS on `Z` with budget `δ/2`,
//!    **starting from the piggybacked estimates** — each group enters
//!    phase 2 with whatever sample count it accumulated, so the second
//!    phase usually needs far fewer fresh draws than a from-scratch run.
//!
//! Because the groups enter phase 2 with heterogeneous sample counts, the
//! phase-2 loop uses per-group ε values `ε(m_i)`; the anytime schedule is
//! valid at every per-group `m`, so correctness is unaffected.

use crate::config::AlgoConfig;
use rand::RngCore;
use rapidviz_stats::{Interval, IntervalSet, RunningMean, SamplingMode};

/// A group source producing paired measures `(y, z)` for one tuple.
pub trait PairGroupSource {
    /// Display label.
    fn label(&self) -> String;

    /// Population size.
    fn len(&self) -> u64;

    /// Whether the group has no members.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Draws one tuple's `(y, z)` pair.
    fn sample_pair(&mut self, rng: &mut dyn RngCore, mode: SamplingMode) -> Option<(f64, f64)>;

    /// True means `(µ_y, µ_z)`, when known (evaluation only).
    fn true_means(&self) -> Option<(f64, f64)> {
        None
    }
}

/// A materialized pair group.
#[derive(Debug, Clone)]
pub struct VecPairGroup {
    label: String,
    pairs: Vec<(f64, f64)>,
    drawn: usize,
}

impl VecPairGroup {
    /// Creates a group from `(y, z)` tuples.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty.
    #[must_use]
    pub fn new(label: impl Into<String>, pairs: Vec<(f64, f64)>) -> Self {
        assert!(!pairs.is_empty(), "a group must have at least one member");
        Self {
            label: label.into(),
            pairs,
            drawn: 0,
        }
    }
}

impl PairGroupSource for VecPairGroup {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn len(&self) -> u64 {
        self.pairs.len() as u64
    }

    fn sample_pair(&mut self, rng: &mut dyn RngCore, mode: SamplingMode) -> Option<(f64, f64)> {
        use rand::Rng;
        match mode {
            SamplingMode::WithReplacement => Some(self.pairs[rng.gen_range(0..self.pairs.len())]),
            SamplingMode::WithoutReplacement => {
                if self.drawn == self.pairs.len() {
                    return None;
                }
                let j = rng.gen_range(self.drawn..self.pairs.len());
                self.pairs.swap(self.drawn, j);
                let p = self.pairs[self.drawn];
                self.drawn += 1;
                Some(p)
            }
        }
    }

    fn true_means(&self) -> Option<(f64, f64)> {
        let n = self.pairs.len() as f64;
        let (sy, sz) = self
            .pairs
            .iter()
            .fold((0.0, 0.0), |(a, b), (y, z)| (a + y, b + z));
        Some((sy / n, sz / n))
    }
}

/// Result of a multi-aggregate run.
#[derive(Debug, Clone)]
pub struct MultiAggregateResult {
    /// Group labels.
    pub labels: Vec<String>,
    /// Final `AVG(Y)` estimates.
    pub y_estimates: Vec<f64>,
    /// Final `AVG(Z)` estimates.
    pub z_estimates: Vec<f64>,
    /// Samples drawn per group across both phases.
    pub samples_per_group: Vec<u64>,
    /// Whether either phase hit its round cap.
    pub truncated: bool,
}

impl MultiAggregateResult {
    /// Total sample complexity.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.samples_per_group.iter().sum()
    }
}

/// IFOCUS over two aggregates of the same group-by (Problem 8).
#[derive(Debug, Clone)]
pub struct IFocusMultiAggregate {
    config: AlgoConfig,
}

impl IFocusMultiAggregate {
    /// Creates the algorithm; the configured `δ` is split `δ/2 + δ/2`
    /// between the two orderings internally.
    #[must_use]
    pub fn new(config: AlgoConfig) -> Self {
        Self { config }
    }

    /// Runs both phases.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn run<G: PairGroupSource>(
        &self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> MultiAggregateResult {
        assert!(!groups.is_empty(), "need at least one group");
        let k = groups.len();
        let mut half = self.config.clone();
        half.delta /= 2.0;
        let schedule = half.schedule(k);
        let labels: Vec<String> = groups.iter().map(PairGroupSource::label).collect();
        let sizes: Vec<u64> = groups.iter().map(PairGroupSource::len).collect();
        let n_max = sizes.iter().copied().max().unwrap_or(1);
        let resolution_eps = self.config.resolution_epsilon();

        let mut y_est = vec![RunningMean::new(); k];
        let mut z_est = vec![RunningMean::new(); k];
        let mut counts = vec![0u64; k];
        let mut truncated = false;

        // Phase 1: drive on Y, piggyback Z.
        let mut active = vec![true; k];
        let mut m = 1u64;
        for i in 0..k {
            if let Some((y, z)) = groups[i].sample_pair(rng, self.config.mode) {
                y_est[i].push(y);
                z_est[i].push(z);
                counts[i] += 1;
            }
        }
        loop {
            Self::deactivate(
                &schedule,
                &y_est,
                &counts,
                &mut active,
                resolution_eps,
                n_max,
            );
            if !active.iter().any(|&a| a) {
                break;
            }
            if m >= self.config.max_rounds {
                truncated = true;
                break;
            }
            m += 1;
            let mut progressed = false;
            for i in 0..k {
                if active[i] {
                    if let Some((y, z)) = groups[i].sample_pair(rng, self.config.mode) {
                        y_est[i].push(y);
                        z_est[i].push(z);
                        counts[i] += 1;
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break; // every active group exhausted
            }
        }

        // Phase 2: drive on Z, starting from the piggybacked estimates and
        // heterogeneous per-group counts.
        let mut active = vec![true; k];
        let mut rounds2 = 0u64;
        loop {
            Self::deactivate(
                &schedule,
                &z_est,
                &counts,
                &mut active,
                resolution_eps,
                n_max,
            );
            if !active.iter().any(|&a| a) {
                break;
            }
            if rounds2 >= self.config.max_rounds {
                truncated = true;
                break;
            }
            rounds2 += 1;
            let mut progressed = false;
            for i in 0..k {
                if active[i] {
                    if let Some((y, z)) = groups[i].sample_pair(rng, self.config.mode) {
                        y_est[i].push(y);
                        z_est[i].push(z);
                        counts[i] += 1;
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }

        MultiAggregateResult {
            labels,
            y_estimates: y_est.iter().map(RunningMean::mean).collect(),
            z_estimates: z_est.iter().map(RunningMean::mean).collect(),
            samples_per_group: counts,
            truncated,
        }
    }

    /// Fixpoint deactivation with per-group ε(m_i) (heterogeneous counts).
    fn deactivate(
        schedule: &rapidviz_stats::EpsilonSchedule,
        estimates: &[RunningMean],
        counts: &[u64],
        active: &mut [bool],
        resolution_eps: Option<f64>,
        n_max: u64,
    ) {
        let k = active.len();
        let eps_of = |i: usize| schedule.half_width(counts[i].max(1), n_max);
        if let Some(thresh) = resolution_eps {
            if (0..k).filter(|&i| active[i]).all(|i| eps_of(i) < thresh) {
                active.iter_mut().for_each(|a| *a = false);
                return;
            }
        }
        loop {
            let members: Vec<usize> = (0..k).filter(|&i| active[i]).collect();
            if members.is_empty() {
                break;
            }
            let set = IntervalSet::new(
                members
                    .iter()
                    .map(|&i| Interval::centered(estimates[i].mean(), eps_of(i)))
                    .collect(),
            );
            let to_remove: Vec<usize> = members
                .iter()
                .enumerate()
                .filter(|&(pos, _)| !set.member_overlaps_others(pos))
                .map(|(_, &i)| i)
                .collect();
            if to_remove.is_empty() {
                break;
            }
            for i in to_remove {
                active[i] = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::is_correctly_ordered;
    use rand::{Rng, SeedableRng};

    fn pair_groups(specs: &[(f64, f64)], n: usize, seed: u64) -> Vec<VecPairGroup> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        specs
            .iter()
            .enumerate()
            .map(|(i, &(my, mz))| {
                let pairs: Vec<(f64, f64)> = (0..n)
                    .map(|_| {
                        let y = if rng.gen_bool(my / 100.0) { 100.0 } else { 0.0 };
                        let z = if rng.gen_bool(mz / 100.0) { 100.0 } else { 0.0 };
                        (y, z)
                    })
                    .collect();
                VecPairGroup::new(format!("g{i}"), pairs)
            })
            .collect()
    }

    #[test]
    fn both_orderings_correct() {
        // Y ordering: g0 < g1 < g2; Z ordering: g2 < g0 < g1 (different!).
        let specs = [(20.0, 50.0), (50.0, 80.0), (80.0, 20.0)];
        let mut groups = pair_groups(&specs, 100_000, 130);
        let (ty, tz): (Vec<f64>, Vec<f64>) = groups.iter().map(|g| g.true_means().unwrap()).unzip();
        let algo = IFocusMultiAggregate::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(131);
        let result = algo.run(&mut groups, &mut rng);
        assert!(is_correctly_ordered(&result.y_estimates, &ty), "Y ordering");
        assert!(is_correctly_ordered(&result.z_estimates, &tz), "Z ordering");
        assert!(!result.truncated);
    }

    #[test]
    fn piggybacking_beats_two_independent_runs() {
        // When the Z ordering is easy, phase 2 should add almost nothing:
        // total cost stays well below 2x the Y-only cost.
        let specs = [(40.0, 10.0), (42.0, 50.0), (80.0, 90.0)];
        let mut g1 = pair_groups(&specs, 300_000, 132);
        let algo = IFocusMultiAggregate::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(133);
        let result = algo.run(&mut g1, &mut rng);

        // Y-only baseline via plain IFOCUS on the Y component.
        let mut y_groups: Vec<crate::group::VecGroup> = g1
            .iter()
            .enumerate()
            .map(|(i, g)| {
                crate::group::VecGroup::new(
                    format!("y{i}"),
                    g.pairs.iter().map(|&(y, _)| y).collect(),
                )
            })
            .collect();
        let y_only = crate::ifocus::IFocus::new(AlgoConfig::new(100.0, 0.05));
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(133);
        let r_y = y_only.run(&mut y_groups, &mut rng2);
        assert!(
            result.total_samples() < r_y.total_samples() * 2,
            "multi {} should cost less than 2x the dominant phase {}",
            result.total_samples(),
            r_y.total_samples()
        );
    }

    #[test]
    fn without_replacement_exhaustion_terminates() {
        let specs = [(50.0, 50.0), (50.0, 50.0)];
        let mut groups = pair_groups(&specs, 200, 134);
        let algo = IFocusMultiAggregate::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(135);
        let result = algo.run(&mut groups, &mut rng);
        assert!(!result.truncated);
        assert!(result.total_samples() <= 400);
    }
}
