//! Convergence histories (Figures 5c and 6a).
//!
//! When [`crate::AlgoConfig::history_every`] is non-zero, algorithms record
//! a [`HistoryPoint`] every `n` rounds: the cumulative sample count, the
//! active-set size, and a snapshot of the current estimates. The experiment
//! harness turns these into
//!
//! * "number of active groups vs. samples taken" (Figure 5c), and
//! * "number of incorrectly ordered pairs vs. samples taken" (Figure 6a,
//!   via [`History::incorrect_pairs_series`] against the true means).

use crate::ordering::count_incorrect_pairs;

/// One recorded checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryPoint {
    /// Round number at the checkpoint.
    pub round: u64,
    /// Cumulative samples drawn across all groups.
    pub total_samples: u64,
    /// Number of groups still active.
    pub active_groups: usize,
    /// Estimate snapshot `ν_1..ν_k`.
    pub estimates: Vec<f64>,
}

/// A recorded convergence history.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    points: Vec<HistoryPoint>,
}

impl History {
    /// An empty history.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a checkpoint.
    pub fn push(&mut self, point: HistoryPoint) {
        self.points.push(point);
    }

    /// The checkpoints in order.
    #[must_use]
    pub fn points(&self) -> &[HistoryPoint] {
        &self.points
    }

    /// Whether anything was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// `(total_samples, active_groups)` series — Figure 5c.
    #[must_use]
    pub fn active_groups_series(&self) -> Vec<(u64, usize)> {
        self.points
            .iter()
            .map(|p| (p.total_samples, p.active_groups))
            .collect()
    }

    /// `(total_samples, incorrect_pairs)` series against the given true
    /// means — Figure 6a.
    ///
    /// # Panics
    ///
    /// Panics if `truths` length differs from the snapshots'.
    #[must_use]
    pub fn incorrect_pairs_series(&self, truths: &[f64]) -> Vec<(u64, u64)> {
        self.points
            .iter()
            .map(|p| (p.total_samples, count_incorrect_pairs(&p.estimates, truths)))
            .collect()
    }

    /// Cumulative samples at which the active count first dropped to or
    /// below `target` (`None` if it never did within the recording).
    #[must_use]
    pub fn samples_to_reach_active(&self, target: usize) -> Option<u64> {
        self.points
            .iter()
            .find(|p| p.active_groups <= target)
            .map(|p| p.total_samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history() -> History {
        let mut h = History::new();
        let snapshots = [
            (1u64, 4u64, 4usize, vec![1.0, 2.0, 3.0, 4.0]),
            (10, 40, 3, vec![1.0, 2.5, 2.4, 4.0]),
            (20, 70, 1, vec![1.0, 2.2, 2.6, 4.0]),
            (30, 80, 0, vec![1.0, 2.0, 3.0, 4.0]),
        ];
        for (round, total_samples, active_groups, estimates) in snapshots {
            h.push(HistoryPoint {
                round,
                total_samples,
                active_groups,
                estimates,
            });
        }
        h
    }

    #[test]
    fn active_series() {
        let h = history();
        assert_eq!(
            h.active_groups_series(),
            vec![(4, 4), (40, 3), (70, 1), (80, 0)]
        );
    }

    #[test]
    fn incorrect_pairs_series() {
        let h = history();
        let truths = [1.0, 2.0, 3.0, 4.0];
        // Second snapshot swaps groups 1 and 2 => one bad pair.
        assert_eq!(
            h.incorrect_pairs_series(&truths),
            vec![(4, 0), (40, 1), (70, 0), (80, 0)]
        );
    }

    #[test]
    fn samples_to_reach() {
        let h = history();
        assert_eq!(h.samples_to_reach_active(4), Some(4));
        assert_eq!(h.samples_to_reach_active(2), Some(70));
        assert_eq!(h.samples_to_reach_active(0), Some(80));
        assert_eq!(History::new().samples_to_reach_active(0), None);
    }
}
