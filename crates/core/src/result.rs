//! Run results: the final [`RunResult`] of a run and the streamed
//! [`PartialEmission`] records produced by the partial-result variant.

use crate::history::History;
use crate::trace::Trace;

/// One streamed partial result: a group's estimate frozen at the moment
/// the algorithm deactivated it (§6.2.2). Produced by
/// [`crate::extensions::IFocusPartial`] and carried through saved
/// stepper state, which is why it lives here with the other result
/// types rather than up in the extensions layer.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialEmission {
    /// Group index in the input order.
    pub group: usize,
    /// Group label.
    pub label: String,
    /// The frozen estimate `ν_i`.
    pub estimate: f64,
    /// Round at which the group deactivated (`m_i`).
    pub round: u64,
    /// Cumulative samples across all groups at emission time.
    pub total_samples_so_far: u64,
}

/// The outcome of one algorithm run.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Group labels, in input order.
    pub labels: Vec<String>,
    /// Final estimates `ν_1..ν_k` (for AVG algorithms these are means; the
    /// SUM variants return sums).
    pub estimates: Vec<f64>,
    /// Samples drawn from each group (`m_i`).
    pub samples_per_group: Vec<u64>,
    /// Number of rounds executed (the final value of `m`).
    pub rounds: u64,
    /// Per-round trace, if recording was enabled.
    pub trace: Option<Trace>,
    /// Convergence history, if recording was enabled.
    pub history: Option<History>,
    /// Whether the run hit [`crate::AlgoConfig::max_rounds`] before
    /// terminating naturally. Results are still the best-effort estimates.
    pub truncated: bool,
}

impl RunResult {
    /// Total sample complexity `C = Σ m_i`.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.samples_per_group.iter().sum()
    }

    /// Group indices sorted by ascending estimate (the display order of the
    /// resulting bar chart).
    #[must_use]
    pub fn order_by_estimate(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.estimates.len()).collect();
        idx.sort_by(|&a, &b| self.estimates[a].total_cmp(&self.estimates[b]));
        idx
    }

    /// `(label, estimate)` pairs sorted by ascending estimate.
    #[must_use]
    pub fn ranked(&self) -> Vec<(&str, f64)> {
        self.order_by_estimate()
            .into_iter()
            .map(|i| (self.labels[i].as_str(), self.estimates[i]))
            .collect()
    }

    /// Fraction of the dataset sampled, given the total population size,
    /// clamped to at most 1.0: with-replacement sampling on small groups
    /// can draw more samples than there are rows, but "fraction of the
    /// data touched" can never meaningfully exceed everything.
    #[must_use]
    pub fn fraction_sampled(&self, total_population: u64) -> f64 {
        if total_population == 0 {
            return 0.0;
        }
        (self.total_samples() as f64 / total_population as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> RunResult {
        RunResult {
            labels: vec!["AA".into(), "JB".into(), "UA".into()],
            estimates: vec![30.0, 15.0, 85.0],
            samples_per_group: vec![100, 250, 50],
            rounds: 250,
            trace: None,
            history: None,
            truncated: false,
        }
    }

    #[test]
    fn totals() {
        let r = result();
        assert_eq!(r.total_samples(), 400);
        assert!((r.fraction_sampled(4000) - 0.1).abs() < 1e-12);
        assert_eq!(r.fraction_sampled(0), 0.0);
    }

    #[test]
    fn ranking() {
        let r = result();
        assert_eq!(r.order_by_estimate(), vec![1, 0, 2]);
        assert_eq!(r.ranked(), vec![("JB", 15.0), ("AA", 30.0), ("UA", 85.0)]);
    }
}
