//! ROUNDROBIN — the conventional-sampling baseline (§5.1).
//!
//! Classic round-robin stratified sampling takes one sample from **every**
//! group each round, active or not — it has no notion of focusing. To make
//! it a fair baseline the paper instruments it with the same anytime
//! confidence machinery as IFOCUS so it can stop with the identical
//! `1 − δ` ordering guarantee: the run terminates when all group intervals
//! are pairwise disjoint (or, for ROUNDROBIN-R, when `ε_m < r/4`).
//!
//! Because every group keeps paying one sample per round until the *last*
//! contentious pair separates, its cost is `k · max_i m_i` versus IFOCUS's
//! `Σ_i m_i` — the gap the paper's Figure 3a quantifies.

use crate::config::AlgoConfig;
use crate::group::{GroupSource, MaybeSend};
use crate::result::RunResult;
use crate::runner::{AlgorithmStepper, OrderingAlgorithm, Snapshot, StepOutcome};
use crate::saved::{RestoreError, SavedStepper};
use crate::state::FocusState;
use rand::RngCore;

/// The ROUNDROBIN baseline (and ROUNDROBIN-R with a resolution configured).
#[derive(Debug, Clone)]
pub struct RoundRobin {
    config: AlgoConfig,
}

impl RoundRobin {
    /// Creates the algorithm with the given configuration.
    #[must_use]
    pub fn new(config: AlgoConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &AlgoConfig {
        &self.config
    }

    /// Begins a resumable run (bootstrap sample plus the round-1 separation
    /// check). A fixed-seed `start`/`step`/`finish` drive is byte-identical
    /// to [`RoundRobin::run`].
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn start<G: GroupSource + MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> RoundRobinStepper {
        let mut state = FocusState::initialize(&self.config, groups, rng);
        if state.resolution_reached() {
            state.deactivate_all();
        } else {
            state.standard_deactivation();
        }
        state.record();
        RoundRobinStepper { state }
    }

    /// Runs ROUNDROBIN over the groups to completion — a thin loop over
    /// [`RoundRobin::start`] and [`AlgorithmStepper::step`].
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn run<G: GroupSource + MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> RunResult {
        let mut stepper = self.start(groups, rng);
        while stepper.step(groups, rng).is_running() {}
        stepper.finish()
    }
}

/// The ROUNDROBIN state machine: each step samples **every** unexhausted
/// group once (batched), then runs the same deactivation test as IFOCUS.
#[derive(Debug)]
pub struct RoundRobinStepper {
    state: FocusState,
}

impl RoundRobinStepper {
    /// Total samples drawn so far (cheaper than a full snapshot — used by
    /// session budget checks every round).
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.state.total_samples()
    }
}

impl AlgorithmStepper for RoundRobinStepper {
    fn step<G: GroupSource + MaybeSend>(
        &mut self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> StepOutcome {
        let state = &mut self.state;
        if !state.any_active() {
            return StepOutcome::Converged;
        }
        if state.m >= state.config.max_rounds {
            state.truncated = true;
            return StepOutcome::BudgetExhausted;
        }
        let batch = state.config.samples_per_round;
        state.m += batch;
        // The defining difference from IFOCUS: sample *all* groups —
        // one draw_batch call each (pooled over threshold with the
        // `parallel` feature), selected through the reusable scratch.
        state.draw_round_selected(true, groups, rng, batch);
        if state.resolution_reached() || state.all_exhausted() {
            state.deactivate_all();
        } else {
            state.standard_deactivation();
        }
        state.record();
        if state.any_active() {
            StepOutcome::Running
        } else {
            StepOutcome::Converged
        }
    }

    fn snapshot(&self) -> Snapshot {
        self.state.snapshot()
    }

    fn approx_bytes(&self) -> usize {
        self.state.approx_bytes()
    }

    fn save(&self) -> Option<SavedStepper> {
        Some(SavedStepper::RoundRobin(self.state.save_core()))
    }

    fn restore(&mut self, saved: &SavedStepper) -> Result<(), RestoreError> {
        match saved {
            SavedStepper::RoundRobin(core) => self.state.restore_core(core),
            other => Err(RestoreError::WrongKind {
                expected: "roundrobin",
                got: other.kind(),
            }),
        }
    }

    fn finish(self) -> RunResult {
        self.state.finish()
    }
}

impl FocusState {
    /// Every group exhausted (ROUNDROBIN keeps sampling inactive groups, so
    /// its stopping guard looks at all of them).
    pub(crate) fn all_exhausted(&self) -> bool {
        self.exhausted.iter().all(|&e| e)
    }
}

impl OrderingAlgorithm for RoundRobin {
    type Stepper = RoundRobinStepper;

    fn name(&self) -> String {
        if self.config.resolution.is_some() {
            "roundrobinr".to_owned()
        } else {
            "roundrobin".to_owned()
        }
    }

    fn start<G: GroupSource + MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> RoundRobinStepper {
        RoundRobin::start(self, groups, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::VecGroup;
    use crate::ifocus::IFocus;
    use crate::ordering::is_correctly_ordered;
    use rand::{Rng, SeedableRng};

    fn two_point_groups(means: &[f64], n: usize, seed: u64) -> Vec<VecGroup> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        means
            .iter()
            .enumerate()
            .map(|(i, &mu)| {
                let values: Vec<f64> = (0..n)
                    .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
                    .collect();
                VecGroup::new(format!("g{i}"), values)
            })
            .collect()
    }

    #[test]
    fn correct_ordering() {
        let mut groups = two_point_groups(&[20.0, 50.0, 80.0], 50_000, 21);
        let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
        let algo = RoundRobin::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let result = algo.run(&mut groups, &mut rng);
        assert!(is_correctly_ordered(&result.estimates, &truths));
    }

    #[test]
    fn samples_all_groups_equally_until_the_end() {
        let mut groups = two_point_groups(&[30.0, 45.0, 48.0, 80.0], 100_000, 23);
        let algo = RoundRobin::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(24);
        let result = algo.run(&mut groups, &mut rng);
        // Round-robin: every group gets m samples (modulo exhaustion).
        let m0 = result.samples_per_group[0];
        assert!(
            result.samples_per_group.iter().all(|&m| m == m0),
            "round robin must sample uniformly: {:?}",
            result.samples_per_group
        );
    }

    #[test]
    fn ifocus_never_costlier_than_roundrobin() {
        for seed in 0..5 {
            let mut g1 = two_point_groups(&[25.0, 40.0, 42.0, 75.0], 100_000, 30 + seed);
            let mut g2 = g1.clone();
            let rr = RoundRobin::new(AlgoConfig::new(100.0, 0.05));
            let ifx = IFocus::new(AlgoConfig::new(100.0, 0.05));
            let mut rng1 = rand::rngs::StdRng::seed_from_u64(40 + seed);
            let mut rng2 = rand::rngs::StdRng::seed_from_u64(40 + seed);
            let r_rr = rr.run(&mut g1, &mut rng1);
            let r_if = ifx.run(&mut g2, &mut rng2);
            assert!(
                r_if.total_samples() <= r_rr.total_samples(),
                "seed {seed}: ifocus {} > roundrobin {}",
                r_if.total_samples(),
                r_rr.total_samples()
            );
        }
    }

    #[test]
    fn resolution_variant_stops_early() {
        let mut g1 = two_point_groups(&[30.0, 32.0, 70.0], 200_000, 50);
        let mut g2 = g1.clone();
        let plain = RoundRobin::new(AlgoConfig::new(100.0, 0.05));
        let relaxed = RoundRobin::new(AlgoConfig::new(100.0, 0.05).with_resolution(5.0));
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(51);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(51);
        let r_plain = plain.run(&mut g1, &mut rng1);
        let r_relaxed = relaxed.run(&mut g2, &mut rng2);
        assert!(r_relaxed.total_samples() < r_plain.total_samples());
    }

    #[test]
    fn exhaustion_terminates_equal_means() {
        let mut groups = vec![
            VecGroup::new("a", vec![50.0; 300]),
            VecGroup::new("b", vec![50.0; 300]),
        ];
        let algo = RoundRobin::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(52);
        let result = algo.run(&mut groups, &mut rng);
        assert!(!result.truncated);
        assert_eq!(result.total_samples(), 600, "full scan fallback");
    }

    #[test]
    fn name() {
        assert_eq!(
            RoundRobin::new(AlgoConfig::new(1.0, 0.05)).name(),
            "roundrobin"
        );
        assert_eq!(
            RoundRobin::new(AlgoConfig::new(1.0, 0.05).with_resolution(0.1)).name(),
            "roundrobinr"
        );
    }

    /// The pre-stepper ROUNDROBIN loop, verbatim. Guards the acceptance
    /// criterion that the resumable-session refactor is byte-identical for
    /// a fixed seed.
    fn reference_roundrobin(
        config: &AlgoConfig,
        groups: &mut [VecGroup],
        rng: &mut rand::rngs::StdRng,
    ) -> crate::result::RunResult {
        let mut state = FocusState::initialize(config, groups, rng);
        if state.resolution_reached() {
            state.deactivate_all();
        } else {
            state.standard_deactivation();
        }
        state.record();
        while state.any_active() {
            if state.m >= config.max_rounds {
                state.truncated = true;
                break;
            }
            let batch = config.samples_per_round;
            state.m += batch;
            state.draw_round_selected(true, groups, rng, batch);
            if state.resolution_reached() || state.all_exhausted() {
                state.deactivate_all();
            } else {
                state.standard_deactivation();
            }
            state.record();
        }
        state.finish()
    }

    #[test]
    fn stepper_matches_blocking_reference() {
        let mut g1 = two_point_groups(&[25.0, 48.0, 52.0, 80.0], 30_000, 80);
        let mut g2 = g1.clone();
        let config = AlgoConfig::new(100.0, 0.05);
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(81);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(81);
        let result = RoundRobin::new(config.clone()).run(&mut g1, &mut rng1);
        let reference = reference_roundrobin(&config, &mut g2, &mut rng2);
        assert_eq!(result.estimates, reference.estimates);
        assert_eq!(result.samples_per_group, reference.samples_per_group);
        assert_eq!(result.rounds, reference.rounds);
        assert_eq!(result.truncated, reference.truncated);
    }

    #[test]
    fn step_snapshots_harden_monotonically() {
        use crate::runner::{AlgorithmStepper, StepOutcome};
        let mut groups = two_point_groups(&[20.0, 50.0, 80.0], 30_000, 82);
        let algo = RoundRobin::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(83);
        let mut stepper = algo.start(&mut groups, &mut rng);
        let mut prev_active = stepper.snapshot().active_count();
        let mut rounds = 0u64;
        loop {
            let outcome = stepper.step(&mut groups, &mut rng);
            let snap = stepper.snapshot();
            assert!(snap.active_count() <= prev_active, "active set never grows");
            prev_active = snap.active_count();
            rounds += 1;
            if outcome != StepOutcome::Running {
                assert_eq!(outcome, StepOutcome::Converged);
                break;
            }
        }
        assert!(rounds > 1, "multi-round run expected");
    }
}
