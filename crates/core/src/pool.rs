//! Persistent worker pool for the `parallel` draw fan-out.
//!
//! The first parallel round spawns `available_parallelism()` workers that
//! live for the rest of the process, parked on a job channel. Dispatching a
//! round's per-group draw tasks then costs one channel send per chunk
//! instead of a full `thread::scope` spawn/join cycle — cheap enough that
//! **narrow rounds** (few groups × small batches, below the old
//! spawn-amortization threshold) can fan out too, which is why
//! [`crate::AlgoConfig::parallel_threshold`] now defaults far lower than it
//! did under the per-round spawn design.
//!
//! [`WorkerPool::run_scoped`] executes a set of borrowing (non-`'static`)
//! tasks to completion before returning, which is what makes the pool a
//! drop-in replacement for `std::thread::scope`: the caller's borrows stay
//! valid for exactly the window in which tasks run. Completion is tracked
//! by a latch that counts down even when a task panics (via a drop guard),
//! so the caller can never return — and thus never invalidate a borrow —
//! while a task is still running. A task panic is re-raised on the caller
//! after the round completes, mirroring `scope.join().expect(...)`.
//!
//! Do not call [`WorkerPool::run_scoped`] from inside a pool task: a task
//! waiting on tasks that need its own worker can deadlock. The algorithms
//! only dispatch from user threads.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The process-wide pool, spawned on first use.
static POOL: OnceLock<WorkerPool> = OnceLock::new();

/// The global pool (spawning its workers on the first call).
pub(crate) fn global() -> &'static WorkerPool {
    POOL.get_or_init(WorkerPool::start)
}

/// A fixed set of parked worker threads fed from one shared job channel.
pub(crate) struct WorkerPool {
    sender: Sender<Job>,
    workers: usize,
}

impl WorkerPool {
    fn start() -> Self {
        let workers = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let mut spawned = 0usize;
        for i in 0..workers {
            let receiver: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
            let handle = std::thread::Builder::new()
                .name(format!("rapidviz-draw-{i}"))
                .spawn(move || loop {
                    // Take the lock only to dequeue; run the job unlocked.
                    let job = {
                        let rx = receiver.lock().unwrap_or_else(|e| e.into_inner());
                        // lint: allow(concurrency) — the Mutex<Receiver> IS the
                        // queue handoff: a worker must hold it across recv() so
                        // exactly one worker dequeues; the sender never takes
                        // this lock, so no lock-order ordering can invert
                        rx.recv()
                    };
                    match job {
                        // A panicking job must not kill the worker; the
                        // latch guard inside the job records the panic for
                        // the dispatching thread to re-raise.
                        Ok(job) => drop(catch_unwind(AssertUnwindSafe(job))),
                        Err(_) => break,
                    }
                });
            spawned += usize::from(handle.is_ok());
        }
        // Spawn failure is survivable: with zero workers the job channel's
        // receiver is dropped here, every `send` fails, and `run_scoped`
        // degrades to inline execution on the calling thread.
        Self {
            sender,
            workers: spawned.max(1),
        }
    }

    /// Number of worker threads.
    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every task on the pool and blocks until all have finished.
    /// Tasks may borrow from the caller's stack. Panics (after all tasks
    /// have settled) if any task panicked.
    pub(crate) fn run_scoped<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if tasks.is_empty() {
            return;
        }
        let latch = Arc::new(Latch::new(tasks.len()));
        for task in tasks {
            // SAFETY: `run_scoped` blocks on `latch.wait()` below until
            // every dispatched job has signalled completion — and the latch
            // guard signals from `Drop`, so a job that panics still counts
            // down. The `'scope` borrows captured by `task` therefore
            // strictly outlive its execution, which is the only thing the
            // lifetime erasure gives up statically.
            #[allow(unsafe_code)]
            let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
            let guard_latch = Arc::clone(&latch);
            let job: Job = Box::new(move || {
                let _guard = CountDownOnDrop(guard_latch);
                task();
            });
            if let Err(refused) = self.sender.send(job) {
                // Every worker is gone (spawn failure or teardown): degrade
                // to inline execution so the answer still completes.
                (refused.0)();
            }
        }
        latch.wait();
        assert!(
            !latch.panicked.load(Ordering::SeqCst),
            "a parallel draw task panicked"
        );
    }
}

/// A count-down latch: `wait` returns once `n` completions are recorded.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(n: usize) -> Self {
        Self {
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *remaining > 0 {
            remaining = self.done.wait(remaining).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Counts the latch down when dropped — including during unwinding, in
/// which case the panic is recorded for the dispatcher to re-raise.
struct CountDownOnDrop(Arc<Latch>);

impl Drop for CountDownOnDrop {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.panicked.store(true, Ordering::SeqCst);
        }
        self.0.count_down();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_borrowing_tasks_to_completion() {
        let pool = global();
        let mut slots = vec![0u64; 8];
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                Box::new(move || {
                    *slot = (i as u64 + 1) * 10;
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(tasks);
        assert_eq!(slots, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn reuses_workers_across_rounds() {
        let pool = global();
        for round in 0..20 {
            let mut total = 0u64;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(|| {
                total = round;
            })];
            pool.run_scoped(tasks);
            assert_eq!(total, round);
        }
    }

    #[test]
    fn task_panic_propagates_after_round_settles() {
        let pool = global();
        let mut ok = false;
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
                Box::new(|| panic!("boom")),
                Box::new(|| {
                    ok = true;
                }),
            ];
            pool.run_scoped(tasks);
        }));
        assert!(result.is_err(), "panic must surface on the dispatcher");
        assert!(ok, "non-panicking tasks still ran to completion");
        // The pool survives: a later round still works.
        let mut x = 0;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(|| {
            x = 7;
        })];
        pool.run_scoped(tasks);
        assert_eq!(x, 7);
    }
}
