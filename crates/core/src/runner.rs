//! The common algorithm interface.

use crate::group::{GroupSource, MaybeSend};
use crate::result::RunResult;
use rand::RngCore;

/// An algorithm that estimates per-group aggregates with an ordering
/// guarantee. Implemented by [`crate::IFocus`], [`crate::IRefine`],
/// [`crate::RoundRobin`], and [`crate::ExactScan`], so harness code can
/// sweep over algorithms generically.
///
/// The [`MaybeSend`] bound is `Send` only under the `parallel` feature
/// (enabling the threaded per-round draw fan-out) and is satisfied by every
/// type otherwise.
pub trait OrderingAlgorithm {
    /// Short identifier used in experiment output (`ifocus`, `ifocusr`, …).
    fn name(&self) -> String;

    /// Runs the algorithm over the groups.
    fn execute<G: GroupSource + MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> RunResult;
}
