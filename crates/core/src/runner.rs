//! The common algorithm interface.

use crate::group::GroupSource;
use crate::result::RunResult;
use rand::RngCore;

/// An algorithm that estimates per-group aggregates with an ordering
/// guarantee. Implemented by [`crate::IFocus`], [`crate::IRefine`],
/// [`crate::RoundRobin`], and [`crate::ExactScan`], so harness code can
/// sweep over algorithms generically.
pub trait OrderingAlgorithm {
    /// Short identifier used in experiment output (`ifocus`, `ifocusr`, …).
    fn name(&self) -> String;

    /// Runs the algorithm over the groups.
    fn execute<G: GroupSource>(&self, groups: &mut [G], rng: &mut dyn RngCore) -> RunResult;
}
