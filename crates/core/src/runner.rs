//! The common algorithm interface: blocking execution and resumable,
//! round-granular stepping.
//!
//! Every algorithm in this crate is round-based: it repeatedly draws a few
//! samples, tightens confidence intervals, and freezes groups whose position
//! in the ordering has become certain. [`OrderingAlgorithm`] exposes that
//! structure directly: [`OrderingAlgorithm::start`] returns an
//! [`AlgorithmStepper`] — an explicit state machine advanced one round at a
//! time by [`AlgorithmStepper::step`] — and the blocking
//! [`OrderingAlgorithm::execute`] is nothing but a thin loop over it.
//! Between steps, [`AlgorithmStepper::snapshot`] exposes the current
//! estimates, confidence intervals, active set, and the progressively
//! hardening partial ordering, so callers can render partial results,
//! enforce sample/time budgets, or cancel and keep the best answer so far.

use crate::group::{GroupSource, MaybeSend};
use crate::result::RunResult;
use crate::saved::{RestoreError, SavedStepper};
use rand::RngCore;
use rapidviz_stats::Interval;

/// What a single [`AlgorithmStepper::step`] call concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The round ran and more rounds are needed; call `step` again.
    Running,
    /// The algorithm terminated naturally: every group's position is
    /// certified (or exhausted/resolution-cut). Further `step` calls are
    /// no-ops returning `Converged` again.
    Converged,
    /// A budget (the configured round cap, or a session-level sample/time
    /// budget) ran out before convergence. The state is still usable: the
    /// snapshot and [`AlgorithmStepper::finish`] report best-effort
    /// estimates, flagged as truncated.
    BudgetExhausted,
}

impl StepOutcome {
    /// Whether stepping should continue (`Running`).
    #[must_use]
    pub fn is_running(self) -> bool {
        matches!(self, StepOutcome::Running)
    }
}

/// A point-in-time view of a stepper: everything a progressive renderer
/// needs to draw the partial bar chart after a round.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Group labels, in input order.
    pub labels: Vec<String>,
    /// Current estimates `ν_i` (means, or sums for the SUM variants).
    pub estimates: Vec<f64>,
    /// Current confidence intervals: live half-width for active groups,
    /// frozen at deactivation for certified ones, zero-width for exhausted
    /// (exact) ones.
    pub intervals: Vec<Interval>,
    /// Which groups are still active (still being sampled).
    pub active: Vec<bool>,
    /// Samples drawn from each group so far.
    pub samples_per_group: Vec<u64>,
    /// Round counter `m` after the last completed round.
    pub rounds: u64,
    /// Whether a budget cap has already truncated the run.
    pub truncated: bool,
}

impl Snapshot {
    /// Total samples drawn so far.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.samples_per_group.iter().sum()
    }

    /// Number of still-active groups.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// The **partial ordering** certified so far: indices of deactivated
    /// groups sorted by ascending estimate. With probability `≥ 1 − δ`
    /// these groups are correctly ordered among themselves (their intervals
    /// were mutually disjoint when they froze), so a dashboard can render
    /// them immediately; active groups are still in flux.
    #[must_use]
    pub fn certified_order(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.estimates.len())
            .filter(|&i| !self.active[i])
            .collect();
        idx.sort_by(|&a, &b| {
            self.estimates[a]
                .total_cmp(&self.estimates[b])
                .then(a.cmp(&b))
        });
        idx
    }

    /// Approximate resident size of this snapshot in bytes (struct plus
    /// owned heap buffers, counting capacities rather than lengths). A
    /// multi-query scheduler charges each session's memory account with
    /// this after every round; it is an estimate for accounting, not an
    /// allocator-exact figure.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<Self>()
            + self.labels.capacity() * size_of::<String>()
            + self.labels.iter().map(String::capacity).sum::<usize>()
            + self.estimates.capacity() * size_of::<f64>()
            + self.intervals.capacity() * size_of::<Interval>()
            + self.active.capacity() * size_of::<bool>()
            + self.samples_per_group.capacity() * size_of::<u64>()
    }

    /// All group indices sorted by ascending current estimate — the best
    /// full ordering available right now (no guarantee for active groups).
    #[must_use]
    pub fn order_by_estimate(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.estimates.len()).collect();
        idx.sort_by(|&a, &b| {
            self.estimates[a]
                .total_cmp(&self.estimates[b])
                .then(a.cmp(&b))
        });
        idx
    }
}

/// A resumable algorithm run: an explicit state machine advanced one round
/// per [`AlgorithmStepper::step`] call.
///
/// Steppers do not own the groups or the RNG — the caller passes the *same*
/// groups and RNG to every `step` call (passing different ones is not
/// memory-unsafe but produces meaningless estimates). This keeps the state
/// machine free of borrows, so a session can own stepper, groups, and RNG
/// side by side.
///
/// Fixed-seed runs driven through `start`/`step`/`finish` are byte-identical
/// to the historical blocking loops — that equivalence is regression-tested
/// against verbatim pre-refactor reference implementations.
pub trait AlgorithmStepper {
    /// Advances one round: draw from the selected groups, update estimates,
    /// re-run the deactivation test, and report whether to continue.
    ///
    /// Idempotent after termination: once `Converged` (or once a budget
    /// tripped and the caller stops), further calls return the terminal
    /// outcome without drawing.
    fn step<G: GroupSource + MaybeSend>(
        &mut self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> StepOutcome;

    /// The current estimates, intervals, active set, and partial ordering.
    fn snapshot(&self) -> Snapshot;

    /// Approximate resident bytes of the stepper's algorithm state
    /// (estimators, activity flags, scratch arenas) — the per-session
    /// memory-accounting hook. The provided implementation derives the
    /// figure from a fresh [`AlgorithmStepper::snapshot`]; steppers backed
    /// by live round-loop state override it with a precise,
    /// allocation-free accounting. Optional trace/history recording is
    /// deliberately not counted (resumable sessions never enable it).
    fn approx_bytes(&self) -> usize {
        self.snapshot().approx_bytes()
    }

    /// Captures the stepper's mutable round-loop state for a durable
    /// session checkpoint, or `None` for steppers that cannot be resumed
    /// (the eager [`OneShotStepper`]). Derived state — labels, sizes,
    /// configuration, ε schedules, scratch arenas — is excluded by design:
    /// resume re-plans the query and rebuilds it, then overwrites the
    /// mutable fields via [`AlgorithmStepper::restore`].
    fn save(&self) -> Option<SavedStepper> {
        None
    }

    /// Overwrites this stepper's mutable state from a [`SavedStepper`]
    /// captured by [`AlgorithmStepper::save`] on an identically planned
    /// run. The stepper must be freshly started for the same query; with
    /// the sampler permutations and RNG also restored, subsequent `step`
    /// calls replay the uninterrupted round stream bit-identically.
    ///
    /// # Errors
    ///
    /// Returns a structured [`RestoreError`] (never panics) when the saved
    /// kind or per-group shape does not match this stepper.
    fn restore(&mut self, saved: &SavedStepper) -> Result<(), RestoreError> {
        let _ = saved;
        Err(RestoreError::Unsupported)
    }

    /// Consumes the stepper and packages the final (or best-effort, if
    /// stopped early) result.
    fn finish(self) -> RunResult;
}

/// An algorithm that estimates per-group aggregates with an ordering
/// guarantee. Implemented by [`crate::IFocus`], [`crate::IRefine`],
/// [`crate::RoundRobin`], [`crate::ExactScan`],
/// [`crate::extensions::IFocusSum1`], and the §6 extension algorithms, so
/// harness code can sweep over algorithms generically.
///
/// The resumable entry point is [`OrderingAlgorithm::start`]; the blocking
/// [`OrderingAlgorithm::execute`] is a provided thin loop over the stepper.
///
/// The [`MaybeSend`] bound is `Send` only under the `parallel` feature
/// (enabling the threaded per-round draw fan-out) and is satisfied by every
/// type otherwise.
pub trait OrderingAlgorithm {
    /// The state-machine type driving this algorithm round by round.
    /// Algorithms whose loops have not (yet) been decomposed use
    /// [`OneShotStepper`], which runs eagerly inside `start` and exposes
    /// only the final state.
    type Stepper: AlgorithmStepper;

    /// Short identifier used in experiment output (`ifocus`, `ifocusr`, …).
    fn name(&self) -> String;

    /// Begins a resumable run: performs any bootstrap sampling and the
    /// initial deactivation test, returning the stepper positioned before
    /// its first full round. Pass the same `groups` and `rng` to every
    /// subsequent [`AlgorithmStepper::step`] call.
    fn start<G: GroupSource + MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> Self::Stepper;

    /// Runs the algorithm over the groups to completion — a thin loop over
    /// [`OrderingAlgorithm::start`] and [`AlgorithmStepper::step`].
    fn execute<G: GroupSource + MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> RunResult {
        let mut stepper = self.start(groups, rng);
        while stepper.step(groups, rng).is_running() {}
        stepper.finish()
    }
}

/// Degenerate [`AlgorithmStepper`] for algorithms that still run eagerly:
/// the whole run happens inside [`OrderingAlgorithm::start`] and the
/// stepper is born converged, exposing the final state only (point
/// intervals, empty active set).
#[derive(Debug, Clone)]
pub struct OneShotStepper {
    result: RunResult,
}

impl OneShotStepper {
    /// Wraps an already-computed result.
    #[must_use]
    pub fn completed(result: RunResult) -> Self {
        Self { result }
    }
}

impl AlgorithmStepper for OneShotStepper {
    fn step<G: GroupSource + MaybeSend>(
        &mut self,
        _groups: &mut [G],
        _rng: &mut dyn RngCore,
    ) -> StepOutcome {
        if self.result.truncated {
            StepOutcome::BudgetExhausted
        } else {
            StepOutcome::Converged
        }
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            labels: self.result.labels.clone(),
            estimates: self.result.estimates.clone(),
            // Post-hoc the per-group half-widths are gone; report point
            // intervals at the final estimates.
            intervals: self
                .result
                .estimates
                .iter()
                .map(|&e| Interval::centered(e, 0.0))
                .collect(),
            active: vec![false; self.result.estimates.len()],
            samples_per_group: self.result.samples_per_group.clone(),
            rounds: self.result.rounds,
            truncated: self.result.truncated,
        }
    }

    fn finish(self) -> RunResult {
        self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> RunResult {
        RunResult {
            labels: vec!["a".into(), "b".into(), "c".into()],
            estimates: vec![30.0, 10.0, 20.0],
            samples_per_group: vec![5, 7, 9],
            rounds: 9,
            trace: None,
            history: None,
            truncated: false,
        }
    }

    #[test]
    fn outcome_is_running() {
        assert!(StepOutcome::Running.is_running());
        assert!(!StepOutcome::Converged.is_running());
        assert!(!StepOutcome::BudgetExhausted.is_running());
    }

    #[test]
    fn snapshot_orderings() {
        let snap = Snapshot {
            labels: vec!["a".into(), "b".into(), "c".into()],
            estimates: vec![30.0, 10.0, 20.0],
            intervals: vec![
                Interval::centered(30.0, 1.0),
                Interval::centered(10.0, 1.0),
                Interval::centered(20.0, 5.0),
            ],
            active: vec![false, false, true],
            samples_per_group: vec![5, 7, 9],
            rounds: 9,
            truncated: false,
        };
        assert_eq!(snap.total_samples(), 21);
        assert_eq!(snap.active_count(), 1);
        // Only the certified (inactive) groups appear, sorted by estimate.
        assert_eq!(snap.certified_order(), vec![1, 0]);
        assert_eq!(snap.order_by_estimate(), vec![1, 2, 0]);
    }

    #[test]
    fn one_shot_is_born_terminal() {
        use crate::group::VecGroup;
        use rand::SeedableRng;
        let mut stepper = OneShotStepper::completed(sample_result());
        let mut groups = vec![VecGroup::new("g", vec![1.0])];
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert_eq!(stepper.step(&mut groups, &mut rng), StepOutcome::Converged);
        let snap = stepper.snapshot();
        assert_eq!(snap.active_count(), 0);
        assert_eq!(snap.certified_order(), vec![1, 2, 0]);
        let result = stepper.finish();
        assert_eq!(result.estimates, vec![30.0, 10.0, 20.0]);
    }
}
