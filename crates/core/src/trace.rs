//! Per-round execution traces (the paper's Table 1).
//!
//! When [`crate::AlgoConfig::record_trace`] is set, algorithms append one
//! [`TraceRow`] per round containing every group's confidence interval and
//! active flag — exactly the columns of Table 1. [`Trace::render`] formats
//! the rows the way the paper prints them
//! (`[60, 90] A  [20, 50] A  …`).

use rapidviz_stats::Interval;
use std::fmt::Write as _;

/// One round of the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRow {
    /// Round number `m` (samples per still-active group so far).
    pub round: u64,
    /// Confidence interval of each group at the end of the round.
    pub intervals: Vec<Interval>,
    /// Whether each group was active *after* this round's deactivations.
    pub active: Vec<bool>,
}

/// A recorded execution trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    rows: Vec<TraceRow>,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row.
    pub fn push(&mut self, row: TraceRow) {
        self.rows.push(row);
    }

    /// The recorded rows.
    #[must_use]
    pub fn rows(&self) -> &[TraceRow] {
        &self.rows
    }

    /// Whether anything was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rounds at which each group became inactive (`None` if it never did —
    /// cannot happen for completed runs).
    #[must_use]
    pub fn deactivation_rounds(&self) -> Vec<Option<u64>> {
        let Some(first) = self.rows.first() else {
            return Vec::new();
        };
        let k = first.active.len();
        let mut out = vec![None; k];
        for row in &self.rows {
            for (i, &a) in row.active.iter().enumerate() {
                if !a && out[i].is_none() {
                    out[i] = Some(row.round);
                }
            }
        }
        out
    }

    /// Renders in the Table 1 style: one line per round, `[lo, hi] A|I` per
    /// group. `only_transitions` collapses runs of identical activity,
    /// printing just the rounds where some group's flag flips (plus the
    /// first and last rounds) — the "fast-forward" view of Example 3.1.
    #[must_use]
    pub fn render(&self, only_transitions: bool) -> String {
        let mut out = String::new();
        let mut prev_active: Option<Vec<bool>> = None;
        let last = self.rows.len().saturating_sub(1);
        for (idx, row) in self.rows.iter().enumerate() {
            let transition = prev_active.as_ref() != Some(&row.active);
            if only_transitions && !transition && idx != 0 && idx != last {
                prev_active = Some(row.active.clone());
                continue;
            }
            let _ = write!(out, "{:>6} ", row.round);
            for (iv, &a) in row.intervals.iter().zip(&row.active) {
                let _ = write!(
                    out,
                    " [{:.1}, {:.1}] {}",
                    iv.lo,
                    iv.hi,
                    if a { 'A' } else { 'I' }
                );
            }
            out.push('\n');
            prev_active = Some(row.active.clone());
        }
        out
    }

    /// Total sample cost implied by the trace: the sum over rounds of the
    /// number of groups that were sampled (i.e. were active entering the
    /// round). Matches the cost accounting of Example 3.1.
    #[must_use]
    pub fn implied_sample_cost(&self) -> u64 {
        let Some(first) = self.rows.first() else {
            return 0;
        };
        // Round 1 samples every group once; each later round samples the
        // groups that were active at the end of the previous round.
        let k = first.active.len() as u64;
        let mut cost = k;
        for w in self.rows.windows(2) {
            cost += w[0].active.iter().filter(|&&a| a).count() as u64;
            let _ = &w[1];
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi)
    }

    fn example_trace() -> Trace {
        // Miniature of Table 1: 3 groups; group 0 deactivates at round 2,
        // the rest at round 3.
        let mut t = Trace::new();
        t.push(TraceRow {
            round: 1,
            intervals: vec![iv(60.0, 90.0), iv(20.0, 50.0), iv(40.0, 70.0)],
            active: vec![true, true, true],
        });
        t.push(TraceRow {
            round: 2,
            intervals: vec![iv(66.0, 84.0), iv(28.0, 48.0), iv(45.0, 65.0)],
            active: vec![false, true, true],
        });
        t.push(TraceRow {
            round: 3,
            intervals: vec![iv(66.0, 84.0), iv(30.0, 44.0), iv(46.0, 64.0)],
            active: vec![false, false, false],
        });
        t
    }

    #[test]
    fn deactivation_rounds() {
        let t = example_trace();
        assert_eq!(t.deactivation_rounds(), vec![Some(2), Some(3), Some(3)]);
    }

    #[test]
    fn implied_cost_matches_example_accounting() {
        // Round 1: 3 groups; round 2 samples 3 actives; round 3 samples 2.
        let t = example_trace();
        assert_eq!(t.implied_sample_cost(), 3 + 3 + 2);
    }

    #[test]
    fn render_full_and_transitions() {
        let t = example_trace();
        let full = t.render(false);
        assert_eq!(full.lines().count(), 3);
        assert!(full.contains("[60.0, 90.0] A"));
        assert!(full.contains("[66.0, 84.0] I"));
        let compact = t.render(true);
        assert_eq!(compact.lines().count(), 3, "all rows are transitions here");
    }

    #[test]
    fn render_collapses_stable_runs() {
        let mut t = Trace::new();
        for round in 1..=10 {
            t.push(TraceRow {
                round,
                intervals: vec![iv(0.0, 1.0)],
                active: vec![round < 9],
            });
        }
        let compact = t.render(true);
        // Rows: round 1 (first), round 9 (flip), round 10 (last).
        assert_eq!(compact.lines().count(), 3);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.implied_sample_cost(), 0);
        assert!(t.deactivation_rounds().is_empty());
        assert_eq!(t.render(false), "");
    }
}
