//! Ablation benches for the design choices DESIGN.md calls out:
//! κ, sampling mode, reactivation policy, and the heuristic factor —
//! measured as end-to-end IFOCUS cost on a fixed mixture workload.

// criterion_group! expands to undocumented pub items.
#![allow(missing_docs)]
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rapidviz_core::{AlgoConfig, IFocus, ReactivationPolicy, SamplingMode};
use rapidviz_datagen::{DatasetSpec, WorkloadFamily};

fn run_once(config: AlgoConfig, seed: u64) -> u64 {
    let spec = DatasetSpec::generate(WorkloadFamily::Mixture, 10, 10_000_000, 21);
    let mut groups = spec.virtual_groups();
    let mut rng = StdRng::seed_from_u64(seed);
    IFocus::new(config.with_max_rounds(200_000))
        .run(&mut groups, &mut rng)
        .total_samples()
}

fn bench_kappa(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_kappa");
    group.sample_size(10);
    for kappa in [1.0f64, 1.01, 1.5, 2.0] {
        group.bench_with_input(BenchmarkId::from_parameter(kappa), &kappa, |b, &kappa| {
            b.iter(|| {
                let config = AlgoConfig::new(100.0, 0.05)
                    .with_resolution(1.0)
                    .with_kappa(kappa);
                black_box(run_once(config, 31))
            });
        });
    }
    group.finish();
}

fn bench_sampling_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mode");
    group.sample_size(10);
    for (name, mode) in [
        ("without_replacement", SamplingMode::WithoutReplacement),
        ("with_replacement", SamplingMode::WithReplacement),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let config = AlgoConfig::new(100.0, 0.05)
                    .with_resolution(1.0)
                    .with_mode(mode);
                black_box(run_once(config, 32))
            });
        });
    }
    group.finish();
}

fn bench_reactivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_reactivation");
    group.sample_size(10);
    for (name, policy) in [
        ("never", ReactivationPolicy::Never),
        ("allow", ReactivationPolicy::Allow),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let config = AlgoConfig::new(100.0, 0.05)
                    .with_resolution(1.0)
                    .with_reactivation(policy);
                black_box(run_once(config, 33))
            });
        });
    }
    group.finish();
}

fn bench_heuristic_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_heuristic");
    group.sample_size(10);
    for h in [1.0f64, 2.0, 4.0, 16.0] {
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, &h| {
            b.iter(|| {
                let config = AlgoConfig::new(100.0, 0.05)
                    .with_resolution(1.0)
                    .with_heuristic_factor(h);
                black_box(run_once(config, 34))
            });
        });
    }
    group.finish();
}

fn bench_batch_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_batch");
    group.sample_size(10);
    for batch in [1u64, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                let config = AlgoConfig::new(100.0, 0.05)
                    .with_resolution(1.0)
                    .with_samples_per_round(batch);
                black_box(run_once(config, 35))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_kappa,
        bench_sampling_mode,
        bench_reactivation,
        bench_heuristic_factor,
        bench_batch_size
}
criterion_main!(benches);
