//! Microbenchmarks of the NEEDLETAIL engine path: random tuple sampling
//! through the bitmap index vs the sequential SCAN baseline, on a
//! materialized flight table.

// criterion_group! expands to undocumented pub items.
#![allow(missing_docs)]
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rapidviz_datagen::FlightModel;
use rapidviz_needletail::{NeedleTail, Predicate};

fn engine_fixture(rows: u64) -> NeedleTail {
    let model = FlightModel::new(5);
    let mut rng = StdRng::seed_from_u64(6);
    let table = model.to_table(rows, &mut rng);
    NeedleTail::new(table, &["name"]).expect("fixture builds")
}

fn bench_sampling(c: &mut Criterion) {
    let engine = engine_fixture(200_000);
    let handles = engine
        .group_handles("name", "arr_delay", &Predicate::True)
        .expect("handles");
    let mut group = c.benchmark_group("engine");
    group.bench_function("sample_with_replacement", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| black_box(handles[0].sample_with_replacement(&mut rng)));
    });
    group.bench_function("sample_without_replacement_fresh", |b| {
        // Clone per iteration so the permutation never exhausts.
        b.iter_batched(
            || (handles[0].clone(), StdRng::seed_from_u64(8)),
            |(mut h, mut rng)| black_box(h.sample_without_replacement(&mut rng)),
            criterion::BatchSize::SmallInput,
        );
    });
    group.sample_size(20);
    group.bench_function("scan_full_table", |b| {
        b.iter(|| black_box(engine.scan("name", "arr_delay", &Predicate::True).unwrap()));
    });
    group.bench_function("scan_with_predicate", |b| {
        let pred = Predicate::ge("dep_delay", 30.0);
        b.iter(|| black_box(engine.scan("name", "arr_delay", &pred).unwrap()));
    });
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_build");
    group.sample_size(10);
    group.bench_function("index_build_200k_rows", |b| {
        let model = FlightModel::new(5);
        let mut rng = StdRng::seed_from_u64(6);
        let table = model.to_table(200_000, &mut rng);
        b.iter(|| black_box(NeedleTail::new(table.clone(), &["name"]).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_sampling, bench_index_build);
criterion_main!(benches);
