//! Multi-query scheduler throughput benchmark: N sessions interleaved by
//! [`rapidviz::MultiQueryScheduler`] vs the same sessions driven to
//! completion one after another — the scheduler's per-quantum overhead
//! (policy selection, memory accounting, event plumbing) is the gap.
//!
//! Run with `cargo bench --bench scheduler`. Beyond the console lines, the
//! run writes `BENCH_scheduler.json` into the workspace root (override
//! with `BENCH_SCHEDULER_OUT`) so the perf trajectory is tracked in-repo.
//!
//! Two reduced modes, sharing the sampling bench's harness
//! ([`rapidviz_bench::perfgate`]):
//!
//! * `--quick` / `--test` — single-iteration smoke pass, no JSON write.
//! * `--gate` — the CI perf-regression gate: a shortened but *measured*
//!   pass compared against the committed `BENCH_scheduler.json` (override
//!   with `BENCH_SCHEDULER_BASELINE`) **by throughput ratio, not absolute
//!   rounds/s**: for every policy, the fresh scheduled-over-standalone
//!   ratio — both sides measured on the *same* host in the *same* run, so
//!   machine speed cancels — must not fall more than [`GATE_TOLERANCE`]×
//!   below the baseline's ratio. A scheduler whose quantum cost blows up
//!   (say, an accidental O(N²) selection or per-quantum allocation storm)
//!   shows up in the ratio on any hardware. Fresh numbers go to
//!   `BENCH_scheduler.fresh.json` for artifact upload, never to the
//!   committed baseline; a missing baseline fails loudly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rapidviz::needletail::{ColumnDef, DataType, NeedleTail, Schema, TableBuilder, Value};
use rapidviz::{MultiQueryScheduler, SchedulePolicy, SchedulerEvent, VizQuery};
use rapidviz_bench::perfgate::{gate_against_baseline, measure, GateConfig, Measurement, Mode};
use std::fmt::Write as _;
use std::hint::black_box;

/// How far a gate-mode **throughput ratio** (scheduled vs standalone, both
/// from the same host and run) may fall below the committed baseline's
/// ratio before the gate fails. The true ratio sits near 1.0 (the
/// scheduler adds selection + accounting on top of identical sampling
/// work), so 1.5× headroom absorbs runner jitter while still catching a
/// quantum-cost regression of ~50% or more.
const GATE_TOLERANCE: f64 = 1.5;

/// The (standalone baseline, scheduled) measurement pairs whose ratios the
/// gate enforces.
const SPEEDUP_PAIRS: &[(&str, &str)] = &[
    ("sessions/standalone_loop", "sessions/scheduled_fair_share"),
    ("sessions/standalone_loop", "sessions/scheduled_deadline"),
    ("sessions/standalone_loop", "sessions/scheduled_greedy"),
];

/// Eight near-tied groups over 100k rows: no group certifies before the
/// per-session sample budget trips, so every run performs exactly the same
/// number of rounds — a deterministic unit of scheduling work.
fn bench_engine() -> NeedleTail {
    let mut b = TableBuilder::new(Schema::new(vec![
        ColumnDef::new("name", DataType::Str),
        ColumnDef::new("delay", DataType::Float),
    ]));
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..100_000 {
        let g = rng.gen_range(0..8);
        let mu = 50.0 + 0.1 * (g as f64 - 3.5);
        let delay = if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 };
        b.push_row(vec![format!("g{g}").into(), Value::Float(delay)]);
    }
    NeedleTail::new(b.finish(), &["name"]).unwrap()
}

const SESSIONS: u64 = 8;
const MAX_SAMPLES_PER_SESSION: u64 = 8_192;

fn make_query(engine: &NeedleTail) -> VizQuery<'_> {
    VizQuery::new(engine)
        .group_by("name")
        .avg("delay")
        .bound(100.0)
        .samples_per_round(4)
        .max_samples(MAX_SAMPLES_PER_SESSION)
}

/// Drives all sessions standalone, one after the other; returns total
/// rounds stepped.
fn run_standalone(engine: &NeedleTail) -> u64 {
    let mut rounds = 0;
    for seed in 0..SESSIONS {
        let mut session = make_query(engine)
            .start(StdRng::seed_from_u64(100 + seed))
            .unwrap();
        loop {
            let update = session.step();
            rounds += 1;
            if !update.outcome.is_running() {
                break;
            }
        }
        black_box(session.finish());
    }
    rounds
}

/// Drives the same sessions through the scheduler; returns total rounds.
fn run_scheduled(engine: &NeedleTail, policy: SchedulePolicy) -> u64 {
    let mut sched = MultiQueryScheduler::new(policy);
    for seed in 0..SESSIONS {
        sched.admit(
            make_query(engine)
                .start(StdRng::seed_from_u64(100 + seed))
                .unwrap(),
        );
    }
    let mut rounds = 0;
    sched.run(|event| {
        if matches!(event, SchedulerEvent::Round { .. }) {
            rounds += 1;
        }
    });
    for (_, answer) in sched.finish_all() {
        black_box(answer);
    }
    rounds
}

fn main() {
    let mode = Mode::from_args();
    let engine = bench_engine();
    // Fixed-seed runs are deterministic, so one counting pass fixes the
    // per-iteration work for every variant (and sanity-checks that the
    // scheduler performs the same number of rounds as the plain loop).
    let standalone_rounds = run_standalone(&engine);
    let scheduled_rounds = run_scheduled(&engine, SchedulePolicy::FairShare);
    assert_eq!(
        standalone_rounds, scheduled_rounds,
        "scheduling must not change the work"
    );

    let mut results = Vec::new();
    results.push(measure(
        "sessions/standalone_loop",
        standalone_rounds,
        mode,
        "rounds/s",
        || {
            black_box(run_standalone(&engine));
        },
    ));
    for (name, policy) in [
        ("sessions/scheduled_fair_share", SchedulePolicy::FairShare),
        ("sessions/scheduled_deadline", SchedulePolicy::DeadlineAware),
        (
            "sessions/scheduled_greedy",
            SchedulePolicy::GreedyConvergence,
        ),
    ] {
        results.push(measure(name, scheduled_rounds, mode, "rounds/s", || {
            black_box(run_scheduled(&engine, policy));
        }));
    }

    report(&results, mode);
    if mode == Mode::Gate {
        let baseline_path = std::env::var("BENCH_SCHEDULER_BASELINE").unwrap_or_else(|_| {
            format!("{}/../../BENCH_scheduler.json", env!("CARGO_MANIFEST_DIR"))
        });
        let config = GateConfig {
            baseline_path,
            pairs: SPEEDUP_PAIRS,
            tolerance: GATE_TOLERANCE,
        };
        let regressions = gate_against_baseline(&results, &config);
        if regressions > 0 {
            eprintln!("scheduler perf gate: {regressions} regression(s)");
            std::process::exit(1);
        }
        println!("scheduler perf gate: ok");
    }
}

fn report(results: &[Measurement], mode: Mode) {
    if mode == Mode::Quick {
        println!("quick mode: skipping BENCH_scheduler.json write");
        return;
    }
    let cpus = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let mut json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"multi-query scheduler: interleaved sessions vs standalone loop\",\n",
            "  \"unit\": \"rounds per second\",\n",
            "  \"note\": \"8 near-tie sessions, 8 groups each, budget-capped to identical \
             round counts; scheduled-over-standalone ratios isolate the scheduler's \
             per-quantum overhead. Measured on a {cpus}-cpu host.\",\n",
            "  \"results\": {{\n",
        ),
        cpus = cpus
    );
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{}\": {:.1}{comma}", m.name, m.per_sec);
    }
    json.push_str("  },\n  \"ratios\": {\n");
    for (i, &(standalone, scheduled)) in SPEEDUP_PAIRS.iter().enumerate() {
        let get = |n: &str| results.iter().find(|m| m.name == n).map(|m| m.per_sec);
        let ratio = match (get(standalone), get(scheduled)) {
            (Some(b), Some(n)) if b > 0.0 => n / b,
            _ => 0.0,
        };
        let comma = if i + 1 == SPEEDUP_PAIRS.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(json, "    \"{scheduled}\": {ratio:.3}{comma}");
    }
    json.push_str("  }\n}\n");
    let default_out = match mode {
        Mode::Gate => format!(
            "{}/../../BENCH_scheduler.fresh.json",
            env!("CARGO_MANIFEST_DIR")
        ),
        _ => format!("{}/../../BENCH_scheduler.json", env!("CARGO_MANIFEST_DIR")),
    };
    let out_path = std::env::var("BENCH_SCHEDULER_OUT").unwrap_or(default_out);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("\nfailed to write {out_path}: {e}"),
    }
}
