//! Microbenchmarks of the concentration-bound layer: the per-round ε
//! evaluation sits on IFOCUS's hot path (once per round).

// criterion_group! expands to undocumented pub items.
#![allow(missing_docs)]
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rapidviz_stats::{
    hoeffding_half_width, serfling_half_width, EpsilonSchedule, Interval, IntervalSet, SamplingMode,
};

fn bench_widths(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounds");
    group.bench_function("hoeffding_half_width", |b| {
        let mut m = 1u64;
        b.iter(|| {
            m = m % 1_000_000 + 1;
            black_box(hoeffding_half_width(m, 0.05, 100.0))
        });
    });
    group.bench_function("serfling_half_width", |b| {
        let mut m = 1u64;
        b.iter(|| {
            m = m % 1_000_000 + 1;
            black_box(serfling_half_width(m, 10_000_000, 0.05, 100.0))
        });
    });
    let schedule = EpsilonSchedule::new(100.0, 0.05, 10);
    group.bench_function("anytime_schedule", |b| {
        let mut m = 1u64;
        b.iter(|| {
            m = m % 1_000_000 + 1;
            black_box(schedule.half_width(m, 10_000_000))
        });
    });
    let with_repl =
        EpsilonSchedule::with_options(100.0, 0.05, 10, 1.0, SamplingMode::WithReplacement, 1.0);
    group.bench_function("anytime_schedule_with_replacement", |b| {
        let mut m = 1u64;
        b.iter(|| {
            m = m % 1_000_000 + 1;
            black_box(with_repl.half_width(m, u64::MAX))
        });
    });
    group.finish();
}

fn bench_interval_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_set");
    for k in [10usize, 100, 1000] {
        let intervals: Vec<Interval> = (0..k)
            .map(|i| Interval::centered(i as f64 * 3.0, 2.0))
            .collect();
        group.bench_function(format!("build_and_probe_k{k}"), |b| {
            b.iter(|| {
                let set = IntervalSet::new(intervals.clone());
                let mut overlapping = 0usize;
                for i in 0..k {
                    overlapping += usize::from(set.member_overlaps_others(i));
                }
                black_box(overlapping)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_widths, bench_interval_set);
criterion_main!(benches);
