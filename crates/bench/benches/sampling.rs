//! Sampling-pipeline benchmark: single-draw loop vs batched `select_many`
//! resolution vs (optionally) the parallel per-group round fan-out.
//!
//! Run with `cargo bench --bench sampling` (use `--features parallel` to
//! include the threaded round path). Beyond the usual console lines, the
//! run writes `BENCH_sampling.json` into the workspace root (override with
//! `BENCH_SAMPLING_OUT`) so the perf trajectory is tracked in-repo.
//!
//! Two reduced modes:
//!
//! * `--quick` / `--test` — single-iteration smoke pass, no JSON write.
//! * `--gate` — the CI perf-regression gate: a shortened but *measured*
//!   pass compared against the committed `BENCH_sampling.json` (override
//!   with `BENCH_SAMPLING_BASELINE`) **by speedup ratio, not absolute
//!   draws/s**: for every tracked (single-loop, batched) pair, the fresh
//!   batched-over-single ratio — both sides measured on the *same* host in
//!   the *same* run, so machine speed cancels — must not fall more than
//!   [`GATE_TOLERANCE`]× below the baseline's ratio for that pair. This
//!   keeps slow or noisy CI runners from flaking the gate while still
//!   catching real pipeline regressions (a batched path collapsing back to
//!   per-draw cost shows up in the ratio no matter the hardware). The
//!   fresh numbers are written to `BENCH_sampling.fresh.json` (override
//!   with `BENCH_SAMPLING_OUT`) for artifact upload, never to the
//!   committed baseline. Pairs with a side missing from either run (e.g.
//!   the `parallel`-feature fan-out when the gate builds without it) are
//!   skipped with a note; a missing baseline fails loudly.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rapidviz_bench::perfgate::{self, GateConfig, Measurement, Mode};
use rapidviz_core::group::VecGroup;
use rapidviz_core::{AlgoConfig, IFocus};
use rapidviz_needletail::sampler::BitmapSampler;
use rapidviz_needletail::Bitmap;
use std::fmt::Write as _;
use std::hint::black_box;

/// 1M-row bitmap with a realistic mixed profile: a dense cluster plus
/// scattered singletons (≈260k eligible rows).
fn test_bitmap() -> Bitmap {
    let mut positions: Vec<u64> = (100_000..300_000).collect();
    positions.extend((300_000..1_000_000).step_by(12).map(|p| p as u64));
    Bitmap::from_sorted_positions(&positions, 1_000_000)
}

/// How far a gate-mode **speedup ratio** (batched vs single-loop, measured
/// on the same host) may fall below the committed baseline's ratio before
/// the gate fails: `fresh_ratio < baseline_ratio / GATE_TOLERANCE` is a
/// regression. Ratios cancel the runner's absolute speed, so this only has
/// to absorb timing jitter within one run (observed well under ±20% even
/// in the shortened gate pass). It must stay well below the smallest
/// baseline ratio worth defending (~2.4× for the big-batch cache-cold
/// cases): at 1.5× a batched path collapsing to single-draw cost
/// (ratio → 1.0) fails every pair whose baseline ratio exceeds 1.5.
const GATE_TOLERANCE: f64 = 1.5;

/// The (single-loop baseline, optimized/batched) measurement pairs whose
/// speedups are reported in the JSON and enforced (as ratios) by the gate.
const SPEEDUP_PAIRS: &[(&str, &str)] = &[
    // Headline: the batched pipeline vs the seed single-draw loop.
    (
        "with_replacement/seed_single_loop",
        "with_replacement/batched_64",
    ),
    (
        "with_replacement/seed_single_loop",
        "with_replacement/batched_1024",
    ),
    (
        "without_replacement/seed_single_loop",
        "without_replacement/batched_64",
    ),
    (
        "without_replacement/seed_single_loop",
        "without_replacement/batched_256",
    ),
    (
        "without_replacement/seed_single_loop",
        "without_replacement/batched_1024",
    ),
    (
        "without_replacement/seed_single_loop",
        "without_replacement/batched_4096",
    ),
    // The PR also speeds up the single-draw path itself (broadword
    // select + open-addressed swap map):
    (
        "without_replacement/seed_single_loop",
        "without_replacement/single_loop",
    ),
    // Batched vs the already-optimized single loop, for transparency:
    (
        "with_replacement/single_loop",
        "with_replacement/batched_1024",
    ),
    (
        "without_replacement/single_loop",
        "without_replacement/batched_1024",
    ),
    // Select-bound regime (paper-scale bitmaps, cache-cold directory):
    (
        "large16m_with_replacement/seed_single_loop",
        "large16m_with_replacement/batched_64",
    ),
    (
        "large16m_with_replacement/seed_single_loop",
        "large16m_with_replacement/batched_1024",
    ),
    (
        "large16m_with_replacement/seed_single_loop",
        "large16m_with_replacement/batched_4096",
    ),
    (
        "large16m_without_replacement/seed_single_loop",
        "large16m_without_replacement/batched_64",
    ),
    (
        "large16m_without_replacement/seed_single_loop",
        "large16m_without_replacement/batched_1024",
    ),
    (
        "large16m_without_replacement/seed_single_loop",
        "large16m_without_replacement/batched_4096",
    ),
    (
        "large16m_without_replacement/single_loop",
        "large16m_without_replacement/batched_4096",
    ),
    // Cache-cold regime (DRAM-latency directory):
    (
        "huge256m_with_replacement/seed_single_loop",
        "huge256m_with_replacement/batched_64",
    ),
    (
        "huge256m_with_replacement/seed_single_loop",
        "huge256m_with_replacement/batched_1024",
    ),
    (
        "huge256m_with_replacement/seed_single_loop",
        "huge256m_with_replacement/batched_4096",
    ),
    (
        "huge256m_without_replacement/seed_single_loop",
        "huge256m_without_replacement/batched_64",
    ),
    (
        "huge256m_without_replacement/seed_single_loop",
        "huge256m_without_replacement/batched_1024",
    ),
    (
        "huge256m_without_replacement/seed_single_loop",
        "huge256m_without_replacement/batched_4096",
    ),
    (
        "huge256m_without_replacement/single_loop",
        "huge256m_without_replacement/batched_4096",
    ),
    (
        "huge256m_with_replacement/seed_single_loop",
        "huge256m_with_replacement/batched_16384",
    ),
    (
        "huge256m_without_replacement/seed_single_loop",
        "huge256m_without_replacement/batched_16384",
    ),
    ("ifocus/round_batch_1", "ifocus/round_batch_64"),
    (
        "ifocus_wide/round_batch_4096",
        "ifocus_wide/round_batch_4096_parallel",
    ),
];

/// Faithful replica of the **seed** (pre-PR) sampling path, kept here as
/// the "before" baseline: a superblock directory binary search per draw, a
/// per-bit clear-lowest scan inside the word, and a SipHash-keyed `HashMap`
/// for the virtual Fisher–Yates state. The PR replaced all three (broadword
/// select, open-addressed swap map, batched `select_many` resolution).
mod seed_baseline {
    use rand::Rng;
    use std::collections::HashMap;

    const WORDS_PER_SUPERBLOCK: usize = 8;

    #[derive(Clone)]
    pub struct SeedDense {
        words: Vec<u64>,
        super_ranks: Vec<u64>,
        count_ones: u64,
    }

    impl SeedDense {
        pub fn from_sorted_positions(positions: &[u64], len: u64) -> Self {
            let mut words = vec![0u64; (len.div_ceil(64)) as usize];
            for &p in positions {
                words[(p / 64) as usize] |= 1u64 << (p % 64);
            }
            Self::from_words(words, len)
        }

        pub fn from_words(words: Vec<u64>, _len: u64) -> Self {
            let n_super = words.len().div_ceil(WORDS_PER_SUPERBLOCK);
            let mut super_ranks = Vec::with_capacity(n_super + 1);
            let mut running = 0u64;
            for s in 0..=n_super {
                super_ranks.push(running);
                if s < n_super {
                    let start = s * WORDS_PER_SUPERBLOCK;
                    let end = (start + WORDS_PER_SUPERBLOCK).min(words.len());
                    running += words[start..end]
                        .iter()
                        .map(|w| u64::from(w.count_ones()))
                        .sum::<u64>();
                }
            }
            Self {
                words,
                super_ranks,
                count_ones: running,
            }
        }

        pub fn count_ones(&self) -> u64 {
            self.count_ones
        }

        pub fn select(&self, k: u64) -> Option<u64> {
            if k >= self.count_ones {
                return None;
            }
            let sb = self.super_ranks.partition_point(|&r| r <= k) - 1;
            let mut remaining = k - self.super_ranks[sb];
            let word_start = sb * WORDS_PER_SUPERBLOCK;
            let word_end = (word_start + WORDS_PER_SUPERBLOCK).min(self.words.len());
            for wi in word_start..word_end {
                let ones = u64::from(self.words[wi].count_ones());
                if remaining < ones {
                    let bit = seed_select_in_word(self.words[wi], remaining as u32);
                    return Some((wi as u64) * 64 + u64::from(bit));
                }
                remaining -= ones;
            }
            unreachable!()
        }
    }

    /// The seed's per-bit scan.
    fn seed_select_in_word(mut word: u64, mut r: u32) -> u32 {
        loop {
            let tz = word.trailing_zeros();
            if r == 0 {
                return tz;
            }
            word &= word - 1;
            r -= 1;
        }
    }

    /// The seed's without-replacement sampler: SipHash map state.
    pub struct SeedSampler {
        bitmap: SeedDense,
        eligible: u64,
        swaps: HashMap<u64, u64>,
        drawn: u64,
    }

    impl SeedSampler {
        pub fn new(bitmap: SeedDense) -> Self {
            let eligible = bitmap.count_ones();
            Self {
                bitmap,
                eligible,
                swaps: HashMap::new(),
                drawn: 0,
            }
        }

        pub fn sample_with_replacement<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u64> {
            if self.eligible == 0 {
                return None;
            }
            let k = rng.gen_range(0..self.eligible);
            self.bitmap.select(k)
        }

        pub fn sample_without_replacement<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<u64> {
            if self.drawn == self.eligible {
                return None;
            }
            let j = rng.gen_range(self.drawn..self.eligible);
            let chosen = self.logical(j);
            let displaced = self.logical(self.drawn);
            self.swaps.insert(j, displaced);
            self.swaps.remove(&self.drawn);
            self.drawn += 1;
            self.bitmap.select(chosen)
        }

        pub fn reset(&mut self) {
            self.swaps.clear();
            self.drawn = 0;
        }

        fn logical(&self, slot: u64) -> u64 {
            *self.swaps.get(&slot).unwrap_or(&slot)
        }
    }
}

/// Measures `total_draws` executed by `f` (which must perform them all) —
/// a thin wrapper over the shared harness fixing this bench's unit label.
fn measure(name: &str, total_draws: u64, mode: Mode, f: impl FnMut()) -> Measurement {
    perfgate::measure(name, total_draws, mode, "draws/s", f)
}

fn main() {
    let mode = Mode::from_args();
    let mut results: Vec<Measurement> = Vec::new();
    let bitmap = test_bitmap();
    let n_draws: u64 = match mode {
        Mode::Quick => 4_096,
        Mode::Gate | Mode::Full => 65_536,
    };

    // --- Seed (pre-PR) baselines: binary search + per-bit scan + SipHash. ---
    {
        let mut positions: Vec<u64> = (100_000..300_000).collect();
        positions.extend((300_000..1_000_000).step_by(12).map(|p| p as u64));
        let seed_bm = seed_baseline::SeedDense::from_sorted_positions(&positions, 1_000_000);
        let seed_sampler = seed_baseline::SeedSampler::new(seed_bm);
        results.push(measure(
            "with_replacement/seed_single_loop",
            n_draws,
            mode,
            || {
                let mut rng = StdRng::seed_from_u64(1);
                for _ in 0..n_draws {
                    black_box(seed_sampler.sample_with_replacement(&mut rng));
                }
            },
        ));
        let seed_bm = seed_baseline::SeedDense::from_sorted_positions(&positions, 1_000_000);
        let mut sampler = seed_baseline::SeedSampler::new(seed_bm);
        results.push(measure(
            "without_replacement/seed_single_loop",
            n_draws,
            mode,
            || {
                // Reset (fresh permutation) per rep instead of cloning the
                // bitmap; the new-path loops below do the same.
                sampler.reset();
                let mut rng = StdRng::seed_from_u64(2);
                for _ in 0..n_draws {
                    black_box(sampler.sample_without_replacement(&mut rng));
                }
            },
        ));
    }

    // --- With replacement: k independent selects vs one sorted sweep. ---
    {
        let mut sampler = BitmapSampler::new(bitmap.clone());
        results.push(measure(
            "with_replacement/single_loop",
            n_draws,
            mode,
            || {
                let mut rng = StdRng::seed_from_u64(1);
                for _ in 0..n_draws {
                    black_box(sampler.sample_with_replacement(&mut rng));
                }
            },
        ));
        for batch in [64usize, 256, 1024, 4096] {
            results.push(measure(
                &format!("with_replacement/batched_{batch}"),
                n_draws,
                mode,
                || {
                    let mut rng = StdRng::seed_from_u64(1);
                    let mut out = Vec::with_capacity(batch);
                    for _ in 0..n_draws / batch as u64 {
                        out.clear();
                        sampler.sample_batch_with_replacement(batch, &mut rng, &mut out);
                        black_box(&out);
                    }
                },
            ));
        }
    }

    // --- Without replacement: virtual Fisher–Yates + select resolution. ---
    {
        let mut sampler = BitmapSampler::new(bitmap.clone());
        results.push(measure(
            "without_replacement/single_loop",
            n_draws,
            mode,
            || {
                sampler.reset();
                let mut rng = StdRng::seed_from_u64(2);
                for _ in 0..n_draws {
                    black_box(sampler.sample_without_replacement(&mut rng));
                }
            },
        ));
        for batch in [64usize, 256, 1024, 4096] {
            let mut sampler = BitmapSampler::new(bitmap.clone());
            results.push(measure(
                &format!("without_replacement/batched_{batch}"),
                n_draws,
                mode,
                || {
                    sampler.reset();
                    let mut rng = StdRng::seed_from_u64(2);
                    let mut out = Vec::with_capacity(batch);
                    for _ in 0..n_draws / batch as u64 {
                        out.clear();
                        sampler.sample_batch_without_replacement(batch, &mut rng, &mut out);
                        black_box(&out);
                    }
                },
            ));
        }
    }

    // --- Select-bound regime: 16M rows, where the rank directory and word
    // array no longer fit in cache and every independent binary search pays
    // memory latency. This is where the paper-scale (10^7–10^10 row)
    // workloads live, and where the sorted monotone sweep wins big.
    {
        let positions: Vec<u64> = (0..16_000_000u64).step_by(4).collect();
        let big = Bitmap::from_sorted_positions(&positions, 16_000_000);
        let seed_big = seed_baseline::SeedDense::from_sorted_positions(&positions, 16_000_000);
        let seed_sampler = seed_baseline::SeedSampler::new(seed_big.clone());
        results.push(measure(
            "large16m_with_replacement/seed_single_loop",
            n_draws,
            mode,
            || {
                let mut rng = StdRng::seed_from_u64(5);
                for _ in 0..n_draws {
                    black_box(seed_sampler.sample_with_replacement(&mut rng));
                }
            },
        ));
        let mut sampler = BitmapSampler::new(big.clone());
        results.push(measure(
            "large16m_with_replacement/single_loop",
            n_draws,
            mode,
            || {
                let mut rng = StdRng::seed_from_u64(5);
                for _ in 0..n_draws {
                    black_box(sampler.sample_with_replacement(&mut rng));
                }
            },
        ));
        for batch in [64usize, 1024, 4096] {
            results.push(measure(
                &format!("large16m_with_replacement/batched_{batch}"),
                n_draws,
                mode,
                || {
                    let mut rng = StdRng::seed_from_u64(5);
                    let mut out = Vec::with_capacity(batch);
                    for _ in 0..n_draws / batch as u64 {
                        out.clear();
                        sampler.sample_batch_with_replacement(batch, &mut rng, &mut out);
                        black_box(&out);
                    }
                },
            ));
        }
        let mut seed_wor = seed_baseline::SeedSampler::new(seed_big.clone());
        results.push(measure(
            "large16m_without_replacement/seed_single_loop",
            n_draws,
            mode,
            || {
                seed_wor.reset();
                let mut rng = StdRng::seed_from_u64(6);
                for _ in 0..n_draws {
                    black_box(seed_wor.sample_without_replacement(&mut rng));
                }
            },
        ));
        let mut wor = BitmapSampler::new(big.clone());
        results.push(measure(
            "large16m_without_replacement/single_loop",
            n_draws,
            mode,
            || {
                wor.reset();
                let mut rng = StdRng::seed_from_u64(6);
                for _ in 0..n_draws {
                    black_box(wor.sample_without_replacement(&mut rng));
                }
            },
        ));
        for batch in [64usize, 1024, 4096] {
            let mut wor = BitmapSampler::new(big.clone());
            results.push(measure(
                &format!("large16m_without_replacement/batched_{batch}"),
                n_draws,
                mode,
                || {
                    wor.reset();
                    let mut rng = StdRng::seed_from_u64(6);
                    let mut out = Vec::with_capacity(batch);
                    for _ in 0..n_draws / batch as u64 {
                        out.clear();
                        wor.sample_batch_without_replacement(batch, &mut rng, &mut out);
                        black_box(&out);
                    }
                },
            ));
        }
    }

    // --- Cache-cold regime: 256M rows (32 MB of words, 4 MB directory),
    // where every independent binary search takes DRAM-latency misses but
    // the sorted sweep's forward walk is prefetch-friendly. ---
    {
        // Every 4th bit set: 64M eligible rows, built straight from words.
        let words = vec![0x1111_1111_1111_1111u64; 4_000_000];
        let big = Bitmap::Dense(rapidviz_needletail::DenseBitmap::from_words(
            words.clone(),
            256_000_000,
        ));
        let seed_big = seed_baseline::SeedDense::from_words(words, 256_000_000);
        let seed_sampler = seed_baseline::SeedSampler::new(seed_big.clone());
        results.push(measure(
            "huge256m_with_replacement/seed_single_loop",
            n_draws,
            mode,
            || {
                let mut rng = StdRng::seed_from_u64(7);
                for _ in 0..n_draws {
                    black_box(seed_sampler.sample_with_replacement(&mut rng));
                }
            },
        ));
        let mut sampler = BitmapSampler::new(big.clone());
        results.push(measure(
            "huge256m_with_replacement/single_loop",
            n_draws,
            mode,
            || {
                let mut rng = StdRng::seed_from_u64(7);
                for _ in 0..n_draws {
                    black_box(sampler.sample_with_replacement(&mut rng));
                }
            },
        ));
        for batch in [64usize, 1024, 4096, 16384] {
            results.push(measure(
                &format!("huge256m_with_replacement/batched_{batch}"),
                n_draws,
                mode,
                || {
                    let mut rng = StdRng::seed_from_u64(7);
                    let mut out = Vec::with_capacity(batch);
                    for _ in 0..n_draws / batch as u64 {
                        out.clear();
                        sampler.sample_batch_with_replacement(batch, &mut rng, &mut out);
                        black_box(&out);
                    }
                },
            ));
        }
        let mut seed_wor = seed_baseline::SeedSampler::new(seed_big.clone());
        results.push(measure(
            "huge256m_without_replacement/seed_single_loop",
            n_draws,
            mode,
            || {
                seed_wor.reset();
                let mut rng = StdRng::seed_from_u64(8);
                for _ in 0..n_draws {
                    black_box(seed_wor.sample_without_replacement(&mut rng));
                }
            },
        ));
        let mut wor = BitmapSampler::new(big.clone());
        results.push(measure(
            "huge256m_without_replacement/single_loop",
            n_draws,
            mode,
            || {
                wor.reset();
                let mut rng = StdRng::seed_from_u64(8);
                for _ in 0..n_draws {
                    black_box(wor.sample_without_replacement(&mut rng));
                }
            },
        ));
        for batch in [64usize, 1024, 4096, 16384] {
            let mut wor = BitmapSampler::new(big.clone());
            results.push(measure(
                &format!("huge256m_without_replacement/batched_{batch}"),
                n_draws,
                mode,
                || {
                    wor.reset();
                    let mut rng = StdRng::seed_from_u64(8);
                    let mut out = Vec::with_capacity(batch);
                    for _ in 0..n_draws / batch as u64 {
                        out.clear();
                        wor.sample_batch_without_replacement(batch, &mut rng, &mut out);
                        black_box(&out);
                    }
                },
            ));
        }
    }

    // --- End-to-end round loop: IFocus with per-round batching. ---
    {
        let make_groups = || -> Vec<VecGroup> {
            let mut rng = StdRng::seed_from_u64(3);
            [30.0f64, 45.0, 55.0, 70.0]
                .iter()
                .enumerate()
                .map(|(i, &mu)| {
                    let values: Vec<f64> = (0..100_000)
                        .map(|_| {
                            use rand::Rng;
                            if rng.gen_bool(mu / 100.0) {
                                100.0
                            } else {
                                0.0
                            }
                        })
                        .collect();
                    VecGroup::new(format!("g{i}"), values)
                })
                .collect()
        };
        let groups_proto = make_groups();
        let run_once = |config: AlgoConfig| {
            let mut groups = groups_proto.clone();
            let mut rng = StdRng::seed_from_u64(4);
            IFocus::new(config)
                .run(&mut groups, &mut rng)
                .total_samples()
        };
        let total = run_once(AlgoConfig::new(100.0, 0.05));
        // Threshold u64::MAX keeps even `parallel`-feature builds on the
        // sequential path for these narrow rounds (4 groups x 64 draws is
        // far below where thread spawn/join pays for itself).
        results.push(measure("ifocus/round_batch_1", total, mode, || {
            black_box(run_once(
                AlgoConfig::new(100.0, 0.05).with_parallel_threshold(u64::MAX),
            ));
        }));
        results.push(measure("ifocus/round_batch_64", total, mode, || {
            black_box(run_once(
                AlgoConfig::new(100.0, 0.05)
                    .with_samples_per_round(64)
                    .with_parallel_threshold(u64::MAX),
            ));
        }));
    }

    // --- Wide rounds: enough per-round work (16 groups x 4096 draws) for
    // the `parallel` feature's thread fan-out to amortize spawn cost. ---
    {
        let make_groups = || -> Vec<VecGroup> {
            let mut rng = StdRng::seed_from_u64(9);
            (0..16)
                .map(|i| {
                    let mu = 20.0 + 4.0 * i as f64;
                    let values: Vec<f64> = (0..100_000)
                        .map(|_| {
                            use rand::Rng;
                            if rng.gen_bool(mu / 100.0) {
                                100.0
                            } else {
                                0.0
                            }
                        })
                        .collect();
                    VecGroup::new(format!("g{i}"), values)
                })
                .collect()
        };
        let groups_proto = make_groups();
        let run_once = |config: AlgoConfig| {
            let mut groups = groups_proto.clone();
            let mut rng = StdRng::seed_from_u64(10);
            IFocus::new(config)
                .run(&mut groups, &mut rng)
                .total_samples()
        };
        let base_cfg = || {
            AlgoConfig::new(100.0, 0.05)
                .with_samples_per_round(4096)
                .with_max_rounds(200)
        };
        let total = run_once(base_cfg().with_parallel_threshold(u64::MAX));
        results.push(measure("ifocus_wide/round_batch_4096", total, mode, || {
            black_box(run_once(base_cfg().with_parallel_threshold(u64::MAX)));
        }));
        #[cfg(feature = "parallel")]
        results.push(measure(
            "ifocus_wide/round_batch_4096_parallel",
            total,
            mode,
            || {
                black_box(run_once(base_cfg().with_parallel_threshold(1)));
            },
        ));
    }

    report(&results, mode);
}

fn speedup(results: &[Measurement], base: &str, new: &str) -> Option<f64> {
    let get = |n: &str| results.iter().find(|m| m.name == n).map(|m| m.per_sec);
    match (get(base), get(new)) {
        (Some(b), Some(n)) if b > 0.0 => Some(n / b),
        _ => None,
    }
}

/// Gate mode: compare fresh **speedup ratios** (batched vs single-loop,
/// both sides from the same host and run) against the committed baseline's
/// ratios via the shared harness. Returns the number of regressions.
fn gate_against_baseline(results: &[Measurement]) -> usize {
    let baseline_path = std::env::var("BENCH_SAMPLING_BASELINE")
        .unwrap_or_else(|_| format!("{}/../../BENCH_sampling.json", env!("CARGO_MANIFEST_DIR")));
    perfgate::gate_against_baseline(
        results,
        &GateConfig {
            baseline_path,
            pairs: SPEEDUP_PAIRS,
            tolerance: GATE_TOLERANCE,
        },
    )
}

fn report(results: &[Measurement], mode: Mode) {
    if mode == Mode::Quick {
        println!("quick mode: skipping BENCH_sampling.json write");
        return;
    }
    let cpus = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let mut json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"sampling pipeline: seed single-draw loop vs batched select_many\",\n",
            "  \"unit\": \"draws per second\",\n",
            "  \"note\": \"seed_single_loop replicates the pre-batching implementation ",
            "(flat directory binary search, per-bit word scan, SipHash Fisher-Yates map). ",
            "Measured on a {cpus}-cpu host; the parallel round fan-out cannot show gains ",
            "below 2 cpus, and small-bitmap regimes are cache-resident here, which favors ",
            "the per-draw baseline.\",\n",
            "  \"results\": {{\n",
        ),
        cpus = cpus
    );
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{}\": {:.0}{comma}", m.name, m.per_sec);
    }
    json.push_str("  },\n  \"speedups\": {\n");
    let lines: Vec<String> = SPEEDUP_PAIRS
        .iter()
        .filter_map(|(b, n)| speedup(results, b, n).map(|s| format!("    \"{n} vs {b}\": {s:.2}")))
        .collect();
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  }\n}\n");
    println!("{json}");
    // Gate runs never overwrite the committed baseline; their numbers go to
    // a sibling "fresh" file for CI artifact upload.
    let default_out = match mode {
        Mode::Gate => format!(
            "{}/../../BENCH_sampling.fresh.json",
            env!("CARGO_MANIFEST_DIR")
        ),
        _ => format!("{}/../../BENCH_sampling.json", env!("CARGO_MANIFEST_DIR")),
    };
    let out_path = std::env::var("BENCH_SAMPLING_OUT").unwrap_or(default_out);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
    if mode == Mode::Gate {
        let regressions = gate_against_baseline(results);
        assert!(
            regressions == 0,
            "perf gate: {regressions} case(s) regressed past {GATE_TOLERANCE}x"
        );
        println!("perf gate passed");
    }
}
