//! Query-planning benchmark: cold vs warm plans over the engine's
//! zero-copy plan cache, on a 1M-row table.
//!
//! **Cold** planning evaluates the predicate against the indexes and
//! intersects it with every group bitmap (fused word-AND or the selective
//! position view, by the engine's cutover). **Warm** planning — a repeat
//! of the same `(group-by, canonical predicate)` — is a cache hit: no
//! evaluation, no intersection, no table-sized allocation; just fresh
//! sampler state over shared row sets. The PR's acceptance floor — warm
//! planning **≥ 5× faster** than cold on 1M rows — is asserted directly in
//! every measured mode, for both cutover regimes.
//!
//! A third pair runs the motivating workload end to end: a four-tile
//! dashboard fan-out through [`rapidviz::MultiQueryScheduler`], every tile
//! sharing one `WHERE` clause, from cold caches vs warm — planning
//! amortization seen from the front door.
//!
//! Run with `cargo bench --bench planning`. Beyond the console lines, the
//! run writes `BENCH_planning.json` into the workspace root (override with
//! `BENCH_PLANNING_OUT`). Two reduced modes, sharing the perf-gate
//! harness ([`rapidviz_bench::perfgate`]):
//!
//! * `--quick` / `--test` — single-iteration smoke pass, no JSON write.
//! * `--gate` — the CI perf-regression gate: a shortened measured pass
//!   whose fresh **warm-over-cold ratios** are compared against the
//!   committed `BENCH_planning.json` (override with
//!   `BENCH_PLANNING_BASELINE`) at [`GATE_TOLERANCE`]×. Both sides of each
//!   ratio come from the same host and run, so machine speed cancels; a
//!   cache regression (accidental re-evaluation, table-sized copies on the
//!   hit path) collapses the ratio on any hardware. Fresh numbers go to
//!   `BENCH_planning.fresh.json`; a missing baseline fails loudly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rapidviz::needletail::{
    ColumnDef, DataType, NeedleTail, Predicate, Schema, TableBuilder, Value,
};
use rapidviz::{MultiQueryScheduler, SchedulePolicy, VizQuery};
use rapidviz_bench::perfgate::{gate_against_baseline, measure, GateConfig, Measurement, Mode};
use std::fmt::Write as _;
use std::hint::black_box;

/// How far a gate-mode warm-over-cold ratio may fall below the committed
/// baseline's before the gate fails. The true ratio is large (a hash
/// lookup vs millions of bitmap words), so generous headroom still
/// catches the failure mode that matters: the warm path quietly repeating
/// cold work, which collapses the ratio toward 1.
const GATE_TOLERANCE: f64 = 5.0;

/// The PR's acceptance floor, asserted in every measured mode.
const MIN_WARM_SPEEDUP: f64 = 5.0;

/// The (cold, warm) measurement pairs whose ratios the gate enforces.
const GATE_PAIRS: &[(&str, &str)] = &[
    ("planning/cold_dense_filter", "planning/warm_dense_filter"),
    (
        "planning/cold_selective_filter",
        "planning/warm_selective_filter",
    ),
];

/// All (baseline, improved) pairs reported in the JSON `ratios` block —
/// the gate pairs plus the end-to-end dashboard fan-out.
const REPORT_PAIRS: &[(&str, &str)] = &[
    ("planning/cold_dense_filter", "planning/warm_dense_filter"),
    (
        "planning/cold_selective_filter",
        "planning/warm_selective_filter",
    ),
    ("planning/fanout_cold", "planning/fanout_warm"),
];

const ROWS: u32 = 1_000_000;
const GROUPS: u32 = 8;

/// 1M rows, 8 near-tied groups, a 10-valued indexed `year` to filter on.
fn bench_engine() -> NeedleTail {
    let mut b = TableBuilder::new(Schema::new(vec![
        ColumnDef::new("name", DataType::Str),
        ColumnDef::new("year", DataType::Int),
        ColumnDef::new("delay", DataType::Float),
    ]));
    let mut rng = StdRng::seed_from_u64(11);
    for i in 0..ROWS {
        // Group and filter year are drawn independently so no filter can
        // accidentally empty a group through modular correlation.
        let g = rng.gen_range(0..GROUPS);
        let year = rng.gen_range(0..10i64);
        let mu = 50.0 + 0.1 * (f64::from(g) - 3.5);
        let delay = if rng.gen_bool(mu / 100.0) {
            100.0
        } else {
            f64::from(i % 7)
        };
        b.push_row(vec![
            format!("g{g}").into(),
            Value::Int(2000 + year),
            Value::Float(delay),
        ]);
    }
    NeedleTail::new(b.finish(), &["name", "year", "delay"]).unwrap()
}

/// Filter above the selectivity cutover (~9% of rows qualify): every
/// group intersection materializes through the fused word-AND.
fn dense_filter() -> Predicate {
    Predicate::eq("year", Value::Int(2005)).and(Predicate::ge("delay", 1.0))
}

/// Filter below the cutover (~0.7% of rows): every group intersection is
/// stored as a sorted-position view instead of a table-length bitmap.
fn selective_filter() -> Predicate {
    Predicate::eq("year", Value::Int(2005)).and(Predicate::eq("delay", Value::Float(2.0)))
}

/// One planning operation: build the full group-handle set.
fn plan_once(engine: &NeedleTail, filter: &Predicate) -> usize {
    let handles = engine.group_handles("name", "delay", filter).unwrap();
    assert_eq!(handles.len(), GROUPS as usize);
    handles.len()
}

const TILES: u64 = 4;
const MAX_SAMPLES_PER_TILE: u64 = 1_024;

/// A four-tile dashboard fan-out sharing one WHERE clause: admit four
/// budget-capped sessions and drain the scheduler.
fn run_fanout(engine: &NeedleTail) -> u64 {
    let filter = dense_filter();
    let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare);
    for seed in 0..TILES {
        sched.admit(
            VizQuery::new(engine)
                .group_by("name")
                .avg("delay")
                .bound(100.0)
                .samples_per_round(4)
                .max_samples(MAX_SAMPLES_PER_TILE)
                .filter(filter.clone())
                .start(StdRng::seed_from_u64(300 + seed))
                .unwrap(),
        );
    }
    let mut rounds = 0;
    sched.run(|_| rounds += 1);
    for (_, answer) in sched.finish_all() {
        black_box(answer);
    }
    rounds
}

fn main() {
    let mode = Mode::from_args();
    println!("building the 1M-row engine...");
    let engine = bench_engine();

    let mut results = Vec::new();
    for (cold_name, warm_name, filter) in [
        (
            "planning/cold_dense_filter",
            "planning/warm_dense_filter",
            dense_filter(),
        ),
        (
            "planning/cold_selective_filter",
            "planning/warm_selective_filter",
            selective_filter(),
        ),
    ] {
        // Cold: every plan starts from empty caches (the clear itself is
        // a few map drops — noise against the bitmap work it forces).
        results.push(measure(cold_name, 1, mode, "plans/s", || {
            engine.clear_plan_caches();
            black_box(plan_once(&engine, &filter));
        }));
        // Warm: identical query, caches primed — the repeat-query path.
        engine.clear_plan_caches();
        plan_once(&engine, &filter);
        results.push(measure(warm_name, 1, mode, "plans/s", || {
            black_box(plan_once(&engine, &filter));
        }));
    }

    // The dashboard fan-out, end to end (planning + sampling + scheduling).
    let fanout_rounds = {
        engine.clear_plan_caches();
        run_fanout(&engine)
    };
    results.push(measure(
        "planning/fanout_cold",
        fanout_rounds,
        mode,
        "rounds/s",
        || {
            engine.clear_plan_caches();
            black_box(run_fanout(&engine));
        },
    ));
    results.push(measure(
        "planning/fanout_warm",
        fanout_rounds,
        mode,
        "rounds/s",
        || {
            black_box(run_fanout(&engine));
        },
    ));

    if mode != Mode::Quick {
        // The PR's acceptance criterion, enforced wherever we measured.
        for &(cold, warm) in GATE_PAIRS {
            let get = |n: &str| {
                results
                    .iter()
                    .find(|m| m.name == n)
                    .map(|m| m.per_sec)
                    .unwrap_or(0.0)
            };
            let (c, w) = (get(cold), get(warm));
            assert!(
                w >= MIN_WARM_SPEEDUP * c,
                "warm planning must be >= {MIN_WARM_SPEEDUP}x cold: {warm} {w:.0}/s vs {cold} {c:.0}/s"
            );
            println!("{warm} is {:.0}x {cold}", w / c);
        }
    }

    report(&results, mode);
    if mode == Mode::Gate {
        let baseline_path = std::env::var("BENCH_PLANNING_BASELINE").unwrap_or_else(|_| {
            format!("{}/../../BENCH_planning.json", env!("CARGO_MANIFEST_DIR"))
        });
        let config = GateConfig {
            baseline_path,
            pairs: GATE_PAIRS,
            tolerance: GATE_TOLERANCE,
        };
        let regressions = gate_against_baseline(&results, &config);
        if regressions > 0 {
            eprintln!("planning perf gate: {regressions} regression(s)");
            std::process::exit(1);
        }
        println!("planning perf gate: ok");
    }
}

fn report(results: &[Measurement], mode: Mode) {
    if mode == Mode::Quick {
        println!("quick mode: skipping BENCH_planning.json write");
        return;
    }
    let cpus = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let mut json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"query planning: cold vs warm plan cache on 1M rows\",\n",
            "  \"unit\": \"plans per second (fanout cases: scheduler rounds per second)\",\n",
            "  \"note\": \"cold = caches cleared before every plan (predicate evaluation + \
             per-group intersection); warm = repeat query served by the plan cache. \
             dense_filter materializes fused word-ANDs, selective_filter takes the \
             sorted-position intersection view. fanout = four budget-capped dashboard \
             tiles sharing one WHERE through the FairShare scheduler. Measured on a \
             {cpus}-cpu host.\",\n",
            "  \"results\": {{\n",
        ),
        cpus = cpus
    );
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{}\": {:.1}{comma}", m.name, m.per_sec);
    }
    json.push_str("  },\n  \"ratios\": {\n");
    for (i, &(cold, warm)) in REPORT_PAIRS.iter().enumerate() {
        let get = |n: &str| results.iter().find(|m| m.name == n).map(|m| m.per_sec);
        let ratio = match (get(cold), get(warm)) {
            (Some(b), Some(n)) if b > 0.0 => n / b,
            _ => 0.0,
        };
        let comma = if i + 1 == REPORT_PAIRS.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{warm}\": {ratio:.3}{comma}");
    }
    json.push_str("  }\n}\n");
    let default_out = match mode {
        Mode::Gate => format!(
            "{}/../../BENCH_planning.fresh.json",
            env!("CARGO_MANIFEST_DIR")
        ),
        _ => format!("{}/../../BENCH_planning.json", env!("CARGO_MANIFEST_DIR")),
    };
    let out_path = std::env::var("BENCH_PLANNING_OUT").unwrap_or(default_out);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("\nfailed to write {out_path}: {e}"),
    }
}
