//! Microbenchmarks of the core sampling algorithms across the paper's
//! workload families: samples-to-termination throughput per algorithm.

// criterion_group! expands to undocumented pub items.
#![allow(missing_docs)]
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rapidviz_bench::AlgorithmKind;
use rapidviz_core::AlgoConfig;
use rapidviz_datagen::{DatasetSpec, WorkloadFamily};

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms");
    group.sample_size(10);
    for family in [
        ("mixture", WorkloadFamily::Mixture),
        ("bernoulli", WorkloadFamily::Bernoulli),
        ("truncnorm", WorkloadFamily::TruncNorm),
    ] {
        for kind in AlgorithmKind::PAPER_SIX {
            group.bench_with_input(
                BenchmarkId::new(family.0, kind.name()),
                &kind,
                |b, &kind| {
                    let spec = DatasetSpec::generate(family.1, 10, 10_000_000, 7);
                    let base = AlgoConfig::new(100.0, 0.05).with_max_rounds(200_000);
                    b.iter(|| {
                        let mut groups = spec.virtual_groups();
                        let mut rng = StdRng::seed_from_u64(11);
                        black_box(kind.run(&base, 1.0, &mut groups, &mut rng))
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_group_count_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ifocus_group_count");
    group.sample_size(10);
    for k in [5usize, 10, 20, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let spec = DatasetSpec::generate(WorkloadFamily::Mixture, k, 1_000_000 * k as u64, 3);
            let base = AlgoConfig::new(100.0, 0.05)
                .with_resolution(1.0)
                .with_max_rounds(100_000);
            b.iter(|| {
                let mut groups = spec.virtual_groups();
                let mut rng = StdRng::seed_from_u64(13);
                black_box(AlgorithmKind::IFocusR.run(&base, 1.0, &mut groups, &mut rng))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_algorithms, bench_group_count_scaling
}
criterion_main!(benches);
