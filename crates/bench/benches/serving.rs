//! Serving-layer benchmark: the same fixed-seed workload run through the
//! TCP wire protocol vs straight in-process `execute()` calls — the gap
//! is the serving stack's overhead (framing, channel hops, scheduler
//! multiplexing, loopback syscalls).
//!
//! Run with `cargo bench --bench serving`. Beyond the console lines, the
//! run writes `BENCH_serving.json` into the workspace root (override with
//! `BENCH_SERVING_OUT`): sessions/s and frames/s measurements, the
//! wire-over-inprocess ratio, and time-to-first-certified-bar p50/p99
//! under 8 concurrent closed-loop clients.
//!
//! Two reduced modes on the shared harness ([`rapidviz_bench::perfgate`]):
//!
//! * `--quick` / `--test` — single-iteration smoke pass, no JSON write.
//! * `--gate` — the CI perf-regression gate, compared against the
//!   committed `BENCH_serving.json` (override with
//!   `BENCH_SERVING_BASELINE`) **by ratio**: the wire-over-inprocess
//!   sessions/s ratio — both sides measured on the same host in the same
//!   run, so machine speed cancels — must not fall more than
//!   [`GATE_TOLERANCE`]× below the baseline's. A serving-stack
//!   regression (per-frame allocation storm, scheduler-thread stall,
//!   accidental sync round-trip per round) drags the ratio on any
//!   hardware. Fresh numbers go to `BENCH_serving.fresh.json`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rapidviz::needletail::NeedleTail;
use rapidviz::{Aggregate, VizQuery};
use rapidviz_bench::perfgate::{gate_against_baseline, measure, GateConfig, Measurement, Mode};
use rapidviz_datagen::FlightModel;
use rapidviz_serve::{QueryRequest, Server, ServerConfig, ServerHandle, WireClient};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// How far the gate-mode wire-over-inprocess **sessions/s ratio** may
/// fall below the committed baseline's before the gate fails. The wire
/// path adds real, noisy costs (loopback syscalls, thread scheduling),
/// so the headroom is wider than the pure-CPU gates'.
const GATE_TOLERANCE: f64 = 2.0;

const RATIO_PAIRS: &[(&str, &str)] = &[("serving/inprocess_sessions", "serving/wire_sessions")];

const TABLE_SEED: u64 = 31;
const ROWS: u64 = 20_000;
const CLIENTS: u64 = 8;
const QUERIES_PER_CLIENT: u64 = 2;
const SESSIONS: u64 = CLIENTS * QUERIES_PER_CLIENT;
const MAX_SAMPLES: u64 = 4_096;
const SAMPLES_PER_ROUND: u64 = 16;
const MEASURES: [&str; 3] = ["elapsed", "arr_delay", "dep_delay"];

fn bench_engine() -> NeedleTail {
    let mut rng = StdRng::seed_from_u64(TABLE_SEED);
    let table = FlightModel::new(TABLE_SEED).to_table(ROWS, &mut rng);
    NeedleTail::new(table, &["name"]).expect("flight engine builds")
}

/// The fixed workload: query `q` of client `c`, identical on both paths.
fn request_for(c: u64, q: u64) -> QueryRequest {
    let i = c * QUERIES_PER_CLIENT + q;
    let mut req = QueryRequest::avg("name", MEASURES[(i % 3) as usize], 1_000 + i);
    req.aggregate = [Aggregate::Avg, Aggregate::Sum, Aggregate::Count][(i % 3) as usize];
    req.max_samples = Some(MAX_SAMPLES);
    req.samples_per_round = Some(SAMPLES_PER_ROUND);
    req
}

/// Runs the whole workload in-process, sequentially (the no-wire
/// baseline).
fn run_inprocess(engine: &NeedleTail) {
    for c in 0..CLIENTS {
        for q in 0..QUERIES_PER_CLIENT {
            let req = request_for(c, q);
            let mut query = VizQuery::new(engine).group_by("name");
            query = match req.aggregate {
                Aggregate::Avg => query.avg(req.measure.clone()),
                Aggregate::Sum => query.sum(req.measure.clone()),
                Aggregate::Count => query.count(req.measure.clone()),
            };
            let answer = query
                .samples_per_round(SAMPLES_PER_ROUND)
                .max_samples(MAX_SAMPLES)
                .execute(&mut StdRng::seed_from_u64(req.seed))
                .expect("bench query runs");
            black_box(answer);
        }
    }
}

/// Per-fleet-run statistics.
#[derive(Default)]
struct FleetRun {
    frames: u64,
    ttfcb: Vec<Duration>,
}

/// Runs the workload as 8 concurrent closed-loop wire clients.
fn run_wire_fleet(handle: &ServerHandle) -> FleetRun {
    let addr = handle.local_addr();
    let per_client: Vec<(u64, Vec<Duration>)> = std::thread::scope(|scope| {
        (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut frames = 0u64;
                    let mut ttfcb = Vec::new();
                    for q in 0..QUERIES_PER_CLIENT {
                        let mut client = WireClient::connect(addr, Duration::from_secs(30))
                            .expect("bench client connects");
                        let req = request_for(c, q);
                        let start = Instant::now();
                        client.send_request(&req).expect("request sent");
                        let mut first: Option<Duration> = None;
                        loop {
                            match client.next_frame().expect("frame decodes") {
                                Some(rapidviz_serve::Frame::Round(r)) => {
                                    frames += 1;
                                    if first.is_none() && !r.newly_certified.is_empty() {
                                        first = Some(start.elapsed());
                                    }
                                }
                                Some(rapidviz_serve::Frame::Answer(_)) => {
                                    frames += 1;
                                    break;
                                }
                                Some(other) => panic!("unexpected frame {other:?}"),
                                None => panic!("stream closed without terminal answer"),
                            }
                        }
                        ttfcb.push(first.unwrap_or_else(|| start.elapsed()));
                    }
                    (frames, ttfcb)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("bench client joins"))
            .collect()
    });
    let mut run = FleetRun::default();
    for (frames, ttfcb) in per_client {
        run.frames += frames;
        run.ttfcb.extend(ttfcb);
    }
    run
}

fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)].as_secs_f64() * 1e3
}

fn main() {
    let mode = Mode::from_args();
    let engine = bench_engine();
    let handle = Server::start(
        bench_engine(),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_clients: CLIENTS as usize * 2,
            ..ServerConfig::default()
        },
    )
    .expect("bench server binds");

    // One counting pass fixes the per-iteration frame volume and collects
    // the concurrent-client latency distribution.
    let counting = run_wire_fleet(&handle);
    let frames_per_iter = counting.frames;
    let mut ttfcb = counting.ttfcb;
    ttfcb.sort();
    let p50 = percentile_ms(&ttfcb, 0.50);
    let p99 = percentile_ms(&ttfcb, 0.99);

    let mut results = Vec::new();
    results.push(measure(
        "serving/inprocess_sessions",
        SESSIONS,
        mode,
        "sessions/s",
        || run_inprocess(&engine),
    ));
    results.push(measure(
        "serving/wire_sessions",
        SESSIONS,
        mode,
        "sessions/s",
        || {
            black_box(run_wire_fleet(&handle).frames);
        },
    ));
    results.push(measure(
        "serving/wire_frames",
        frames_per_iter,
        mode,
        "frames/s",
        || {
            black_box(run_wire_fleet(&handle).frames);
        },
    ));
    println!(
        "time-to-first-certified-bar under {CLIENTS} concurrent clients: \
         p50 {p50:.2}ms  p99 {p99:.2}ms"
    );

    report(&results, mode, p50, p99);
    if mode == Mode::Gate {
        let baseline_path = std::env::var("BENCH_SERVING_BASELINE")
            .unwrap_or_else(|_| format!("{}/../../BENCH_serving.json", env!("CARGO_MANIFEST_DIR")));
        let config = GateConfig {
            baseline_path,
            pairs: RATIO_PAIRS,
            tolerance: GATE_TOLERANCE,
        };
        let regressions = gate_against_baseline(&results, &config);
        handle.shutdown();
        if regressions > 0 {
            eprintln!("serving perf gate: {regressions} regression(s)");
            std::process::exit(1);
        }
        println!("serving perf gate: ok");
    } else {
        handle.shutdown();
    }
}

fn report(results: &[Measurement], mode: Mode, p50: f64, p99: f64) {
    if mode == Mode::Quick {
        println!("quick mode: skipping BENCH_serving.json write");
        return;
    }
    let cpus = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let mut json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"wire serving layer: concurrent TCP clients vs in-process execution\",\n",
            "  \"unit\": \"sessions per second (frames/s for the frame case)\",\n",
            "  \"note\": \"{clients} closed-loop loopback clients x {qpc} fixed-seed queries \
             (AVG/SUM/COUNT over the flight model, budget-capped); wire-over-inprocess \
             sessions/s ratio isolates the serving stack's overhead. Measured on a \
             {cpus}-cpu host.\",\n",
            "  \"results\": {{\n",
        ),
        clients = CLIENTS,
        qpc = QUERIES_PER_CLIENT,
        cpus = cpus
    );
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{}\": {:.1}{comma}", m.name, m.per_sec);
    }
    json.push_str("  },\n  \"ratios\": {\n");
    for (i, &(baseline, wire)) in RATIO_PAIRS.iter().enumerate() {
        let get = |n: &str| results.iter().find(|m| m.name == n).map(|m| m.per_sec);
        let ratio = match (get(baseline), get(wire)) {
            (Some(b), Some(n)) if b > 0.0 => n / b,
            _ => 0.0,
        };
        let comma = if i + 1 == RATIO_PAIRS.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{wire}\": {ratio:.3}{comma}");
    }
    json.push_str("  },\n  \"latency_ms\": {\n");
    let _ = writeln!(json, "    \"ttfcb_p50\": {p50:.2},");
    let _ = writeln!(json, "    \"ttfcb_p99\": {p99:.2}");
    json.push_str("  }\n}\n");
    let default_out = match mode {
        Mode::Gate => format!(
            "{}/../../BENCH_serving.fresh.json",
            env!("CARGO_MANIFEST_DIR")
        ),
        _ => format!("{}/../../BENCH_serving.json", env!("CARGO_MANIFEST_DIR")),
    };
    let out_path = std::env::var("BENCH_SERVING_OUT").unwrap_or(default_out);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("\nfailed to write {out_path}: {e}"),
    }
}
