//! Microbenchmarks of the NEEDLETAIL bitmap substrate: index build,
//! rank/select probes, random member retrieval, and boolean algebra.

// criterion_group! expands to undocumented pub items.
#![allow(missing_docs)]
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rapidviz_needletail::bitmap::{Bitmap, DenseBitmap, RleBitmap};

fn random_bitmap(len: u64, density: f64, seed: u64) -> DenseBitmap {
    let mut rng = StdRng::seed_from_u64(seed);
    let positions: Vec<u64> = (0..len).filter(|_| rng.gen_bool(density)).collect();
    DenseBitmap::from_sorted_positions(&positions, len)
}

fn clustered_bitmap(len: u64, start: u64, ones: u64) -> DenseBitmap {
    let positions: Vec<u64> = (start..start + ones).collect();
    DenseBitmap::from_sorted_positions(&positions, len)
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmap_build");
    for len in [100_000u64, 1_000_000] {
        group.bench_with_input(BenchmarkId::new("dense", len), &len, |b, &len| {
            let mut rng = StdRng::seed_from_u64(1);
            let positions: Vec<u64> = (0..len).filter(|_| rng.gen_bool(0.1)).collect();
            b.iter(|| black_box(DenseBitmap::from_sorted_positions(&positions, len)));
        });
        group.bench_with_input(BenchmarkId::new("rle_from_dense", len), &len, |b, &len| {
            let dense = clustered_bitmap(len, len / 4, len / 10);
            b.iter(|| black_box(RleBitmap::from_dense(&dense)));
        });
    }
    group.finish();
}

fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmap_select");
    let len = 1_000_000u64;
    let dense = random_bitmap(len, 0.1, 2);
    let ones = dense.count_ones();
    let rle = RleBitmap::from_dense(&clustered_bitmap(len, len / 4, len / 10));
    let rle_ones = rle.count_ones();
    group.bench_function("dense_select", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7919) % ones;
            black_box(dense.select(k))
        });
    });
    group.bench_function("rle_select", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7919) % rle_ones;
            black_box(rle.select(k))
        });
    });
    group.bench_function("dense_rank", |b| {
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 999_983) % len;
            black_box(dense.rank(p))
        });
    });
    group.finish();
}

fn bench_algebra(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmap_algebra");
    group.sample_size(20);
    let len = 1_000_000u64;
    let a = random_bitmap(len, 0.1, 3);
    let b_ = random_bitmap(len, 0.1, 4);
    group.bench_function("dense_and", |bch| {
        bch.iter(|| black_box(a.and(&b_)));
    });
    let ra = Bitmap::Rle(RleBitmap::from_dense(&clustered_bitmap(len, 0, len / 5)));
    let rb = Bitmap::Rle(RleBitmap::from_dense(&clustered_bitmap(
        len,
        len / 10,
        len / 5,
    )));
    group.bench_function("rle_and_clustered", |bch| {
        bch.iter(|| black_box(ra.and(&rb)));
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_select, bench_algebra);
criterion_main!(benches);
