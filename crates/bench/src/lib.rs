//! # rapidviz-bench
//!
//! The experiment harness: one function per table/figure of the paper's
//! evaluation (§5), each printing the same rows/series the paper reports.
//! See EXPERIMENTS.md for the paper-vs-measured record and
//! `src/bin/experiments.rs` for the CLI.

pub mod algorithms;
pub mod experiments;
pub mod perfgate;
pub mod report;

pub use algorithms::AlgorithmKind;
pub use experiments::ExpOptions;
