//! The six algorithms of the §5 evaluation, behind one dispatcher.

use rand::RngCore;
use rapidviz_core::{AlgoConfig, GroupSource, IFocus, IRefine, RoundRobin, RunResult};

/// The algorithm lineup of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// IFOCUS(δ).
    IFocus,
    /// IFOCUSR(δ, r).
    IFocusR,
    /// IREFINE(δ).
    IRefine,
    /// IREFINER(δ, r).
    IRefineR,
    /// ROUNDROBIN(δ).
    RoundRobin,
    /// ROUNDROBINR(δ, r).
    RoundRobinR,
}

impl AlgorithmKind {
    /// All six, in the paper's legend order.
    pub const PAPER_SIX: [AlgorithmKind; 6] = [
        AlgorithmKind::IFocus,
        AlgorithmKind::IFocusR,
        AlgorithmKind::IRefine,
        AlgorithmKind::IRefineR,
        AlgorithmKind::RoundRobin,
        AlgorithmKind::RoundRobinR,
    ];

    /// Display name matching the paper's figure legends.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::IFocus => "ifocus",
            AlgorithmKind::IFocusR => "ifocusr",
            AlgorithmKind::IRefine => "irefine",
            AlgorithmKind::IRefineR => "irefiner",
            AlgorithmKind::RoundRobin => "roundrobin",
            AlgorithmKind::RoundRobinR => "roundrobinr",
        }
    }

    /// Whether this is a resolution (`-R`) variant.
    #[must_use]
    pub fn uses_resolution(self) -> bool {
        matches!(
            self,
            AlgorithmKind::IFocusR | AlgorithmKind::IRefineR | AlgorithmKind::RoundRobinR
        )
    }

    /// Runs the algorithm: `base` carries `(c, δ, …)`; `r` is the minimum
    /// resolution applied to the `-R` variants only.
    pub fn run<G: GroupSource + rapidviz_core::group::MaybeSend>(
        self,
        base: &AlgoConfig,
        r: f64,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> RunResult {
        let config = if self.uses_resolution() {
            base.clone().with_resolution(r)
        } else {
            base.clone()
        };
        match self {
            AlgorithmKind::IFocus | AlgorithmKind::IFocusR => IFocus::new(config).run(groups, rng),
            AlgorithmKind::IRefine | AlgorithmKind::IRefineR => {
                IRefine::new(config).run(groups, rng)
            }
            AlgorithmKind::RoundRobin | AlgorithmKind::RoundRobinR => {
                RoundRobin::new(config).run(groups, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rapidviz_core::group::VecGroup;

    #[test]
    fn names_and_resolution_flags() {
        assert_eq!(AlgorithmKind::PAPER_SIX.len(), 6);
        assert_eq!(AlgorithmKind::IFocus.name(), "ifocus");
        assert!(AlgorithmKind::IFocusR.uses_resolution());
        assert!(!AlgorithmKind::RoundRobin.uses_resolution());
    }

    #[test]
    fn all_six_run_and_order() {
        let base = AlgoConfig::new(100.0, 0.05);
        for kind in AlgorithmKind::PAPER_SIX {
            let mut groups = vec![
                VecGroup::new("lo", vec![10.0; 2000]),
                VecGroup::new("hi", vec![90.0; 2000]),
            ];
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            let result = kind.run(&base, 1.0, &mut groups, &mut rng);
            assert!(
                result.estimates[0] < result.estimates[1],
                "{} mis-ordered",
                kind.name()
            );
        }
    }
}
