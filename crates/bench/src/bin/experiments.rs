//! CLI for regenerating the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p rapidviz-bench --bin experiments -- <id> [--reps N] [--seed N] [--quick]
//! ```
//!
//! `<id>` is one of: `table1 fig3a fig3b fig3c fig4 fig5a fig5b fig5c fig6a
//! fig6b fig6c fig7a fig7b fig7c table3 all` (`fig5c`/`fig6a` share one run).

use rapidviz_bench::experiments::{self, ExpOptions};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut id: Option<String> = None;
    let mut opts = ExpOptions::default();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--reps" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.reps = v,
                None => return usage("--reps needs a positive integer"),
            },
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.seed = v,
                None => return usage("--seed needs an integer"),
            },
            other if id.is_none() && !other.starts_with('-') => id = Some(other.to_owned()),
            other => return usage(&format!("unrecognized argument {other:?}")),
        }
    }
    let Some(id) = id else {
        return usage("missing experiment id");
    };
    match id.as_str() {
        "table1" => experiments::table1(&opts),
        "fig3a" => experiments::fig3a(&opts),
        "fig3b" => experiments::fig3b(&opts),
        "fig3c" => experiments::fig3c(&opts),
        "fig4" => experiments::fig4(&opts),
        "fig5a" => experiments::fig5a(&opts),
        "fig5b" => experiments::fig5b(&opts),
        "fig5c" | "fig6a" | "fig5c6a" => experiments::fig5c_6a(&opts),
        "fig6b" => experiments::fig6b(&opts),
        "fig6c" => experiments::fig6c(&opts),
        "fig7a" => experiments::fig7a(&opts),
        "fig7b" => experiments::fig7b(&opts),
        "fig7c" => experiments::fig7c(&opts),
        "table3" => experiments::table3(&opts),
        "extensions" | "ext" => experiments::extensions(&opts),
        "lowerbound" | "lb" => experiments::lowerbound(&opts),
        "all" => experiments::all(&opts),
        other => return usage(&format!("unknown experiment {other:?}")),
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: experiments <table1|fig3a|fig3b|fig3c|fig4|fig5a|fig5b|fig5c|fig6a|fig6b|fig6c|fig7a|fig7b|fig7c|table3|extensions|lowerbound|all> [--reps N] [--seed N] [--quick]"
    );
    ExitCode::FAILURE
}
