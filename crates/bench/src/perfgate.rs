//! Shared harness for the criterion-free perf benches (`sampling`,
//! `scheduler`): run modes, throughput measurement, the narrow JSON
//! results parser, and the ratio-based CI regression gate.
//!
//! The gate compares **ratios of measurements taken on the same host in
//! the same run** (batched vs single-draw, scheduled vs standalone)
//! against the committed baseline's ratios, so the runner's absolute
//! speed cancels out and slow or noisy CI hosts cannot flake the gate
//! while real pipeline regressions still move the ratio on any hardware.

use std::time::Instant;

/// How a bench binary runs: full (1s+ per case, writes the committed
/// baseline), quick smoke (one iteration, no JSON), or the CI regression
/// gate (shortened measurement, compared against the baseline).
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Full measurement pass; writes the committed baseline JSON.
    Full,
    /// Single-iteration smoke pass; writes nothing.
    Quick,
    /// Shortened measured pass compared against the committed baseline.
    Gate,
}

impl Mode {
    /// Parses the mode from the process arguments (`--gate`, `--quick` /
    /// `--test` / `CRITERION_QUICK`, default full).
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--gate") {
            Mode::Gate
        } else if args.iter().any(|a| a == "--quick" || a == "--test")
            || std::env::var_os("CRITERION_QUICK").is_some()
        {
            Mode::Quick
        } else {
            Mode::Full
        }
    }
}

/// One named throughput figure (operations per second; the operation —
/// draws, rounds — is the bench's choice).
pub struct Measurement {
    /// Case name, e.g. `with_replacement/batched_64`.
    pub name: String,
    /// Operations per second measured for the case.
    pub per_sec: f64,
}

/// Tells the gate where its baseline lives and which measurement pairs'
/// ratios it enforces.
pub struct GateConfig<'a> {
    /// Path to the committed baseline JSON.
    pub baseline_path: String,
    /// `(baseline_case, optimized_case)` pairs whose `optimized /
    /// baseline` ratios are enforced.
    pub pairs: &'a [(&'a str, &'a str)],
    /// How far a fresh ratio may fall below the baseline's ratio before
    /// the gate fails (`fresh * tolerance < baseline` is a regression).
    pub tolerance: f64,
}

/// Measures `total_ops` operations executed by `f` (which must perform
/// them all per call); `unit` labels the console line (e.g. `draws/s`).
pub fn measure(
    name: &str,
    total_ops: u64,
    mode: Mode,
    unit: &str,
    mut f: impl FnMut(),
) -> Measurement {
    if mode == Mode::Quick {
        f();
        println!("{name:<44} (quick smoke: ran once)");
        return Measurement {
            name: name.to_owned(),
            per_sec: 0.0,
        };
    }
    let (min_secs, min_reps) = match mode {
        Mode::Full => (1.0, 3),
        // The gate trades timing precision for wall-clock; its tolerance
        // absorbs the extra noise.
        Mode::Gate => (0.2, 2),
        Mode::Quick => unreachable!(),
    };
    // Warm-up.
    f();
    let mut reps = 0u32;
    let start = Instant::now();
    loop {
        f();
        reps += 1;
        if start.elapsed().as_secs_f64() > min_secs && reps >= min_reps {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let per_sec = (total_ops * u64::from(reps)) as f64 / secs;
    println!("{name:<44} {per_sec:>12.0} {unit}");
    Measurement {
        name: name.to_owned(),
        per_sec,
    }
}

/// Extracts the `"name": value` entries of the `"results"` object from a
/// JSON file these benches themselves wrote (a deliberately narrow parser
/// — the offline workspace has no serde, and the format is under our
/// control).
#[must_use]
pub fn parse_results(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let Some(start) = json.find("\"results\": {") else {
        return out;
    };
    for line in json[start..].lines().skip(1) {
        let trimmed = line.trim();
        if trimmed.starts_with('}') {
            break;
        }
        let Some((key, value)) = trimmed.rsplit_once(':') else {
            continue;
        };
        let name = key.trim().trim_matches('"').to_owned();
        if let Ok(v) = value.trim().trim_end_matches(',').parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

/// Gate mode: compare fresh same-host ratios for every configured pair
/// against the committed baseline's ratios. Returns the number of
/// regressions; a missing/empty baseline or an empty comparison set
/// counts as one (a silently green gate that compares nothing protects
/// nothing).
pub fn gate_against_baseline(results: &[Measurement], config: &GateConfig<'_>) -> usize {
    let baseline = match std::fs::read_to_string(&config.baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gate: cannot read baseline {}: {e}", config.baseline_path);
            return 1;
        }
    };
    let baseline = parse_results(&baseline);
    if baseline.is_empty() {
        eprintln!("gate: baseline {} has no results", config.baseline_path);
        return 1;
    }
    let lookup = |set: &[(String, f64)], name: &str| -> Option<f64> {
        set.iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .filter(|&v| v > 0.0)
    };
    let fresh: Vec<(String, f64)> = results
        .iter()
        .map(|m| (m.name.clone(), m.per_sec))
        .collect();
    let tolerance = config.tolerance;
    let mut regressions = 0;
    let mut compared = 0;
    println!(
        "\nperf gate vs {} (ratio-based, tolerance {tolerance}x):",
        config.baseline_path
    );
    for &(base_name, new_name) in config.pairs {
        let pair = format!("{new_name} / {base_name}");
        let (Some(base_lo), Some(base_hi)) =
            (lookup(&baseline, base_name), lookup(&baseline, new_name))
        else {
            println!("  SKIP {pair} (pair not in baseline)");
            continue;
        };
        let (Some(fresh_lo), Some(fresh_hi)) =
            (lookup(&fresh, base_name), lookup(&fresh, new_name))
        else {
            // Feature-gated cases (e.g. the parallel fan-out) may be
            // absent from a default-features gate build.
            println!("  SKIP {pair} (not measured in this build)");
            continue;
        };
        compared += 1;
        let base_ratio = base_hi / base_lo;
        let fresh_ratio = fresh_hi / fresh_lo;
        if fresh_ratio * tolerance < base_ratio {
            regressions += 1;
            println!("  FAIL {pair}: ratio {fresh_ratio:.2}x vs baseline {base_ratio:.2}x");
        } else {
            println!("  ok   {pair}: ratio {fresh_ratio:.2}x vs baseline {base_ratio:.2}x");
        }
    }
    if compared == 0 {
        eprintln!("gate: no pair could be compared against the baseline");
        return 1;
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_own_results_format() {
        let json = concat!(
            "{\n  \"note\": \"x\",\n  \"results\": {\n",
            "    \"a/one\": 100.0,\n    \"a/two\": 250.5\n  },\n",
            "  \"ratios\": {\n    \"ignored\": 2.5\n  }\n}\n"
        );
        assert_eq!(
            parse_results(json),
            vec![("a/one".to_owned(), 100.0), ("a/two".to_owned(), 250.5)]
        );
        assert!(parse_results("{}").is_empty());
    }

    #[test]
    fn gate_fails_loudly_without_baseline() {
        let config = GateConfig {
            baseline_path: "/nonexistent/baseline.json".to_owned(),
            pairs: &[("a", "b")],
            tolerance: 1.5,
        };
        assert_eq!(gate_against_baseline(&[], &config), 1);
    }
}
