//! One function per table/figure of the paper's evaluation (§5).
//!
//! Every function prints the same rows/series the paper's artifact shows.
//! Absolute wall-clock numbers go through the calibrated
//! [`DiskModel`] cost model (see DESIGN.md §4 — we do not have the
//! authors' hardware), so the *shape* — who wins, by what factor, where
//! curves flatten — is the reproduction target, recorded in EXPERIMENTS.md.
//!
//! Scale notes: the paper repeats every data point over 100 generated
//! datasets and sweeps sizes to 10^10 records. Virtual groups make the
//! sizes free, but the *sample draws* are real work, so the default
//! repetition count is lower (`--reps` raises it) and non-resolution
//! algorithm runs carry a generous round cap (reported when hit).

use crate::algorithms::AlgorithmKind;
use crate::report::{count, header, mean, pct, secs};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rapidviz_core::group::VecGroup;
use rapidviz_core::{
    is_correctly_ordered, is_correctly_ordered_with_resolution, AlgoConfig, IFocus,
};
use rapidviz_datagen::difficulty::five_number_summary;
use rapidviz_datagen::{difficulty, DatasetSpec, FlightAttribute, FlightModel, WorkloadFamily};
use rapidviz_needletail::DiskModel;

/// Round cap for non-resolution algorithms on adversarial seeds (the paper
/// hits the same wall through dataset exhaustion instead).
const ROUND_CAP: u64 = 2_000_000;

/// Harness options.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Repetitions (generated datasets) per data point.
    pub reps: u32,
    /// Base RNG seed; each repetition derives its own.
    pub seed: u64,
    /// Quick mode: smaller sizes/repetitions for smoke runs.
    pub quick: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            reps: 5,
            seed: 42,
            quick: false,
        }
    }
}

impl ExpOptions {
    fn scaled_reps(&self, full: u32) -> u32 {
        if self.quick {
            (full / 4).max(2)
        } else {
            full.max(self.reps)
        }
    }
}

/// Per-algorithm aggregate over repetitions.
struct AlgoStats {
    kind: AlgorithmKind,
    fraction_sampled: f64,
    total_samples: f64,
    accuracy: f64,
    truncated: u32,
}

/// Runs the six-algorithm lineup over `reps` freshly generated datasets.
fn run_six(
    family: WorkloadFamily,
    k: usize,
    total_records: u64,
    delta: f64,
    r: f64,
    reps: u32,
    seed: u64,
) -> Vec<AlgoStats> {
    let base = AlgoConfig::new(100.0, delta)
        .with_max_rounds(ROUND_CAP)
        .with_max_samples_per_group(ROUND_CAP);
    AlgorithmKind::PAPER_SIX
        .iter()
        .map(|&kind| {
            let mut fractions = Vec::new();
            let mut totals = Vec::new();
            let mut correct = 0u32;
            let mut truncated = 0u32;
            for rep in 0..reps {
                let spec =
                    DatasetSpec::generate(family, k, total_records, seed + u64::from(rep) * 1000);
                let truths = spec.true_means();
                let mut groups = spec.virtual_groups();
                let mut rng = StdRng::seed_from_u64(seed ^ ((u64::from(rep) + 1) * 7919));
                let result = kind.run(&base, r, &mut groups, &mut rng);
                fractions.push(result.fraction_sampled(spec.total_records()));
                totals.push(result.total_samples() as f64);
                truncated += u32::from(result.truncated);
                let ok = if kind.uses_resolution() {
                    is_correctly_ordered_with_resolution(&result.estimates, &truths, r)
                } else {
                    is_correctly_ordered(&result.estimates, &truths)
                };
                correct += u32::from(ok);
            }
            AlgoStats {
                kind,
                fraction_sampled: mean(&fractions),
                total_samples: mean(&totals),
                accuracy: f64::from(correct) / f64::from(reps),
                truncated,
            }
        })
        .collect()
}

/// Table 1 — an IFOCUS execution trace on four groups.
pub fn table1(opts: &ExpOptions) {
    header("table1", "IFOCUS execution trace (4 groups)");
    // Groups shaped like the paper's example: true means ~75, 35, 25, 55.
    let mut rng = StdRng::seed_from_u64(opts.seed);
    use rand::Rng;
    let means = [75.0, 35.0, 25.0, 55.0];
    let mut groups: Vec<VecGroup> = means
        .iter()
        .enumerate()
        .map(|(i, &mu)| {
            let values: Vec<f64> = (0..20_000)
                .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
                .collect();
            VecGroup::new(format!("Group {}", i + 1), values)
        })
        .collect();
    let algo = IFocus::new(AlgoConfig::new(100.0, 0.05).with_trace());
    let mut run_rng = StdRng::seed_from_u64(opts.seed + 1);
    let result = algo.run(&mut groups, &mut run_rng);
    let trace = result.trace.as_ref().expect("trace enabled");
    println!("round | per-group [lo, hi] A(ctive)/I(nactive)");
    print!("{}", trace.render(true));
    let deact: Vec<String> = trace
        .deactivation_rounds()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            format!(
                "g{}@{}",
                i + 1,
                r.map_or_else(|| "-".into(), |v| v.to_string())
            )
        })
        .collect();
    println!("deactivation rounds: {}", deact.join(" "));
    println!(
        "total cost C = {} samples (trace-implied {})",
        result.total_samples(),
        trace.implied_sample_cost()
    );
}

/// Figure 3a — % of dataset sampled vs dataset size (mixture, k = 10).
pub fn fig3a(opts: &ExpOptions) {
    header(
        "fig3a",
        "% sampled vs dataset size (mixture, k=10, δ=0.05, r=1)",
    );
    let sizes: &[u64] = if opts.quick {
        &[10_000_000, 100_000_000]
    } else {
        &[10_000_000, 100_000_000, 1_000_000_000, 10_000_000_000]
    };
    let reps = opts.scaled_reps(opts.reps);
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "size", "ifocus", "ifocusr", "irefine", "irefiner", "roundrobin", "roundrobinr"
    );
    for &size in sizes {
        let stats = run_six(
            WorkloadFamily::Mixture,
            10,
            size,
            0.05,
            1.0,
            reps,
            opts.seed,
        );
        print!("{:<14}", count(size));
        for s in &stats {
            print!(" {:>12}", pct(s.fraction_sampled));
        }
        let trunc: u32 = stats.iter().map(|s| s.truncated).sum();
        if trunc > 0 {
            print!("   [{trunc} capped runs]");
        }
        println!();
    }
    println!("(expect: every column shrinks with size; ifocusr < ifocus < irefine < roundrobin;");
    println!(" -R variants' absolute sample counts flat beyond 10^8)");
}

/// Figure 3b — samples vs (modelled) runtime scatter.
pub fn fig3b(opts: &ExpOptions) {
    header("fig3b", "samples vs total time scatter (cost model)");
    let model = DiskModel::paper_default();
    let sizes: &[u64] = if opts.quick {
        &[10_000_000, 100_000_000]
    } else {
        &[10_000_000, 100_000_000, 1_000_000_000]
    };
    let reps = opts.scaled_reps(3);
    println!(
        "{:<14} {:<12} {:>14} {:>12}",
        "size", "algorithm", "samples", "total time"
    );
    for &size in sizes {
        let stats = run_six(
            WorkloadFamily::Mixture,
            10,
            size,
            0.05,
            1.0,
            reps,
            opts.seed,
        );
        for s in &stats {
            let cost = model.sampling_cost(s.total_samples as u64);
            println!(
                "{:<14} {:<12} {:>14} {:>12}",
                count(size),
                s.kind.name(),
                count(s.total_samples as u64),
                secs(cost.total_seconds())
            );
        }
    }
    println!("(expect: runtime directly proportional to samples, independent of size)");
}

/// Figure 3c — % sampled vs δ.
pub fn fig3c(opts: &ExpOptions) {
    header("fig3c", "% sampled vs δ (mixture, k=10, 10M records)");
    let size = if opts.quick { 1_000_000 } else { 10_000_000 };
    let reps = opts.scaled_reps(opts.reps);
    let deltas = [0.05, 0.2, 0.4, 0.6, 0.8, 0.95];
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "δ", "ifocus", "ifocusr", "irefine", "irefiner", "roundrobin", "roundrobinr"
    );
    for &delta in &deltas {
        let stats = run_six(
            WorkloadFamily::Mixture,
            10,
            size,
            delta,
            1.0,
            reps,
            opts.seed,
        );
        print!("{delta:<8}");
        for s in &stats {
            print!(" {:>12}", pct(s.fraction_sampled));
        }
        let min_acc = stats.iter().map(|s| s.accuracy).fold(1.0f64, f64::min);
        println!("   acc(min)={:.0}%", min_acc * 100.0);
    }
    println!("(expect: mild decrease with δ — the log(1/δ) term is not dominant —");
    println!(" and 100% ordering accuracy at every δ)");
}

/// Figure 4 — total / I/O / CPU time vs dataset size, including SCAN.
pub fn fig4(opts: &ExpOptions) {
    header(
        "fig4",
        "total/IO/CPU time vs dataset size (cost model, incl. SCAN)",
    );
    let model = DiskModel::paper_default();
    let sizes: &[u64] = if opts.quick {
        &[10_000_000, 100_000_000]
    } else {
        &[10_000_000, 100_000_000, 1_000_000_000, 10_000_000_000]
    };
    let reps = opts.scaled_reps(3);
    let bytes_per_record = 8u64;
    println!(
        "{:<14} {:<12} {:>10} {:>10} {:>10}",
        "size", "algorithm", "total", "io", "cpu"
    );
    for &size in sizes {
        let stats = run_six(
            WorkloadFamily::Mixture,
            10,
            size,
            0.05,
            1.0,
            reps,
            opts.seed,
        );
        for s in &stats {
            let cost = model.sampling_cost(s.total_samples as u64);
            println!(
                "{:<14} {:<12} {:>10} {:>10} {:>10}",
                count(size),
                s.kind.name(),
                secs(cost.total_seconds()),
                secs(cost.io_seconds),
                secs(cost.cpu_seconds)
            );
        }
        let scan = model.scan_cost(size * bytes_per_record, size);
        println!(
            "{:<14} {:<12} {:>10} {:>10} {:>10}",
            count(size),
            "scan",
            secs(scan.total_seconds()),
            secs(scan.io_seconds),
            secs(scan.cpu_seconds)
        );
    }
    println!("(expect: scan linear in size; sampling algorithms sublinear, -R flat;");
    println!(" ifocus beats roundrobin beats scan at every size)");
}

/// Figure 5a — accuracy vs heuristic factor (powers of two).
pub fn fig5a(opts: &ExpOptions) {
    header(
        "fig5a",
        "accuracy vs heuristic factor 2^0..2^6 (mixture, ifocusr)",
    );
    let size = if opts.quick { 200_000 } else { 10_000_000 };
    let reps = opts.scaled_reps(40);
    let factors = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
    println!("{:<10} {:>10} {:>14}", "factor", "accuracy", "avg samples");
    for &h in &factors {
        let mut correct = 0u32;
        let mut totals = Vec::new();
        for rep in 0..reps {
            let spec = DatasetSpec::generate(
                WorkloadFamily::Mixture,
                10,
                size,
                opts.seed + u64::from(rep) * 1000,
            );
            let truths = spec.true_means();
            let mut groups = spec.virtual_groups();
            let config = AlgoConfig::new(100.0, 0.05)
                .with_resolution(1.0)
                .with_heuristic_factor(h)
                .with_max_rounds(ROUND_CAP);
            let mut rng = StdRng::seed_from_u64(opts.seed ^ ((u64::from(rep) + 1) * 104_729));
            let result = IFocus::new(config).run(&mut groups, &mut rng);
            totals.push(result.total_samples() as f64);
            correct += u32::from(is_correctly_ordered_with_resolution(
                &result.estimates,
                &truths,
                1.0,
            ));
        }
        println!(
            "{:<10} {:>9.1}% {:>14}",
            h,
            100.0 * f64::from(correct) / f64::from(reps),
            count(mean(&totals) as u64)
        );
    }
    println!("(expect: 100% at factor 1, immediate degradation beyond)");
}

/// Figure 5b — accuracy vs heuristic factor near 1, hard instance.
pub fn fig5b(opts: &ExpOptions) {
    // The paper's γ = 0.1 instance is so hard (c²/η² = 10^6) that correct
    // ordering essentially requires exhausting each group; IFOCUS at factor
    // 1 gets there via the Serfling collapse, while any shrinkage factor
    // terminates with a sliver of the data unread — and a 0.1-wide gap
    // flips easily. We keep γ = 0.1 and size the groups so exhaustion is
    // reachable (the paper's 10M-row run behaves identically in this
    // regime; see EXPERIMENTS.md).
    let gamma = 0.1;
    header(
        "fig5b",
        "accuracy vs heuristic factor 1.0..1.2 (hard Bernoulli, γ=0.1)",
    );
    // Full mode matches the paper's scale exactly (10M rows, 1M/group);
    // the collapse point moves right as groups shrink (the unsampled-tail
    // deviation scales with n), which is why quick mode shows the cliff at
    // larger factors.
    let size = if opts.quick { 100_000 } else { 10_000_000 };
    let reps = opts.scaled_reps(20);
    let factors = [1.0, 1.01, 1.05, 1.1, 1.2, 1.5, 2.0, 4.0];
    println!("{:<10} {:>10} {:>14}", "factor", "accuracy", "avg samples");
    for &h in &factors {
        let mut correct = 0u32;
        let mut totals = Vec::new();
        for rep in 0..reps {
            let spec = DatasetSpec::generate(
                WorkloadFamily::Hard { gamma },
                10,
                size,
                opts.seed + u64::from(rep) * 1000,
            );
            // Materialized groups: correctness is judged against the
            // *realized* population means, and exhaustion genuinely yields
            // them — the regime this figure probes. (Virtual groups would
            // fake the exhaustion collapse; see DESIGN.md §4.)
            let mut data_rng = StdRng::seed_from_u64(opts.seed + 777 + u64::from(rep));
            let mut groups = spec.materialize(&mut data_rng);
            let truths: Vec<f64> = groups
                .iter()
                .map(|g| rapidviz_core::GroupSource::true_mean(g).expect("materialized"))
                .collect();
            let config = AlgoConfig::new(100.0, 0.05).with_heuristic_factor(h);
            let mut rng = StdRng::seed_from_u64(opts.seed ^ ((u64::from(rep) + 1) * 15_485_863));
            let result = IFocus::new(config).run(&mut groups, &mut rng);
            totals.push(result.total_samples() as f64);
            correct += u32::from(is_correctly_ordered(&result.estimates, &truths));
        }
        println!(
            "{:<10} {:>9.1}% {:>14}",
            h,
            100.0 * f64::from(correct) / f64::from(reps),
            count(mean(&totals) as u64)
        );
    }
    println!("(expect: 100% at factor 1; accuracy collapses within a few percent of shrinkage)");
}

/// Figures 5c & 6a — convergence: active groups and incorrect pairs vs
/// cumulative samples.
pub fn fig5c_6a(opts: &ExpOptions) {
    header(
        "fig5c+6a",
        "active groups / incorrect pairs vs samples (mixture, ifocus)",
    );
    let size = if opts.quick { 1_000_000 } else { 10_000_000 };
    let reps = opts.scaled_reps(20);
    // Collect histories.
    // (active-group series, incorrect-pair series, total samples) per run.
    type RunHistory = (Vec<(u64, usize)>, Vec<(u64, u64)>, u64);
    let mut runs: Vec<RunHistory> = Vec::new();
    for rep in 0..reps {
        let spec = DatasetSpec::generate(
            WorkloadFamily::Mixture,
            10,
            size,
            opts.seed + u64::from(rep) * 1000,
        );
        let truths = spec.true_means();
        let mut groups = spec.virtual_groups();
        let config = AlgoConfig::new(100.0, 0.05)
            .with_history_every(64)
            .with_max_rounds(ROUND_CAP);
        let mut rng = StdRng::seed_from_u64(opts.seed ^ ((u64::from(rep) + 1) * 32_452_843));
        let result = IFocus::new(config).run(&mut groups, &mut rng);
        let total_samples = result.total_samples();
        let history = result.history.expect("history enabled");
        runs.push((
            history.active_groups_series(),
            history.incorrect_pairs_series(&truths),
            total_samples,
        ));
    }
    // Average the series on a common grid of sample checkpoints.
    let max_samples = runs.iter().map(|r| r.2).max().unwrap_or(1);
    let grid: Vec<u64> = (1..=16).map(|i| max_samples * i / 16).collect();
    let threshold = (size as f64 * 0.3) as u64; // the paper's "3M of 10M" cut
    let heavy: Vec<&RunHistory> = runs.iter().filter(|r| r.2 >= threshold).collect();
    println!(
        "{:>14} {:>12} {:>14} {:>16}",
        "samples", "avg active", "avg bad pairs", "avg active (30%+)"
    );
    for &g in &grid {
        let at = |series: &[(u64, usize)]| -> f64 {
            series
                .iter()
                .take_while(|(s, _)| *s <= g)
                .last()
                .or_else(|| series.first())
                .map_or(0.0, |&(_, a)| a as f64)
        };
        let at_pairs = |series: &[(u64, u64)]| -> f64 {
            series
                .iter()
                .take_while(|(s, _)| *s <= g)
                .last()
                .or_else(|| series.first())
                .map_or(0.0, |&(_, a)| a as f64)
        };
        let active: Vec<f64> = runs.iter().map(|r| at(&r.0)).collect();
        let pairs: Vec<f64> = runs.iter().map(|r| at_pairs(&r.1)).collect();
        let heavy_active: Vec<f64> = heavy.iter().map(|r| at(&r.0)).collect();
        println!(
            "{:>14} {:>12.2} {:>14.2} {:>16}",
            count(g),
            mean(&active),
            mean(&pairs),
            if heavy_active.is_empty() {
                "-".to_owned()
            } else {
                format!("{:.2}", mean(&heavy_active))
            }
        );
    }
    println!(
        "(runs taking >=30% of the data: {}/{}; expect: active count collapses to ~2 quickly,",
        heavy.len(),
        runs.len()
    );
    println!(" incorrect pairs near 0 long before termination)");
}

/// Figure 6b — % sampled vs number of groups.
pub fn fig6b(opts: &ExpOptions) {
    header("fig6b", "% sampled vs number of groups (mixture, 1M/group)");
    let per_group: u64 = if opts.quick { 100_000 } else { 1_000_000 };
    let reps = opts.scaled_reps(3);
    let ks = [5usize, 10, 20, 50];
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "k", "ifocus", "ifocusr", "irefine", "irefiner", "roundrobin", "roundrobinr"
    );
    for &k in &ks {
        let stats = run_six(
            WorkloadFamily::Mixture,
            k,
            per_group * k as u64,
            0.05,
            1.0,
            reps,
            opts.seed,
        );
        print!("{k:<6}");
        for s in &stats {
            print!(" {:>12}", pct(s.fraction_sampled));
        }
        let trunc: u32 = stats.iter().map(|s| s.truncated).sum();
        if trunc > 0 {
            print!("   [{trunc} capped runs]");
        }
        println!();
    }
    println!("(expect: more groups -> higher % (random means collide more),");
    println!(" ifocus family stays well below roundrobin at every k)");
}

/// Figure 6c — difficulty c²/η² vs number of groups (box & whiskers).
pub fn fig6c(opts: &ExpOptions) {
    header("fig6c", "difficulty c²/η² vs number of groups");
    let datasets: u64 = if opts.quick { 30 } else { 100 };
    let ks = [5usize, 10, 20, 50];
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "k", "min", "q1", "median", "q3", "max"
    );
    for &k in &ks {
        let diffs: Vec<f64> = (0u64..datasets)
            .map(|i| {
                let spec = DatasetSpec::generate(
                    WorkloadFamily::Mixture,
                    k,
                    1000 * k as u64,
                    opts.seed + i * 31,
                );
                difficulty(&spec.true_means(), 100.0)
            })
            .collect();
        let s = five_number_summary(&diffs);
        println!(
            "{:<6} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e}",
            k, s[0], s[1], s[2], s[3], s[4]
        );
    }
    println!("(expect: ~4 orders of magnitude growth in median from k=5 to k=50)");
}

/// Figure 7a — % sampled vs proportion of the dataset in the first group.
pub fn fig7a(opts: &ExpOptions) {
    header(
        "fig7a",
        "% sampled vs first-group proportion (mixture, k=10)",
    );
    let total: u64 = if opts.quick { 200_000 } else { 1_000_000 };
    let reps = opts.scaled_reps(3);
    let proportions = [0.1, 0.3, 0.5, 0.7, 0.9];
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "prop", "ifocus", "ifocusr", "irefine", "irefiner", "roundrobin", "roundrobinr"
    );
    let base = AlgoConfig::new(100.0, 0.05).with_max_rounds(ROUND_CAP);
    for &p in &proportions {
        print!("{p:<8}");
        for kind in AlgorithmKind::PAPER_SIX {
            let mut fractions = Vec::new();
            for rep in 0..reps {
                let spec = DatasetSpec::generate_skewed(
                    WorkloadFamily::Mixture,
                    10,
                    total,
                    p,
                    opts.seed + u64::from(rep) * 1000,
                );
                let mut groups = spec.virtual_groups();
                let mut rng =
                    StdRng::seed_from_u64(opts.seed ^ ((u64::from(rep) + 1) * 49_979_687));
                let result = kind.run(&base, 1.0, &mut groups, &mut rng);
                fractions.push(result.fraction_sampled(spec.total_records()));
            }
            print!(" {:>12}", pct(mean(&fractions)));
        }
        println!();
    }
    println!("(expect: ifocus family keeps its advantage at every skew;");
    println!(" % sampled drifts down as skew rises)");
}

/// Figure 7b — % sampled vs δ for several truncnorm standard deviations.
pub fn fig7b(opts: &ExpOptions) {
    header("fig7b", "% sampled vs δ per std (truncnorm, ifocusr)");
    let size: u64 = if opts.quick { 1_000_000 } else { 10_000_000 };
    let reps = opts.scaled_reps(5);
    let stds = [2.0, 5.0, 8.0, 10.0];
    let deltas = [0.05, 0.2, 0.4, 0.6, 0.8];
    print!("{:<8}", "δ");
    for &s in &stds {
        print!(" {:>12}", format!("std={s}"));
    }
    println!();
    for &delta in &deltas {
        print!("{delta:<8}");
        for &std in &stds {
            let mut fractions = Vec::new();
            for rep in 0..reps {
                let spec = DatasetSpec::generate_truncnorm_fixed_std(
                    10,
                    size,
                    std,
                    opts.seed + u64::from(rep) * 1000,
                );
                let mut groups = spec.virtual_groups();
                let config = AlgoConfig::new(100.0, delta)
                    .with_resolution(1.0)
                    .with_max_rounds(ROUND_CAP);
                let mut rng =
                    StdRng::seed_from_u64(opts.seed ^ ((u64::from(rep) + 1) * 67_867_967));
                let result = IFocus::new(config).run(&mut groups, &mut rng);
                fractions.push(result.fraction_sampled(spec.total_records()));
            }
            print!(" {:>12}", pct(mean(&fractions)));
        }
        println!();
    }
    println!("(expect: slightly more sampling at higher std; mild decrease with δ)");
}

/// Figure 7c — difficulty vs truncnorm standard deviation.
pub fn fig7c(opts: &ExpOptions) {
    header("fig7c", "difficulty c²/η² vs std (truncnorm)");
    let datasets: u64 = if opts.quick { 30 } else { 100 };
    let stds = [2.0, 5.0, 8.0, 10.0];
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "std", "min", "q1", "median", "q3", "max"
    );
    for &std in &stds {
        let diffs: Vec<f64> = (0u64..datasets)
            .map(|i| {
                let spec =
                    DatasetSpec::generate_truncnorm_fixed_std(10, 10_000, std, opts.seed + i * 31);
                difficulty(&spec.true_means(), 100.0)
            })
            .collect();
        let s = five_number_summary(&diffs);
        println!(
            "{:<6} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e}",
            std, s[0], s[1], s[2], s[3], s[4]
        );
    }
    println!("(expect: difficulty grows with std — truncation pulls means together)");
}

/// Table 3 — flight-data runtimes (modelled) for three attributes.
pub fn table3(opts: &ExpOptions) {
    header(
        "table3",
        "flight data: modelled runtimes, 3 attributes x 3 algorithms",
    );
    let model = DiskModel::paper_default();
    let sizes: &[u64] = if opts.quick {
        &[100_000_000]
    } else {
        &[100_000_000, 1_000_000_000, 10_000_000_000]
    };
    let flights = FlightModel::new(opts.seed);
    println!(
        "{:<16} {:<12} {}",
        "attribute",
        "algorithm",
        sizes
            .iter()
            .map(|s| format!("{:>10}", count(*s)))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for attr in FlightAttribute::ALL {
        let c = attr.c();
        let r = c / 100.0; // the paper's 1% minimum resolution
        for kind in [
            AlgorithmKind::RoundRobin,
            AlgorithmKind::IFocus,
            AlgorithmKind::IFocusR,
        ] {
            let mut cells = Vec::new();
            for &size in sizes {
                // The flight near-ties need ~10^7 samples to resolve; give
                // the runs room (quick mode keeps a tighter cap).
                let cap = if opts.quick { 4_000_000 } else { 40_000_000 };
                let base = AlgoConfig::new(c, 0.05)
                    .with_max_rounds(cap)
                    .with_max_samples_per_group(cap);
                let mut groups = flights.virtual_groups(attr, size);
                let mut rng = StdRng::seed_from_u64(opts.seed + size % 7919);
                let result = kind.run(&base, r, &mut groups, &mut rng);
                let cost = model.sampling_cost(result.total_samples());
                cells.push(format!("{:>10}", secs(cost.total_seconds())));
            }
            println!(
                "{:<16} {:<12} {}",
                attr.name(),
                if kind == AlgorithmKind::IFocusR {
                    "ifocusr(1%)".to_owned()
                } else {
                    kind.name().to_owned()
                },
                cells.join(" ")
            );
        }
    }
    println!("(expect per attribute: ifocusr < ifocus < roundrobin; mild growth with size");
    println!(" driven by the engineered near-tie airline pairs)");
}

/// Extensions ablation (beyond the paper's figures): the §6 variants'
/// sample costs on one common workload, as fractions of full IFOCUS.
pub fn extensions(opts: &ExpOptions) {
    use rapidviz_core::extensions::{IFocusBernstein, IFocusMistakes, IFocusTopT, IFocusTrends};
    header(
        "extensions",
        "§6 variants vs full IFOCUS (truncnorm, k=12, shared dataset)",
    );
    let per_group: u64 = if opts.quick { 50_000 } else { 200_000 };
    let reps = opts.scaled_reps(5);
    let mut rows: Vec<(&str, Vec<f64>)> = vec![
        ("ifocus (full)", Vec::new()),
        ("trends (adjacent)", Vec::new()),
        ("top-3", Vec::new()),
        ("mistakes 5%", Vec::new()),
        ("bernstein", Vec::new()),
    ];
    for rep in 0..reps {
        let spec = DatasetSpec::generate_truncnorm_fixed_std(
            12,
            per_group * 12,
            6.0,
            opts.seed + u64::from(rep) * 97,
        );
        let config = AlgoConfig::new(100.0, 0.05).with_max_rounds(ROUND_CAP);
        let mut data_rng = StdRng::seed_from_u64(opts.seed + 31 + u64::from(rep));
        let base_groups = spec.materialize(&mut data_rng);
        let run_seed = opts.seed ^ ((u64::from(rep) + 1) * 179_424_673);

        let mut g = base_groups.clone();
        let mut rng = StdRng::seed_from_u64(run_seed);
        rows[0].1.push(
            IFocus::new(config.clone())
                .run(&mut g, &mut rng)
                .total_samples() as f64,
        );

        let mut g = base_groups.clone();
        let mut rng = StdRng::seed_from_u64(run_seed);
        rows[1].1.push(
            IFocusTrends::new(config.clone())
                .run(&mut g, &mut rng)
                .total_samples() as f64,
        );

        let mut g = base_groups.clone();
        let mut rng = StdRng::seed_from_u64(run_seed);
        rows[2].1.push(
            IFocusTopT::new(config.clone(), 3)
                .run(&mut g, &mut rng)
                .total_samples() as f64,
        );

        let mut g = base_groups.clone();
        let mut rng = StdRng::seed_from_u64(run_seed);
        rows[3].1.push(
            IFocusMistakes::new(config.clone(), 0.05)
                .run(&mut g, &mut rng)
                .total_samples() as f64,
        );

        let mut g = base_groups;
        let mut rng = StdRng::seed_from_u64(run_seed);
        rows[4].1.push(
            IFocusBernstein::new(config)
                .run(&mut g, &mut rng)
                .total_samples() as f64,
        );
    }
    let full_cost = mean(&rows[0].1);
    println!("{:<20} {:>14} {:>14}", "variant", "avg samples", "vs full");
    for (name, costs) in &rows {
        let avg = mean(costs);
        println!(
            "{:<20} {:>14} {:>13.1}%",
            name,
            count(avg as u64),
            100.0 * avg / full_cost
        );
    }
    println!("(expect: every weaker-guarantee variant below full IFOCUS;");
    println!(" bernstein far below on this low-variance workload)");
}

/// Lower-bound scaling check (Theorems 3.6 + 3.8): on the
/// Canetti–Even–Goldreich instance every `η_i = τ`, so IFOCUS's cost must
/// scale as `Θ(k/τ²)` — halving τ quadruples the samples.
pub fn lowerbound(opts: &ExpOptions) {
    header(
        "lowerbound",
        "IFOCUS cost on the Theorem 3.8 instance vs τ (expect ~4x per halving)",
    );
    let k = 10usize;
    let taus: &[f64] = if opts.quick {
        &[0.004, 0.002]
    } else {
        &[0.004, 0.002, 0.001]
    };
    let reps = opts.scaled_reps(3);
    println!(
        "{:<10} {:>12} {:>14} {:>12}",
        "τ", "c²/η²", "avg samples", "x previous"
    );
    let mut prev: Option<f64> = None;
    for &tau in taus {
        let mut totals = Vec::new();
        for rep in 0..reps {
            let spec = rapidviz_datagen::lower_bound_instance(
                k,
                tau,
                1 << 40, // virtual size: never exhausts, pure τ-scaling
                opts.seed + u64::from(rep) * 11,
            );
            let mut groups = spec.virtual_groups();
            let config = AlgoConfig::new(100.0, 0.05);
            let mut rng = StdRng::seed_from_u64(opts.seed ^ ((u64::from(rep) + 1) * 28_657));
            let result = IFocus::new(config).run(&mut groups, &mut rng);
            totals.push(result.total_samples() as f64);
        }
        let avg = mean(&totals);
        let eta = tau * 100.0;
        let ratio = prev.map_or_else(|| "-".to_owned(), |p| format!("{:.2}", avg / p));
        println!(
            "{tau:<10} {:>12.3e} {:>14} {:>12}",
            (100.0 / eta).powi(2),
            count(avg as u64),
            ratio
        );
        prev = Some(avg);
    }
    println!("(expect: sample counts scale like 1/τ² — the optimality regime of §3.5)");
}

/// Runs every experiment.
pub fn all(opts: &ExpOptions) {
    table1(opts);
    fig3a(opts);
    fig3b(opts);
    fig3c(opts);
    fig4(opts);
    fig5a(opts);
    fig5b(opts);
    fig5c_6a(opts);
    fig6b(opts);
    fig6c(opts);
    fig7a(opts);
    fig7b(opts);
    fig7c(opts);
    table3(opts);
    extensions(opts);
    lowerbound(opts);
}
