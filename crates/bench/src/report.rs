//! Small text-report helpers shared by the experiment functions.

/// Mean of a sample.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Formats a fraction as a percentage with sensible precision across the
/// 10^-4 – 10^2 range the figures span.
#[must_use]
pub fn pct(fraction: f64) -> String {
    let p = fraction * 100.0;
    if p >= 10.0 {
        format!("{p:.1}%")
    } else if p >= 0.1 {
        format!("{p:.2}%")
    } else {
        format!("{p:.4}%")
    }
}

/// Formats seconds with figure-friendly precision.
#[must_use]
pub fn secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.1}s")
    } else {
        format!("{:.0}ms", s * 1000.0)
    }
}

/// Formats large counts with scientific-style compaction (`1.2e9`).
#[must_use]
pub fn count(n: u64) -> String {
    let x = n as f64;
    if x >= 1e7 {
        format!("{x:.2e}")
    } else {
        n.to_string()
    }
}

/// Prints a section header for one experiment.
pub fn header(id: &str, title: &str) {
    println!();
    println!("=== {id}: {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn pct_ranges() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(0.005), "0.50%");
        assert_eq!(pct(0.00001), "0.0010%");
    }

    #[test]
    fn secs_ranges() {
        assert_eq!(secs(123.4), "123s");
        assert_eq!(secs(3.25), "3.2s");
        assert_eq!(secs(0.05), "50ms");
    }

    #[test]
    fn count_ranges() {
        assert_eq!(count(500), "500");
        assert_eq!(count(1_200_000_000), "1.20e9");
    }
}
