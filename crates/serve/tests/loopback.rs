//! Loopback end-to-end: the wire protocol must be a transparent window
//! onto the in-process engine — same seed, byte-identical estimates
//! (`f64::to_bits` equal), whether the comparison is against a blocking
//! `execute()` or a streamed session's round updates.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rapidviz::needletail::NeedleTail;
use rapidviz::{Aggregate, StepOutcome, VizQuery};
use rapidviz_datagen::FlightModel;
use rapidviz_serve::{
    ErrorCode, Frame, QueryRequest, Server, ServerConfig, ServerHandle, WireClient,
};
use std::sync::atomic::Ordering;
use std::time::Duration;

const TABLE_SEED: u64 = 11;
const ROWS: u64 = 4_000;

fn flight_engine() -> NeedleTail {
    let mut rng = StdRng::seed_from_u64(TABLE_SEED);
    let table = FlightModel::new(TABLE_SEED).to_table(ROWS, &mut rng);
    NeedleTail::new(table, &["name"]).expect("flight engine builds")
}

fn start_server(config: ServerConfig) -> ServerHandle {
    Server::start(flight_engine(), config).expect("server binds")
}

fn connect(handle: &ServerHandle) -> WireClient {
    WireClient::connect(handle.local_addr(), Duration::from_secs(30)).expect("client connects")
}

/// A small bounded query: truncates rather than converges, which is fine
/// — byte-equality is about determinism, not the stopping rule.
fn bounded_request(seed: u64, aggregate: Aggregate, measure: &str) -> QueryRequest {
    let mut req = QueryRequest::avg("name", measure, seed);
    req.aggregate = aggregate;
    req.max_samples = Some(3_000);
    req.samples_per_round = Some(64);
    req
}

fn in_process_answer(req: &QueryRequest) -> rapidviz::QueryAnswer {
    let engine = flight_engine();
    let mut q = VizQuery::new(&engine);
    for col in &req.group_by {
        q = q.group_by(col.clone());
    }
    q = match req.aggregate {
        Aggregate::Avg => q.avg(req.measure.clone()),
        Aggregate::Sum => q.sum(req.measure.clone()),
        Aggregate::Count => q.count(req.measure.clone()),
    };
    if let Some(f) = &req.filter {
        q = q.filter(f.to_predicate());
    }
    if let Some(s) = req.samples_per_round {
        q = q.samples_per_round(s);
    }
    if let Some(m) = req.max_samples {
        q = q.max_samples(m);
    }
    let mut rng = StdRng::seed_from_u64(req.seed);
    q.execute(&mut rng).expect("in-process query runs")
}

#[test]
fn wire_answer_byte_identical_to_in_process() {
    let handle = start_server(ServerConfig::default());
    for (seed, agg, measure) in [
        (7, Aggregate::Avg, "arr_delay"),
        (8, Aggregate::Sum, "elapsed"),
        (9, Aggregate::Count, "dep_delay"),
    ] {
        let req = bounded_request(seed, agg, measure);
        let reference = in_process_answer(&req);
        let run = connect(&handle).run_query(&req).expect("wire query runs");
        let answer = run.answer.unwrap_or_else(|| {
            panic!(
                "terminal answer for {agg:?} over {measure}; error={:?}",
                run.error
            )
        });
        assert_eq!(answer.labels, reference.result.labels);
        assert_eq!(answer.outcome, reference.outcome);
        assert_eq!(answer.rounds, reference.result.rounds);
        assert_eq!(answer.population, reference.population);
        assert_eq!(answer.samples_per_group, reference.result.samples_per_group);
        let wire_bits: Vec<u64> = answer.estimates.iter().map(|e| e.to_bits()).collect();
        let ref_bits: Vec<u64> = reference
            .result
            .estimates
            .iter()
            .map(|e| e.to_bits())
            .collect();
        assert_eq!(
            wire_bits, ref_bits,
            "{agg:?} over {measure} diverged on the wire"
        );
    }
    handle.shutdown();
}

#[test]
fn wire_round_stream_matches_in_process_session() {
    // Queue large enough that nothing is ever dropped, so the full round
    // stream must replay the standalone session exactly.
    let handle = start_server(ServerConfig {
        frame_queue: 4_096,
        ..ServerConfig::default()
    });
    let req = bounded_request(21, Aggregate::Avg, "arr_delay");

    let engine = flight_engine();
    let mut session = VizQuery::new(&engine)
        .group_by("name")
        .avg("arr_delay")
        .samples_per_round(req.samples_per_round.unwrap())
        .max_samples(req.max_samples.unwrap())
        .start(StdRng::seed_from_u64(req.seed))
        .expect("session starts");
    let mut reference = Vec::new();
    loop {
        let update = session.step();
        let done = update.outcome != StepOutcome::Running;
        reference.push(update);
        if done {
            break;
        }
    }

    let run = connect(&handle).run_query(&req).expect("wire query runs");
    assert_eq!(
        handle.stats().frames_dropped_slow.load(Ordering::Relaxed),
        0,
        "queue was sized to never drop"
    );
    assert_eq!(run.rounds.len(), reference.len());
    for (wire, local) in run.rounds.iter().zip(&reference) {
        assert_eq!(wire.outcome, local.outcome);
        assert_eq!(wire.round, local.round);
        assert_eq!(wire.total_samples, local.total_samples);
        assert_eq!(
            wire.fraction_sampled.to_bits(),
            local.fraction_sampled.to_bits()
        );
        let certified: Vec<u32> = local
            .newly_certified
            .iter()
            .map(|&i| u32::try_from(i).unwrap())
            .collect();
        assert_eq!(wire.newly_certified, certified);
        assert_eq!(wire.snapshot.labels, local.snapshot.labels);
        assert_eq!(wire.snapshot.active, local.snapshot.active);
        assert_eq!(
            wire.snapshot.samples_per_group,
            local.snapshot.samples_per_group
        );
        let wire_bits: Vec<u64> = wire
            .snapshot
            .estimates
            .iter()
            .map(|e| e.to_bits())
            .collect();
        let local_bits: Vec<u64> = local
            .snapshot
            .estimates
            .iter()
            .map(|e| e.to_bits())
            .collect();
        assert_eq!(wire_bits, local_bits);
        let wire_iv: Vec<(u64, u64)> = wire
            .snapshot
            .intervals
            .iter()
            .map(|&(lo, hi)| (lo.to_bits(), hi.to_bits()))
            .collect();
        let local_iv: Vec<(u64, u64)> = local
            .snapshot
            .intervals
            .iter()
            .map(|iv| (iv.lo.to_bits(), iv.hi.to_bits()))
            .collect();
        assert_eq!(wire_iv, local_iv);
    }
    // The terminal answer agrees with the session's own final snapshot.
    let answer = run.answer.expect("terminal answer");
    let last = reference.last().unwrap();
    assert_eq!(answer.rounds, last.snapshot.rounds);
    handle.shutdown();
}

#[test]
fn filtered_query_round_trips() {
    let handle = start_server(ServerConfig::default());
    let mut req = bounded_request(33, Aggregate::Avg, "elapsed");
    req.filter = Some(rapidviz_serve::FilterSpec::In(
        "name".into(),
        vec!["UA".into(), "AA".into()],
    ));
    let reference = in_process_answer(&req);
    let run = connect(&handle).run_query(&req).expect("wire query runs");
    let answer = run.answer.expect("terminal answer");
    assert_eq!(answer.labels, reference.result.labels);
    let wire_bits: Vec<u64> = answer.estimates.iter().map(|e| e.to_bits()).collect();
    let ref_bits: Vec<u64> = reference
        .result
        .estimates
        .iter()
        .map(|e| e.to_bits())
        .collect();
    assert_eq!(wire_bits, ref_bits);
    handle.shutdown();
}

#[test]
fn eight_concurrent_clients_all_reach_terminal_frames() {
    let handle = start_server(ServerConfig::default());
    let addr = handle.local_addr();
    let answers: Vec<bool> = std::thread::scope(|scope| {
        (0..8u64)
            .map(|c| {
                scope.spawn(move || {
                    let mut client =
                        WireClient::connect(addr, Duration::from_secs(30)).expect("connects");
                    let measure = ["elapsed", "arr_delay", "dep_delay"][(c % 3) as usize];
                    let agg = [Aggregate::Avg, Aggregate::Sum, Aggregate::Count][(c % 3) as usize];
                    let req = bounded_request(100 + c, agg, measure);
                    client.run_query(&req).expect("query runs").terminated()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    assert!(
        answers.iter().all(|&t| t),
        "every client got a terminal frame"
    );
    let stats = handle.stats();
    assert_eq!(stats.sessions_admitted.load(Ordering::Relaxed), 8);
    assert_eq!(stats.sessions_completed.load(Ordering::Relaxed), 8);
    assert_eq!(stats.sessions_cancelled.load(Ordering::Relaxed), 0);
    handle.shutdown();
}

#[test]
fn stats_frame_reports_sessions_and_cache_counters() {
    let handle = start_server(ServerConfig::default());
    let mut client = connect(&handle);
    // Two identical filtered queries: the second must plan warm.
    let mut req = bounded_request(55, Aggregate::Avg, "arr_delay");
    req.filter = Some(rapidviz_serve::FilterSpec::Eq("name".into(), "UA".into()));
    req.max_samples = Some(500);
    for _ in 0..2 {
        let run = connect(&handle).run_query(&req).expect("query runs");
        assert!(run.answer.is_some());
    }
    let stats = client.stats().expect("stats round-trip");
    assert_eq!(stats.sessions_admitted, 2);
    assert_eq!(stats.sessions_completed, 2);
    assert!(stats.frames_sent > 0);
    // The repeat query hit the plan cache; the engine-level counters
    // surface through the stats frame.
    assert!(
        stats.plan_cache.0 >= 1,
        "warm repeat should register plan-cache hits, got {:?}",
        stats.plan_cache
    );
    handle.shutdown();
}

#[test]
fn eviction_notice_arrives_as_frame_before_best_effort_answer() {
    // A tiny per-session memory cap forces eviction almost immediately.
    let handle = start_server(ServerConfig {
        session_memory_cap: Some(1),
        ..ServerConfig::default()
    });
    let req = bounded_request(77, Aggregate::Avg, "elapsed");
    let run = connect(&handle).run_query(&req).expect("query runs");
    assert!(run.evicted.is_some(), "eviction notice frame expected");
    let answer = run.answer.expect("best-effort answer after eviction");
    assert!(answer.truncated || answer.outcome != StepOutcome::Converged);
    handle.shutdown();
}

#[test]
fn global_budget_exhaustion_yields_best_effort_answers() {
    let handle = start_server(ServerConfig {
        global_sample_budget: Some(1_000),
        ..ServerConfig::default()
    });
    // Two queries wanting far more than the shared budget.
    let addr = handle.local_addr();
    let results: Vec<_> = std::thread::scope(|scope| {
        (0..2u64)
            .map(|c| {
                scope.spawn(move || {
                    let mut client =
                        WireClient::connect(addr, Duration::from_secs(30)).expect("connects");
                    client
                        .run_query(&bounded_request(200 + c, Aggregate::Avg, "arr_delay"))
                        .expect("query runs")
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for run in &results {
        let answer = run.answer.as_ref().expect("best-effort terminal answer");
        assert_ne!(answer.outcome, StepOutcome::Converged);
    }
    handle.shutdown();
}

#[test]
fn invalid_query_rejected_with_structured_error() {
    let handle = start_server(ServerConfig::default());
    let req = bounded_request(1, Aggregate::Avg, "no_such_column");
    let run = connect(&handle).run_query(&req).expect("error round-trips");
    assert!(run.answer.is_none());
    let (code, message) = run.error.expect("structured error frame");
    assert_eq!(code, ErrorCode::InvalidQuery);
    assert!(!message.is_empty());
    assert_eq!(handle.stats().sessions_rejected.load(Ordering::Relaxed), 1);
    handle.shutdown();
}

#[test]
fn connection_serves_sequential_queries_and_stats() {
    let handle = start_server(ServerConfig::default());
    let mut client = connect(&handle);
    for seed in [301, 302] {
        let mut req = bounded_request(seed, Aggregate::Avg, "elapsed");
        req.max_samples = Some(500);
        let run = client.run_query(&req).expect("query runs");
        assert!(run.answer.is_some());
    }
    let stats = client.stats().expect("stats after queries");
    assert_eq!(stats.sessions_completed, 2);
    // And the connection still works after a STATS.
    let run = client
        .run_query(&bounded_request(303, Aggregate::Count, "elapsed"))
        .expect("query after stats");
    assert!(run.answer.is_some());
    handle.shutdown();
}

#[test]
fn frame_decode_helper_matches_known_frame() {
    // Spot-check the documented layout: an Evicted frame is tag 0x04 plus
    // a u64 LE — 9 payload bytes exactly.
    let payload = (Frame::Evicted { bytes: 0x0102_0304 }).encode();
    assert_eq!(payload.len(), 9);
    assert_eq!(payload[0], 0x04);
    assert_eq!(&payload[1..5], &[0x04, 0x03, 0x02, 0x01]);
}
