//! Protocol robustness: malformed requests, oversized lines, partial
//! writes split at every byte boundary, disconnects racing the terminal
//! update, and capacity rejection. The server must answer with a
//! structured error frame or a clean close — never a panic, never a
//! leaked session slot.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rapidviz::needletail::NeedleTail;
use rapidviz_datagen::FlightModel;
use rapidviz_serve::{
    ErrorCode, Frame, QueryRequest, Server, ServerConfig, ServerHandle, WireClient,
};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

const TABLE_SEED: u64 = 5;
const ROWS: u64 = 20_000;

fn start_server(config: ServerConfig) -> ServerHandle {
    let mut rng = StdRng::seed_from_u64(TABLE_SEED);
    let table = FlightModel::new(TABLE_SEED).to_table(ROWS, &mut rng);
    let engine = NeedleTail::new(table, &["name"]).expect("flight engine builds");
    Server::start(engine, config).expect("server binds")
}

fn connect(handle: &ServerHandle) -> WireClient {
    WireClient::connect(handle.local_addr(), Duration::from_secs(30)).expect("client connects")
}

/// Admitted sessions must all leave the scheduler (completed, cancelled,
/// or parked for later resume) shortly after their clients go away — a
/// leaked slot shows up as this never converging.
fn assert_no_leaked_slots(handle: &ServerHandle) {
    let stats = handle.stats();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let admitted = stats.sessions_admitted.load(Ordering::Relaxed);
        let terminal = stats.sessions_completed.load(Ordering::Relaxed)
            + stats.sessions_cancelled.load(Ordering::Relaxed)
            + stats.sessions_parked.load(Ordering::Relaxed);
        if admitted == terminal {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "leaked session slots: {admitted} admitted, {terminal} terminal"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn malformed_request_lines_get_structured_errors() {
    let handle = start_server(ServerConfig::default());
    for bad in [
        "FROB",
        "QUERY",
        "QUERY group=name agg=avg measure=elapsed", // missing seed
        "QUERY group=name agg=median measure=elapsed seed=1",
        "QUERY group=name agg=avg measure=elapsed seed=1 delta=nope",
        "\u{1f600} not even ascii",
    ] {
        let mut client = connect(&handle);
        client.send_line(bad).expect("line sent");
        match client.next_frame().expect("server answers, never resets") {
            Some(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed, "{bad:?}"),
            other => panic!("{bad:?}: expected error frame, got {other:?}"),
        }
        // The server closes after an error frame.
        assert!(client.next_frame().expect("clean close").is_none());
    }
    // Binary garbage that never contains a newline within the cap.
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connects");
    stream
        .write_all(&vec![0xA5u8; 8 * 1024])
        .expect("garbage sent");
    stream.flush().expect("flush");
    let got = rapidviz_serve::read_frame(&mut stream).expect("server answers");
    match got {
        Some(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected oversized-line error, got {other:?}"),
    }
    assert_eq!(handle.stats().sessions_admitted.load(Ordering::Relaxed), 0);
    handle.shutdown();
}

#[test]
fn request_split_at_every_byte_boundary_still_parses() {
    let handle = start_server(ServerConfig::default());
    let mut req = QueryRequest::avg("name", "elapsed", 9);
    req.max_samples = Some(200);
    req.samples_per_round = Some(100);
    let line = format!("{}\n", req.to_line());
    let bytes = line.as_bytes();
    for split in 1..bytes.len() {
        let mut stream = TcpStream::connect(handle.local_addr()).expect("connects");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        stream.write_all(&bytes[..split]).expect("first half");
        stream.flush().expect("flush");
        // Give the reader a chance to observe the partial line.
        std::thread::sleep(Duration::from_millis(1));
        stream.write_all(&bytes[split..]).expect("second half");
        stream.flush().expect("flush");
        let mut saw_answer = false;
        while let Some(frame) = rapidviz_serve::read_frame(&mut stream).expect("frames decode") {
            match frame {
                Frame::Answer(_) => {
                    saw_answer = true;
                    break;
                }
                Frame::Error { code, message } => {
                    panic!("split at {split}: unexpected error {code:?}: {message}")
                }
                _ => {}
            }
        }
        assert!(saw_answer, "split at {split}: no terminal answer");
    }
    assert_no_leaked_slots(&handle);
    handle.shutdown();
}

#[test]
fn stats_command_survives_byte_at_a_time_writes() {
    let handle = start_server(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connects");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    for b in b"STATS\n" {
        stream.write_all(&[*b]).expect("byte sent");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(1));
    }
    match rapidviz_serve::read_frame(&mut stream).expect("stats decodes") {
        Some(Frame::Stats(_)) => {}
        other => panic!("expected stats frame, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn disconnect_mid_stream_parks_without_panic_or_leak() {
    let handle = start_server(ServerConfig::default());
    for seed in 0..4u64 {
        let mut client = connect(&handle);
        let mut req = QueryRequest::avg("name", "arr_delay", seed);
        // A long-running query so the disconnect lands mid-stream even in
        // release builds: the inflated bound keeps the intervals too wide
        // to certify, so the session cannot converge within milliseconds.
        req.max_samples = Some(100_000);
        req.samples_per_round = Some(8);
        req.bound = Some(5_000.0);
        client.send_request(&req).expect("request sent");
        // Read a couple of frames to be sure the session is live, then
        // vanish.
        for _ in 0..2 {
            let _ = client.next_frame();
        }
        drop(client);
    }
    assert_no_leaked_slots(&handle);
    // Long-running durable sessions park on disconnect (resumable for
    // the TTL) instead of being cancelled outright.
    assert!(
        handle.stats().sessions_parked.load(Ordering::Relaxed) >= 1,
        "disconnected durable sessions should park"
    );
    // The server still serves new work afterwards.
    let mut client = connect(&handle);
    let mut req = QueryRequest::avg("name", "elapsed", 99);
    req.max_samples = Some(200);
    let run = client.run_query(&req).expect("query after disconnects");
    assert!(run.answer.is_some());
    handle.shutdown();
}

#[test]
fn disconnect_racing_terminal_update_is_clean() {
    let handle = start_server(ServerConfig::default());
    // Tiny queries finish almost immediately — dropping the connection
    // right after sending races the terminal frame delivery.
    for seed in 0..16u64 {
        let mut client = connect(&handle);
        let mut req = QueryRequest::avg("name", "elapsed", seed);
        req.max_samples = Some(100);
        req.samples_per_round = Some(100);
        client.send_request(&req).expect("request sent");
        drop(client);
    }
    assert_no_leaked_slots(&handle);
    handle.shutdown();
}

#[test]
fn over_capacity_connect_gets_structured_rejection() {
    let handle = start_server(ServerConfig {
        max_clients: 1,
        ..ServerConfig::default()
    });
    let _holder = connect(&handle);
    // Give the accept loop a moment to register the first client.
    std::thread::sleep(Duration::from_millis(50));
    let mut second = connect(&handle);
    match second.next_frame().expect("rejection frame decodes") {
        Some(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::OverCapacity),
        other => panic!("expected over-capacity error, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn half_close_after_request_still_streams_answer() {
    let handle = start_server(ServerConfig::default());
    let mut client = connect(&handle);
    let mut req = QueryRequest::avg("name", "dep_delay", 13);
    req.max_samples = Some(300);
    client.send_request(&req).expect("request sent");
    // Close only our write half; the read half stays open for frames.
    client
        .stream()
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut saw_answer = false;
    while let Some(frame) = client.next_frame().expect("frames decode") {
        if matches!(frame, Frame::Answer(_)) {
            saw_answer = true;
            break;
        }
    }
    assert!(saw_answer, "half-closed client still gets its answer");
    assert_no_leaked_slots(&handle);
    handle.shutdown();
}

#[test]
fn pipelined_queries_on_one_connection_run_in_order() {
    let handle = start_server(ServerConfig::default());
    let mut client = connect(&handle);
    // Write two request lines back-to-back before reading anything; the
    // server must buffer the second line and run it after the first.
    let mut first = QueryRequest::avg("name", "elapsed", 41);
    first.max_samples = Some(200);
    let mut second = QueryRequest::avg("name", "arr_delay", 43);
    second.max_samples = Some(200);
    let both = format!("{}\n{}\n", first.to_line(), second.to_line());
    client
        .stream()
        .write_all(both.as_bytes())
        .expect("pipelined lines sent");
    let mut answers = 0;
    while answers < 2 {
        match client.next_frame().expect("frames decode") {
            Some(Frame::Answer(_)) => answers += 1,
            Some(Frame::Error { code, message }) => panic!("error {code:?}: {message}"),
            Some(_) => {}
            None => break,
        }
    }
    assert_eq!(answers, 2, "both pipelined queries answered");
    handle.shutdown();
}
