//! Durable-session end-to-end: disconnect parks, `RESUME` re-attaches,
//! a scheduler crash loses nothing the registry holds, and a drained
//! server's sessions survive into a successor sharing the registry. The
//! invariant throughout is the repo's north star: the resumed stream and
//! final answer are **byte-identical** (`f64::to_bits` equal) to the
//! uninterrupted in-process run with the same seed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rapidviz::needletail::NeedleTail;
use rapidviz::{ParkingRegistry, SimulatedClock, VizQuery};
use rapidviz_datagen::FlightModel;
use rapidviz_serve::{
    ErrorCode, Frame, QueryRequest, RetryPolicy, Server, ServerConfig, ServerHandle, WireClient,
};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const TABLE_SEED: u64 = 23;
const ROWS: u64 = 30_000;

fn flight_engine() -> NeedleTail {
    let mut rng = StdRng::seed_from_u64(TABLE_SEED);
    let table = FlightModel::new(TABLE_SEED).to_table(ROWS, &mut rng);
    NeedleTail::new(table, &["name"]).expect("flight engine builds")
}

fn start_server(config: ServerConfig) -> ServerHandle {
    Server::start(flight_engine(), config).expect("server binds")
}

fn connect(handle: &ServerHandle) -> WireClient {
    WireClient::connect(handle.local_addr(), Duration::from_secs(30)).expect("client connects")
}

/// A query long enough (thousands of rounds) that a disconnect or crash
/// always lands mid-stream, in release builds too. The inflated value
/// bound keeps every confidence interval too wide to certify, so the
/// session cannot converge early — with the Hoeffding-Serfling
/// correction it runs until the table is effectively fully drawn.
fn long_request(seed: u64) -> QueryRequest {
    let mut req = QueryRequest::avg("name", "arr_delay", seed);
    req.max_samples = Some(200_000);
    req.samples_per_round = Some(8);
    req.bound = Some(5_000.0);
    req
}

fn in_process_answer(req: &QueryRequest) -> rapidviz::QueryAnswer {
    let engine = flight_engine();
    let mut q = VizQuery::new(&engine).avg(req.measure.clone());
    for col in &req.group_by {
        q = q.group_by(col.clone());
    }
    if let Some(s) = req.samples_per_round {
        q = q.samples_per_round(s);
    }
    if let Some(m) = req.max_samples {
        q = q.max_samples(m);
    }
    if let Some(c) = req.bound {
        q = q.bound(c);
    }
    let mut rng = StdRng::seed_from_u64(req.seed);
    q.execute(&mut rng).expect("in-process query runs")
}

fn bits(estimates: &[f64]) -> Vec<u64> {
    estimates.iter().map(|e| e.to_bits()).collect()
}

/// Sends `req`, reads frames until the resume token and at least
/// `rounds` round frames have arrived, then drops the connection —
/// the canonical mid-stream vanish.
fn start_and_vanish(handle: &ServerHandle, req: &QueryRequest, rounds: usize) -> u64 {
    let mut client = connect(handle);
    client.send_request(req).expect("request sent");
    let mut token = None;
    let mut seen = 0usize;
    while token.is_none() || seen < rounds {
        match client.next_frame().expect("frame decodes") {
            Some(Frame::Parked { token: t }) => token = Some(t),
            Some(Frame::Round(_)) => seen += 1,
            Some(other) => panic!("unexpected frame before vanish: {other:?}"),
            None => panic!("server closed before token + {rounds} rounds"),
        }
    }
    token.expect("token announced before first rounds")
}

/// Polls until the server has parked `n` sessions (disconnect handling is
/// asynchronous to the socket close).
fn wait_parked(handle: &ServerHandle, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.stats().sessions_parked.load(Ordering::Relaxed) < n {
        assert!(Instant::now() < deadline, "session never parked");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn token_announced_and_discarded_on_completion() {
    let handle = start_server(ServerConfig::default());
    let mut req = QueryRequest::avg("name", "elapsed", 3);
    req.max_samples = Some(500);
    let run = connect(&handle).run_query(&req).expect("query runs");
    assert!(run.answer.is_some());
    assert!(
        run.token.is_some_and(|t| t != 0),
        "durable session announces a non-zero token"
    );
    // A completed session's checkpoint is discarded, not left to the TTL.
    let stats = connect(&handle).stats().expect("stats round-trip");
    assert_eq!(stats.parked_now, 0);
    assert_eq!(stats.parked_bytes, 0);
    handle.shutdown();
}

#[test]
fn resume_after_disconnect_is_bit_identical_to_uninterrupted_run() {
    let handle = start_server(ServerConfig {
        frame_queue: 4_096,
        ..ServerConfig::default()
    });
    let req = long_request(71);
    let reference = in_process_answer(&req);

    let token = start_and_vanish(&handle, &req, 3);
    wait_parked(&handle, 1);

    let mut client = connect(&handle);
    let run = client.resume(token).expect("resume round-trips");
    assert_eq!(run.error, None, "resume must not error");
    assert_eq!(run.token, Some(token), "token survives the resume");
    assert!(
        !run.rounds.is_empty(),
        "resumed stream continues the rounds"
    );
    let answer = run.answer.expect("resumed stream reaches its answer");
    assert_eq!(answer.labels, reference.result.labels);
    assert_eq!(answer.rounds, reference.result.rounds);
    assert_eq!(answer.samples_per_group, reference.result.samples_per_group);
    assert_eq!(
        bits(&answer.estimates),
        bits(&reference.result.estimates),
        "resumed answer diverged from the uninterrupted run"
    );
    assert_eq!(handle.stats().sessions_resumed.load(Ordering::Relaxed), 1);
    handle.shutdown();
}

#[test]
fn resumed_rounds_replay_the_uninterrupted_round_stream() {
    let handle = start_server(ServerConfig {
        frame_queue: 4_096,
        ..ServerConfig::default()
    });
    let req = long_request(72);

    // The uninterrupted reference session, round by round, mirroring
    // `long_request` parameter for parameter.
    let engine = flight_engine();
    let mut q = VizQuery::new(&engine)
        .group_by("name")
        .avg("arr_delay")
        .samples_per_round(8)
        .max_samples(200_000);
    if let Some(c) = req.bound {
        q = q.bound(c);
    }
    let mut session = q
        .start(StdRng::seed_from_u64(req.seed))
        .expect("session starts");
    let mut reference = Vec::new();
    loop {
        let update = session.step();
        let done = update.outcome != rapidviz::StepOutcome::Running;
        reference.push(update);
        if done {
            break;
        }
    }

    let token = start_and_vanish(&handle, &req, 3);
    wait_parked(&handle, 1);
    let run = connect(&handle).resume(token).expect("resume round-trips");
    assert!(run.answer.is_some());
    assert!(!run.rounds.is_empty());
    // Every resumed round must be bit-identical to the same-numbered
    // round of the uninterrupted session (slow-client drops only thin the
    // stream, they never alter a delivered round).
    let by_round: std::collections::BTreeMap<u64, _> =
        reference.iter().map(|u| (u.round, u)).collect();
    for wire in &run.rounds {
        let local = by_round
            .get(&wire.round)
            .unwrap_or_else(|| panic!("round {} missing from the reference run", wire.round));
        assert_eq!(wire.total_samples, local.total_samples);
        assert_eq!(
            bits(&wire.snapshot.estimates),
            bits(&local.snapshot.estimates),
            "round {} diverged after resume",
            wire.round
        );
    }
    handle.shutdown();
}

#[test]
fn crash_drops_live_sessions_but_resume_recovers_them_bit_identically() {
    let handle = start_server(ServerConfig {
        frame_queue: 4_096,
        enable_crash: true,
        ..ServerConfig::default()
    });
    let req = long_request(73);
    let reference = in_process_answer(&req);

    // Start streaming, then kill the scheduler loop from a second
    // connection mid-stream.
    let mut victim = connect(&handle);
    victim.send_request(&req).expect("request sent");
    let mut token = None;
    let mut seen = 0usize;
    while token.is_none() || seen < 2 {
        match victim.next_frame().expect("frame decodes") {
            Some(Frame::Parked { token: t }) => token = Some(t),
            Some(Frame::Round(_)) => seen += 1,
            Some(other) => panic!("unexpected frame: {other:?}"),
            None => panic!("closed before token + rounds"),
        }
    }
    let token = token.expect("token announced");
    connect(&handle).send_line("CRASH").expect("crash sent");

    // The victim's stream dies without a terminal frame — that is what a
    // crash looks like from the outside.
    let mut terminal = false;
    while let Ok(Some(frame)) = victim.next_frame() {
        if matches!(frame, Frame::Answer(_) | Frame::Error { .. }) {
            terminal = true;
        }
    }
    assert!(!terminal, "crash must not fabricate a terminal frame");
    drop(victim);

    // Reconnect with bounded seeded backoff and resume: the registry kept
    // the last refreshed checkpoint, so the answer is exactly the
    // uninterrupted one.
    let policy = RetryPolicy {
        seed: 73,
        ..RetryPolicy::default()
    };
    let (mut client, _retries) =
        WireClient::connect_with_retry(handle.local_addr(), Duration::from_secs(30), &policy)
            .expect("reconnects");
    let run = client.resume(token).expect("resume round-trips");
    assert_eq!(run.error, None, "resume after crash must not error");
    let answer = run.answer.expect("recovered stream reaches its answer");
    assert_eq!(
        bits(&answer.estimates),
        bits(&reference.result.estimates),
        "post-crash answer diverged from the uninterrupted run"
    );
    let stats = handle.stats();
    assert!(
        stats.scheduler_restarts.load(Ordering::Relaxed) >= 1,
        "supervisor must have restarted the scheduler loop"
    );
    assert_eq!(stats.sessions_resumed.load(Ordering::Relaxed), 1);
    // And the restarted loop serves fresh work too.
    let mut fresh = QueryRequest::avg("name", "elapsed", 74);
    fresh.max_samples = Some(500);
    let run = connect(&handle).run_query(&fresh).expect("fresh query");
    assert!(run.answer.is_some());
    handle.shutdown();
}

#[test]
fn crash_verb_is_rejected_when_not_enabled() {
    let handle = start_server(ServerConfig::default());
    let mut client = connect(&handle);
    client.send_line("CRASH").expect("line sent");
    match client.next_frame().expect("server answers") {
        Some(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected rejection, got {other:?}"),
    }
    assert_eq!(handle.stats().scheduler_restarts.load(Ordering::Relaxed), 0);
    handle.shutdown();
}

#[test]
fn unknown_or_zero_tokens_get_structured_errors() {
    let handle = start_server(ServerConfig::default());
    let run = connect(&handle).resume(987_654).expect("error round-trips");
    assert!(run.answer.is_none());
    let (code, message) = run.error.expect("structured error frame");
    assert_eq!(code, ErrorCode::NoSuchToken);
    assert!(message.contains("987654"));
    // Token 0 is the "no token" sentinel and never valid on the wire.
    let mut client = connect(&handle);
    client.send_line("RESUME token=0").expect("line sent");
    match client.next_frame().expect("server answers") {
        Some(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected malformed error, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_into_the_registry_and_a_successor_resumes() {
    let handle = start_server(ServerConfig {
        frame_queue: 4_096,
        ..ServerConfig::default()
    });
    let registry = handle.parking();
    let req = long_request(75);
    let reference = in_process_answer(&req);

    // Stream mid-query while the server shuts down: the drain must park
    // the live session, not cancel it.
    let mut client = connect(&handle);
    client.send_request(&req).expect("request sent");
    let mut token = None;
    while token.is_none() {
        match client.next_frame().expect("frame decodes") {
            Some(Frame::Parked { token: t }) => token = Some(t),
            Some(Frame::Round(_)) => {}
            Some(other) => panic!("unexpected frame: {other:?}"),
            None => panic!("closed before token"),
        }
    }
    let token = token.expect("token announced");
    let stats = Arc::clone(handle.stats());
    handle.shutdown();
    assert_eq!(
        stats.sessions_parked.load(Ordering::Relaxed),
        1,
        "graceful drain parks the in-flight session"
    );
    drop(client);

    // A successor sharing the registry picks the session back up.
    let successor = Server::start_shared(
        flight_engine(),
        ServerConfig {
            frame_queue: 4_096,
            ..ServerConfig::default()
        },
        registry,
    )
    .expect("successor binds");
    let run = connect(&successor).resume(token).expect("resume");
    assert_eq!(run.error, None, "successor resume must not error");
    let answer = run.answer.expect("successor delivers the answer");
    assert_eq!(
        bits(&answer.estimates),
        bits(&reference.result.estimates),
        "answer diverged across the server generation"
    );
    successor.shutdown();
}

#[test]
fn parked_sessions_expire_after_the_ttl() {
    let clock = Arc::new(SimulatedClock::new());
    let registry = Arc::new(Mutex::new(ParkingRegistry::with_clock(
        Duration::from_secs(30),
        Arc::clone(&clock) as Arc<dyn rapidviz::Clock>,
    )));
    let handle = Server::start_shared(
        flight_engine(),
        ServerConfig::default(),
        Arc::clone(&registry),
    )
    .expect("server binds");
    let token = start_and_vanish(&handle, &long_request(76), 2);
    wait_parked(&handle, 1);

    clock.advance(Duration::from_secs(31));
    let run = connect(&handle).resume(token).expect("error round-trips");
    let (code, _) = run.error.expect("expired token is an error");
    assert_eq!(code, ErrorCode::NoSuchToken);
    // The STATS frame surfaces the expiry and the now-empty registry.
    let stats = connect(&handle).stats().expect("stats round-trip");
    assert_eq!(stats.sessions_expired, 1);
    assert_eq!(stats.parked_now, 0);
    assert_eq!(stats.parked_bytes, 0);
    handle.shutdown();
}

#[test]
fn stats_frame_carries_parking_counters_over_the_wire() {
    let handle = start_server(ServerConfig::default());
    let token = start_and_vanish(&handle, &long_request(77), 1);
    wait_parked(&handle, 1);
    let stats = connect(&handle).stats().expect("stats round-trip");
    assert_eq!(stats.sessions_parked, 1);
    assert_eq!(stats.parked_now, 1);
    assert!(stats.parked_bytes > 0, "parked bytes are accounted");
    assert_eq!(stats.sessions_resumed, 0);
    assert_eq!(stats.scheduler_restarts, 0);
    // Resume it and the gauge drains while the counter ticks.
    let run = connect(&handle).resume(token).expect("resume");
    assert!(run.answer.is_some());
    let stats = connect(&handle).stats().expect("stats round-trip");
    assert_eq!(stats.sessions_resumed, 1);
    assert_eq!(stats.parked_now, 0);
    handle.shutdown();
}
