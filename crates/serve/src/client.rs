//! A small blocking wire client: formats request lines, reads frames,
//! and collects a whole query run. Used by the load generator, the
//! loopback tests, and the simulation harness's wire episodes.

use crate::protocol::{
    read_frame, ErrorCode, Frame, QueryRequest, WireAnswer, WireRound, WireStats,
};
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Everything one query produced on the wire, in arrival order.
#[derive(Debug, Default)]
pub struct QueryRun {
    /// Every intermediate round frame (the server may drop some for slow
    /// clients; [`crate::server::ServerStats::frames_dropped_slow`] says
    /// whether any were).
    pub rounds: Vec<WireRound>,
    /// Set if the server evicted the session (resident bytes at
    /// eviction); a best-effort answer still follows.
    pub evicted: Option<u64>,
    /// The terminal answer, if the query was admitted and ran.
    pub answer: Option<WireAnswer>,
    /// The terminal error, if the query was rejected or the run failed.
    pub error: Option<(ErrorCode, String)>,
}

impl QueryRun {
    /// Whether the run ended with a terminal frame at all (answer or
    /// structured error — as opposed to the connection dying mid-stream).
    #[must_use]
    pub fn terminated(&self) -> bool {
        self.answer.is_some() || self.error.is_some()
    }
}

/// A blocking connection to a `rapidviz-serve` server.
pub struct WireClient {
    stream: TcpStream,
}

impl WireClient {
    /// Connects with a timeout on every socket operation.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self { stream })
    }

    /// Sends a `QUERY` line without reading anything back — callers
    /// stream frames themselves with [`WireClient::next_frame`] (or walk
    /// away, to exercise disconnect paths).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send_request(&mut self, request: &QueryRequest) -> std::io::Result<()> {
        self.send_line(&request.to_line())
    }

    /// Sends one raw protocol line (LF appended). Public so robustness
    /// tests can speak malformed dialect on purpose.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    /// Reads the next frame; `Ok(None)` on a clean server close.
    ///
    /// # Errors
    ///
    /// Propagates socket/decode failures (including read timeouts).
    pub fn next_frame(&mut self) -> std::io::Result<Option<Frame>> {
        read_frame(&mut self.stream)
    }

    /// Sends a query and collects frames until the terminal answer or
    /// error (an eviction notice is recorded and the stream continues to
    /// its best-effort answer).
    ///
    /// # Errors
    ///
    /// Propagates socket failures; a structured server-side rejection is
    /// **not** an `Err` — it lands in [`QueryRun::error`].
    pub fn run_query(&mut self, request: &QueryRequest) -> std::io::Result<QueryRun> {
        self.send_request(request)?;
        let mut run = QueryRun::default();
        loop {
            match self.next_frame()? {
                Some(Frame::Round(r)) => run.rounds.push(r),
                Some(Frame::Evicted { bytes }) => run.evicted = Some(bytes),
                Some(Frame::Answer(a)) => {
                    run.answer = Some(a);
                    return Ok(run);
                }
                Some(Frame::Error { code, message }) => {
                    run.error = Some((code, message));
                    return Ok(run);
                }
                Some(Frame::Stats(_)) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "unexpected stats frame during a query stream",
                    ));
                }
                None => return Ok(run), // connection closed mid-stream
            }
        }
    }

    /// Round-trips a `STATS` command.
    ///
    /// # Errors
    ///
    /// Propagates socket failures; `InvalidData` if the server answers
    /// with anything but a stats frame.
    pub fn stats(&mut self) -> std::io::Result<WireStats> {
        self.send_line("STATS")?;
        match self.next_frame()? {
            Some(Frame::Stats(s)) => Ok(s),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected stats frame, got {other:?}"),
            )),
        }
    }

    /// The underlying stream — robustness tests use it to shut down write
    /// halves or send byte-at-a-time.
    #[must_use]
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
