//! A small blocking wire client: formats request lines, reads frames,
//! and collects a whole query run. Used by the load generator, the
//! loopback tests, and the simulation harness's wire episodes.

use crate::protocol::{
    read_frame, ErrorCode, Frame, QueryRequest, WireAnswer, WireRound, WireStats,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Everything one query produced on the wire, in arrival order.
#[derive(Debug, Default)]
pub struct QueryRun {
    /// Every intermediate round frame (the server may drop some for slow
    /// clients; [`crate::server::ServerStats::frames_dropped_slow`] says
    /// whether any were).
    pub rounds: Vec<WireRound>,
    /// The resume token from the server's [`Frame::Parked`] announcement,
    /// if the session was made durable. Present even on completed runs
    /// (the token was granted at admission); only useful after a
    /// disconnect or crash, via [`WireClient::resume`].
    pub token: Option<u64>,
    /// Set if the server evicted the session (resident bytes at
    /// eviction); a best-effort answer still follows.
    pub evicted: Option<u64>,
    /// The terminal answer, if the query was admitted and ran.
    pub answer: Option<WireAnswer>,
    /// The terminal error, if the query was rejected or the run failed.
    pub error: Option<(ErrorCode, String)>,
}

impl QueryRun {
    /// Whether the run ended with a terminal frame at all (answer or
    /// structured error — as opposed to the connection dying mid-stream).
    #[must_use]
    pub fn terminated(&self) -> bool {
        self.answer.is_some() || self.error.is_some()
    }
}

/// A blocking connection to a `rapidviz-serve` server.
pub struct WireClient {
    stream: TcpStream,
}

impl WireClient {
    /// Connects with a timeout on every socket operation.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self { stream })
    }

    /// Sends a `QUERY` line without reading anything back — callers
    /// stream frames themselves with [`WireClient::next_frame`] (or walk
    /// away, to exercise disconnect paths).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send_request(&mut self, request: &QueryRequest) -> std::io::Result<()> {
        self.send_line(&request.to_line())
    }

    /// Sends one raw protocol line (LF appended). Public so robustness
    /// tests can speak malformed dialect on purpose.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    /// Reads the next frame; `Ok(None)` on a clean server close.
    ///
    /// # Errors
    ///
    /// Propagates socket/decode failures (including read timeouts).
    pub fn next_frame(&mut self) -> std::io::Result<Option<Frame>> {
        read_frame(&mut self.stream)
    }

    /// Sends a query and collects frames until the terminal answer or
    /// error (an eviction notice is recorded and the stream continues to
    /// its best-effort answer).
    ///
    /// # Errors
    ///
    /// Propagates socket failures; a structured server-side rejection is
    /// **not** an `Err` — it lands in [`QueryRun::error`].
    pub fn run_query(&mut self, request: &QueryRequest) -> std::io::Result<QueryRun> {
        self.send_request(request)?;
        self.collect_run()
    }

    /// Resumes the parked (or crash-orphaned) session behind `token` and
    /// collects its remaining stream — the reconnect half of durability.
    /// An unknown/expired token lands as [`ErrorCode::NoSuchToken`] in
    /// [`QueryRun::error`], not an `Err`.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn resume(&mut self, token: u64) -> std::io::Result<QueryRun> {
        self.send_line(&format!("RESUME token={token}"))?;
        self.collect_run()
    }

    /// Collects frames until the terminal answer or error (an eviction
    /// notice is recorded and the stream continues to its best-effort
    /// answer; a `Parked` token announcement is recorded and the stream
    /// continues to its rounds).
    fn collect_run(&mut self) -> std::io::Result<QueryRun> {
        let mut run = QueryRun::default();
        loop {
            match self.next_frame()? {
                Some(Frame::Round(r)) => run.rounds.push(r),
                Some(Frame::Parked { token }) => run.token = Some(token),
                Some(Frame::Evicted { bytes }) => run.evicted = Some(bytes),
                Some(Frame::Answer(a)) => {
                    run.answer = Some(a);
                    return Ok(run);
                }
                Some(Frame::Error { code, message }) => {
                    run.error = Some((code, message));
                    return Ok(run);
                }
                Some(Frame::Stats(_)) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "unexpected stats frame during a query stream",
                    ));
                }
                None => return Ok(run), // connection closed mid-stream
            }
        }
    }

    /// Round-trips a `STATS` command.
    ///
    /// # Errors
    ///
    /// Propagates socket failures; `InvalidData` if the server answers
    /// with anything but a stats frame.
    pub fn stats(&mut self) -> std::io::Result<WireStats> {
        self.send_line("STATS")?;
        match self.next_frame()? {
            Some(Frame::Stats(s)) => Ok(s),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected stats frame, got {other:?}"),
            )),
        }
    }

    /// The underlying stream — robustness tests use it to shut down write
    /// halves or send byte-at-a-time.
    #[must_use]
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// [`WireClient::connect`] with bounded, seeded-backoff retries —
    /// the reconnect half of crash recovery, where the connect races the
    /// server coming back up. Returns the client and how many retries it
    /// took (0 = first attempt won). The delay schedule is exactly
    /// [`backoff_delays`]`(policy)`, so runs with the same policy retry
    /// at the same instants.
    ///
    /// # Errors
    ///
    /// The last connect error, once `policy.max_retries` retries are
    /// exhausted.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Clone,
        timeout: Duration,
        policy: &RetryPolicy,
    ) -> std::io::Result<(Self, u32)> {
        let delays = backoff_delays(policy);
        let mut last_err = None;
        for (attempt, delay) in std::iter::once(Duration::ZERO).chain(delays).enumerate() {
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            match Self::connect(addr.clone(), timeout) {
                Ok(client) => return Ok((client, attempt as u32)),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "no connect attempts made")
        }))
    }
}

/// Bounded-retry schedule: exponential backoff with deterministic,
/// seeded jitter. Two clients with different seeds spread their
/// reconnect stampede; the same seed replays the same schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = try exactly once).
    pub max_retries: u32,
    /// Delay before the first retry, pre-jitter.
    pub base: Duration,
    /// Ceiling on any single delay, pre-jitter.
    pub cap: Duration,
    /// Jitter seed; thread the episode/client seed through for
    /// reproducible chaos runs.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 5,
            base: Duration::from_millis(20),
            cap: Duration::from_secs(1),
            seed: 0,
        }
    }
}

/// The full delay schedule `policy` produces, one entry per retry: the
/// exponential `base * 2^attempt` is capped at `policy.cap`, then
/// jittered uniformly into `[exp/2, exp]` ("equal jitter") from a
/// `StdRng` seeded with `policy.seed`. Pure — exposed so tests and the
/// simulation harness can assert the exact schedule without sleeping.
#[must_use]
pub fn backoff_delays(policy: &RetryPolicy) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(policy.seed);
    let base_ms = policy.base.as_millis().min(u128::from(u64::MAX)) as u64;
    let cap_ms = policy.cap.as_millis().min(u128::from(u64::MAX)) as u64;
    (0..policy.max_retries)
        .map(|attempt| {
            let exp_ms = base_ms
                .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
                .min(cap_ms);
            let jittered = if exp_ms == 0 {
                0
            } else {
                rng.gen_range(exp_ms / 2..=exp_ms)
            };
            Duration::from_millis(jittered)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            seed: 42,
        };
        let a = backoff_delays(&policy);
        let b = backoff_delays(&policy);
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert_eq!(a.len(), 8);
        for (attempt, d) in a.iter().enumerate() {
            let exp = (10u64 << attempt).min(200);
            let ms = d.as_millis() as u64;
            assert!(
                (exp / 2..=exp).contains(&ms),
                "attempt {attempt}: {ms}ms outside [{}, {exp}]",
                exp / 2
            );
        }
        // The cap binds from attempt 5 on (10 * 2^5 = 320 > 200).
        assert!(a[7].as_millis() <= 200);
    }

    #[test]
    fn different_seeds_spread_the_stampede() {
        let mk = |seed| RetryPolicy {
            max_retries: 6,
            base: Duration::from_millis(64),
            cap: Duration::from_secs(2),
            seed,
        };
        let schedules: Vec<_> = (0..4).map(|s| backoff_delays(&mk(s))).collect();
        // At least one pair of seeds must disagree somewhere; with 6
        // draws over ranges this wide, identical schedules would mean
        // the jitter is not actually keyed on the seed.
        assert!(
            schedules.windows(2).any(|w| w[0] != w[1]),
            "jitter ignored the seed"
        );
    }

    #[test]
    fn zero_retries_means_empty_schedule() {
        let policy = RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        };
        assert!(backoff_delays(&policy).is_empty());
    }
}
