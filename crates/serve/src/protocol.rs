//! The wire protocol: request-line grammar and length-prefixed frames.
//!
//! The byte-for-byte layout is specified in the [crate docs](crate); this
//! module implements it. Requests are a single ASCII line parsed into a
//! [`QueryRequest`]; every server→client message is a [`Frame`] encoded
//! with fixed little-endian integers, `f64::to_bits` floats (bit-exact —
//! the wire answer must compare byte-identical to an in-process run), and
//! length-prefixed UTF-8 strings.

use rapidviz::needletail::Predicate;
use rapidviz::{Aggregate, AlgorithmChoice, QueryAnswer, RoundUpdate, StepOutcome};
use rapidviz_stats::Interval;
use std::io::{Read, Write};

/// Upper bound on one request line, bytes (LF included). Longer lines are
/// rejected with [`ErrorCode::Malformed`] before being buffered whole, so
/// a hostile client cannot balloon server memory with one endless line.
pub const MAX_REQUEST_LINE: usize = 4096;

/// Upper bound on one frame payload, bytes. Far above any real frame
/// (payloads scale with group count, not table size); a length prefix
/// past it means a corrupt or hostile stream and decoding bails out
/// before allocating.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Structured error categories carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request line failed to parse (unknown command or key, bad
    /// number, missing required key, oversized line).
    Malformed = 1,
    /// The request parsed but the engine rejected the query (missing
    /// column, unsupported algorithm/aggregate combination, …).
    InvalidQuery = 2,
    /// The server is at its concurrent-client capacity.
    OverCapacity = 3,
    /// The server is shutting down and no longer admits queries.
    ShuttingDown = 4,
    /// A `RESUME` named a token the server does not hold (never issued,
    /// already resumed, or expired past the parking TTL) — the client
    /// must re-issue the query from scratch.
    NoSuchToken = 5,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::InvalidQuery),
            3 => Some(ErrorCode::OverCapacity),
            4 => Some(ErrorCode::ShuttingDown),
            5 => Some(ErrorCode::NoSuchToken),
            _ => None,
        }
    }
}

/// A selection predicate in wire form. Values travel as strings and match
/// string-typed columns (the dashboard filter case); spell numeric
/// selections in-process instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterSpec {
    /// `column = value`.
    Eq(String, String),
    /// `column IN (values)`, spelled as an OR chain in listed order (the
    /// engine canonicalizes, so operand order never splits the plan
    /// cache).
    In(String, Vec<String>),
}

impl FilterSpec {
    /// Builds the engine predicate this spec denotes.
    #[must_use]
    pub fn to_predicate(&self) -> Predicate {
        match self {
            FilterSpec::Eq(col, val) => Predicate::eq(col.clone(), val.clone()),
            FilterSpec::In(col, vals) => {
                let mut iter = vals.iter();
                let first = iter.next().cloned().unwrap_or_default();
                let mut pred = Predicate::eq(col.clone(), first);
                for v in iter {
                    pred = pred.or(Predicate::eq(col.clone(), v.clone()));
                }
                pred
            }
        }
    }

    fn format(&self) -> String {
        match self {
            FilterSpec::Eq(col, val) => format!("eq:{col}:{val}"),
            FilterSpec::In(col, vals) => format!("in:{col}:{}", vals.join("|")),
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        let mut parts = s.splitn(3, ':');
        let (kind, col, rest) = match (parts.next(), parts.next(), parts.next()) {
            (Some(k), Some(c), Some(r)) if !c.is_empty() && !r.is_empty() => (k, c, r),
            _ => {
                return Err(format!(
                    "filter must be eq:<col>:<val> or in:<col>:<v|v>: {s:?}"
                ))
            }
        };
        match kind {
            "eq" => Ok(FilterSpec::Eq(col.to_owned(), rest.to_owned())),
            "in" => {
                let vals: Vec<String> = rest.split('|').map(str::to_owned).collect();
                if vals.iter().any(String::is_empty) {
                    return Err(format!("empty value in filter IN list: {s:?}"));
                }
                Ok(FilterSpec::In(col.to_owned(), vals))
            }
            other => Err(format!("unknown filter kind {other:?} (want eq or in)")),
        }
    }
}

/// One parsed `QUERY` request line — everything the server needs to build
/// a [`rapidviz::VizQuery`] and admit its session.
///
/// [`QueryRequest::to_line`] and [`QueryRequest::parse_line`] round-trip,
/// so the client library formats requests through the same code the tests
/// verify against the grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Group-by columns (1 or 2).
    pub group_by: Vec<String>,
    /// Aggregate function.
    pub aggregate: Aggregate,
    /// Measure column.
    pub measure: String,
    /// Ordering algorithm (AVG only; dedicated algorithms otherwise).
    pub algorithm: AlgorithmChoice,
    /// Optional selection predicate.
    pub filter: Option<FilterSpec>,
    /// Failure probability δ, if overridden.
    pub delta: Option<f64>,
    /// Resolution relaxation in percent, if any.
    pub resolution_pct: Option<f64>,
    /// Explicit value bound `c`, if any.
    pub bound: Option<f64>,
    /// Samples per round per active group, if overridden.
    pub samples_per_round: Option<u64>,
    /// Requested session sample cap (the server clamps it to its
    /// per-client budget).
    pub max_samples: Option<u64>,
    /// Session RNG seed — part of the wire contract: the same request with
    /// the same seed yields byte-identical estimates, in-process or over
    /// the wire.
    pub seed: u64,
}

impl QueryRequest {
    /// A minimal request: `AVG(measure) GROUP BY group`, default
    /// everything, seeded.
    #[must_use]
    pub fn avg(group: impl Into<String>, measure: impl Into<String>, seed: u64) -> Self {
        Self {
            group_by: vec![group.into()],
            aggregate: Aggregate::Avg,
            measure: measure.into(),
            algorithm: AlgorithmChoice::IFocus,
            filter: None,
            delta: None,
            resolution_pct: None,
            bound: None,
            samples_per_round: None,
            max_samples: None,
            seed,
        }
    }

    /// Formats the request as one `QUERY` line (LF not included).
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut line = format!("QUERY group={}", self.group_by.join(","));
        let agg = match self.aggregate {
            Aggregate::Avg => "avg",
            Aggregate::Sum => "sum",
            Aggregate::Count => "count",
        };
        line.push_str(&format!(" agg={agg} measure={}", self.measure));
        if self.algorithm != AlgorithmChoice::IFocus {
            let algo = match self.algorithm {
                AlgorithmChoice::IFocus => unreachable!("default elided above"),
                AlgorithmChoice::IRefine => "irefine",
                AlgorithmChoice::RoundRobin => "roundrobin",
                AlgorithmChoice::ExactScan => "scan",
            };
            line.push_str(&format!(" algo={algo}"));
        }
        if let Some(f) = &self.filter {
            line.push_str(&format!(" filter={}", f.format()));
        }
        if let Some(d) = self.delta {
            line.push_str(&format!(" delta={d}"));
        }
        if let Some(r) = self.resolution_pct {
            line.push_str(&format!(" resolution_pct={r}"));
        }
        if let Some(b) = self.bound {
            line.push_str(&format!(" bound={b}"));
        }
        if let Some(s) = self.samples_per_round {
            line.push_str(&format!(" spr={s}"));
        }
        if let Some(m) = self.max_samples {
            line.push_str(&format!(" max_samples={m}"));
        }
        line.push_str(&format!(" seed={}", self.seed));
        line
    }

    /// Parses one `QUERY` request line (LF/CRLF already stripped).
    ///
    /// # Errors
    ///
    /// Returns a human-readable grammar diagnostic; the server wraps it in
    /// an [`ErrorCode::Malformed`] frame.
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let rest = line
            .strip_prefix("QUERY")
            .ok_or_else(|| "request must start with QUERY".to_owned())?;
        if !rest.is_empty() && !rest.starts_with(' ') {
            return Err("QUERY must be followed by a space".to_owned());
        }
        let mut group_by: Option<Vec<String>> = None;
        let mut aggregate: Option<Aggregate> = None;
        let mut measure: Option<String> = None;
        let mut algorithm = AlgorithmChoice::IFocus;
        let mut filter = None;
        let mut delta = None;
        let mut resolution_pct = None;
        let mut bound = None;
        let mut samples_per_round = None;
        let mut max_samples = None;
        let mut seed: Option<u64> = None;
        for pair in rest.split(' ').filter(|p| !p.is_empty()) {
            let Some((key, value)) = pair.split_once('=') else {
                return Err(format!("expected key=value, got {pair:?}"));
            };
            if value.is_empty() {
                return Err(format!("empty value for key {key:?}"));
            }
            match key {
                "group" => {
                    let cols: Vec<String> = value.split(',').map(str::to_owned).collect();
                    if cols.iter().any(String::is_empty) || cols.is_empty() || cols.len() > 2 {
                        return Err(format!(
                            "group wants 1 or 2 non-empty comma-separated columns: {value:?}"
                        ));
                    }
                    group_by = Some(cols);
                }
                "agg" => {
                    aggregate = Some(match value {
                        "avg" => Aggregate::Avg,
                        "sum" => Aggregate::Sum,
                        "count" => Aggregate::Count,
                        other => return Err(format!("unknown agg {other:?}")),
                    });
                }
                "measure" => measure = Some(value.to_owned()),
                "algo" => {
                    algorithm = match value {
                        "ifocus" => AlgorithmChoice::IFocus,
                        "irefine" => AlgorithmChoice::IRefine,
                        "roundrobin" => AlgorithmChoice::RoundRobin,
                        "scan" => AlgorithmChoice::ExactScan,
                        other => return Err(format!("unknown algo {other:?}")),
                    };
                }
                "filter" => filter = Some(FilterSpec::parse(value)?),
                "delta" => delta = Some(parse_f64(key, value, |d| d > 0.0 && d < 1.0)?),
                "resolution_pct" => {
                    resolution_pct = Some(parse_f64(key, value, |r| r > 0.0)?);
                }
                "bound" => bound = Some(parse_f64(key, value, |b| b > 0.0)?),
                "spr" => samples_per_round = Some(parse_u64_positive(key, value)?),
                "max_samples" => max_samples = Some(parse_u64_positive(key, value)?),
                "seed" => {
                    seed = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("seed wants a u64, got {value:?}"))?,
                    );
                }
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        Ok(Self {
            group_by: group_by.ok_or_else(|| "missing required key group".to_owned())?,
            aggregate: aggregate.ok_or_else(|| "missing required key agg".to_owned())?,
            measure: measure.ok_or_else(|| "missing required key measure".to_owned())?,
            algorithm,
            filter,
            delta,
            resolution_pct,
            bound,
            samples_per_round,
            max_samples,
            seed: seed.ok_or_else(|| "missing required key seed".to_owned())?,
        })
    }
}

/// Parses one `RESUME` request line: `RESUME token=<u64>` (LF/CRLF
/// already stripped, token non-zero). The counterpart of
/// [`Frame::Parked`] — the token the server granted at admission names
/// the parked checkpoint to pick back up.
///
/// # Errors
///
/// Returns a human-readable grammar diagnostic; the server wraps it in an
/// [`ErrorCode::Malformed`] frame.
pub fn parse_resume_line(line: &str) -> Result<u64, String> {
    let rest = line
        .strip_prefix("RESUME")
        .ok_or_else(|| "request must start with RESUME".to_owned())?;
    if !rest.is_empty() && !rest.starts_with(' ') {
        return Err("RESUME must be followed by a space".to_owned());
    }
    let mut token: Option<u64> = None;
    for pair in rest.split(' ').filter(|p| !p.is_empty()) {
        let Some((key, value)) = pair.split_once('=') else {
            return Err(format!("expected key=value, got {pair:?}"));
        };
        match key {
            "token" => {
                let t = value
                    .parse::<u64>()
                    .map_err(|_| format!("token wants a u64, got {value:?}"))?;
                if t == 0 {
                    return Err("token must be non-zero".to_owned());
                }
                token = Some(t);
            }
            other => return Err(format!("unknown key {other:?}")),
        }
    }
    token.ok_or_else(|| "missing required key token".to_owned())
}

fn parse_f64(key: &str, value: &str, valid: impl Fn(f64) -> bool) -> Result<f64, String> {
    let v = value
        .parse::<f64>()
        .map_err(|_| format!("{key} wants a number, got {value:?}"))?;
    if !v.is_finite() || !valid(v) {
        return Err(format!("{key} out of range: {value:?}"));
    }
    Ok(v)
}

fn parse_u64_positive(key: &str, value: &str) -> Result<u64, String> {
    let v = value
        .parse::<u64>()
        .map_err(|_| format!("{key} wants a u64, got {value:?}"))?;
    if v == 0 {
        return Err(format!("{key} must be positive"));
    }
    Ok(v)
}

/// The wire form of one [`Snapshot`](rapidviz::Snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct WireSnapshot {
    /// Group labels, input order.
    pub labels: Vec<String>,
    /// Estimates (bit-exact).
    pub estimates: Vec<f64>,
    /// Confidence intervals, `(lo, hi)` per group.
    pub intervals: Vec<(f64, f64)>,
    /// Still-active flags.
    pub active: Vec<bool>,
    /// Per-group sample counts.
    pub samples_per_group: Vec<u64>,
    /// Round counter.
    pub rounds: u64,
    /// Whether a budget already truncated the run.
    pub truncated: bool,
}

impl WireSnapshot {
    /// The certified partial ordering: indices of inactive groups sorted
    /// by ascending estimate (mirrors
    /// [`Snapshot::certified_order`](rapidviz::Snapshot::certified_order)).
    #[must_use]
    pub fn certified_order(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.estimates.len())
            .filter(|&i| !self.active[i])
            .collect();
        idx.sort_by(|&a, &b| self.estimates[a].total_cmp(&self.estimates[b]));
        idx
    }
}

/// The wire form of one [`RoundUpdate`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireRound {
    /// Step outcome.
    pub outcome: StepOutcome,
    /// Round counter after the step.
    pub round: u64,
    /// Total samples drawn so far.
    pub total_samples: u64,
    /// Fraction of eligible rows sampled (bit-exact).
    pub fraction_sampled: f64,
    /// Groups certified during this step.
    pub newly_certified: Vec<u32>,
    /// Full snapshot.
    pub snapshot: WireSnapshot,
}

/// The wire form of a terminal [`QueryAnswer`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireAnswer {
    /// How the run ended.
    pub outcome: StepOutcome,
    /// Rows eligible across groups.
    pub population: u64,
    /// Whether estimates are best-effort (budget/eviction truncated).
    pub truncated: bool,
    /// Group labels, input order.
    pub labels: Vec<String>,
    /// Final estimates (bit-exact).
    pub estimates: Vec<f64>,
    /// Per-group sample counts.
    pub samples_per_group: Vec<u64>,
    /// Rounds executed.
    pub rounds: u64,
}

impl WireAnswer {
    /// Labels sorted by ascending estimate (display order).
    #[must_use]
    pub fn ranked_labels(&self) -> Vec<&str> {
        let mut idx: Vec<usize> = (0..self.estimates.len()).collect();
        idx.sort_by(|&a, &b| self.estimates[a].total_cmp(&self.estimates[b]));
        idx.into_iter().map(|i| self.labels[i].as_str()).collect()
    }
}

/// Server-wide counters echoed by the `STATS` command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Sessions admitted into the scheduler over the server's lifetime.
    pub sessions_admitted: u64,
    /// Sessions that ran to a terminal answer frame.
    pub sessions_completed: u64,
    /// Sessions cancelled by client disconnect.
    pub sessions_cancelled: u64,
    /// Queries rejected before admission (malformed, invalid, capacity).
    pub sessions_rejected: u64,
    /// Frames written to clients (all types).
    pub frames_sent: u64,
    /// Intermediate round frames dropped for slow clients (terminal
    /// frames are never dropped).
    pub frames_dropped_slow: u64,
    /// Currently connected clients.
    pub active_clients: u64,
    /// Engine predicate-bitmap cache hits / misses (lifetime totals).
    pub predicate_cache: (u64, u64),
    /// Engine group-plan cache hits / misses.
    pub plan_cache: (u64, u64),
    /// Engine composite-index cache hits / misses.
    pub composite_cache: (u64, u64),
    /// Sessions parked on client disconnect (lifetime total).
    pub sessions_parked: u64,
    /// Parked sessions successfully resumed via `RESUME` (lifetime total).
    pub sessions_resumed: u64,
    /// Parked checkpoints dropped by the TTL sweep (lifetime total).
    pub sessions_expired: u64,
    /// Resumable checkpoints the parking registry holds right now.
    pub parked_now: u64,
    /// Checkpoint bytes the parking registry holds right now.
    pub parked_bytes: u64,
    /// Times the supervisor restarted a panicked scheduler thread.
    pub scheduler_restarts: u64,
}

/// One server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A session advanced one round.
    Round(WireRound),
    /// The terminal answer; the server closes the connection after it.
    Answer(WireAnswer),
    /// A structured error; the server closes the connection after it.
    Error {
        /// Error category.
        code: ErrorCode,
        /// Human-readable diagnostic.
        message: String,
    },
    /// The session outgrew the server's per-session memory cap and was
    /// evicted; a best-effort [`Frame::Answer`] follows.
    Evicted {
        /// Resident-byte estimate at eviction.
        bytes: u64,
    },
    /// Reply to `STATS`.
    Stats(WireStats),
    /// The session's resume token. Sent right after admission (and after
    /// a successful `RESUME`) so the client holds the token **before**
    /// any failure: if the connection dies — or the whole server does —
    /// the session's checkpoint stays parked under this token for the
    /// parking TTL, and `RESUME token=<u64>` on a fresh connection picks
    /// the stream back up bit-identically. Not terminal: round frames
    /// follow. A session that cannot checkpoint gets no `Parked` frame.
    Parked {
        /// The resume token (never 0 — 0 is the "no token" sentinel).
        token: u64,
    },
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

const TAG_ROUND: u8 = 0x01;
const TAG_ANSWER: u8 = 0x02;
const TAG_ERROR: u8 = 0x03;
const TAG_EVICTED: u8 = 0x04;
const TAG_STATS: u8 = 0x05;
const TAG_PARKED: u8 = 0x06;

fn outcome_to_u8(o: StepOutcome) -> u8 {
    match o {
        StepOutcome::Running => 0,
        StepOutcome::Converged => 1,
        StepOutcome::BudgetExhausted => 2,
    }
}

fn outcome_from_u8(v: u8) -> Result<StepOutcome, DecodeError> {
    match v {
        0 => Ok(StepOutcome::Running),
        1 => Ok(StepOutcome::Converged),
        2 => Ok(StepOutcome::BudgetExhausted),
        other => Err(DecodeError(format!("bad outcome byte {other}"))),
    }
}

/// Byte-writer over the frame payload.
#[derive(Default)]
struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        // Wire strings are labels and error messages, nowhere near 4 GiB —
        // but the encoder runs on the serving path and must never abort, so
        // clamp (producing a decode error at the peer) instead of panicking.
        debug_assert!(s.len() <= u32::MAX as usize, "wire string too large");
        let len = u32::try_from(s.len()).unwrap_or(u32::MAX);
        self.u32(len);
        self.0.extend_from_slice(&s.as_bytes()[..len as usize]);
    }
    fn len_u32(&mut self, n: usize) {
        // Same serving-path rule as `str`: clamp, never abort.
        debug_assert!(n <= u32::MAX as usize, "wire count too large");
        self.u32(u32::try_from(n).unwrap_or(u32::MAX));
    }
}

/// Byte-reader over the frame payload.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| DecodeError("truncated payload".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        let Ok(bytes) = <[u8; 4]>::try_from(self.take(4)?) else {
            return Err(DecodeError("truncated payload".into()));
        };
        Ok(u32::from_le_bytes(bytes))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        let Ok(bytes) = <[u8; 8]>::try_from(self.take(8)?) else {
            return Err(DecodeError("truncated payload".into()));
        };
        Ok(u64::from_le_bytes(bytes))
    }
    fn f64_bits(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// An element count, sanity-capped against the remaining payload so a
    /// corrupt count cannot drive a huge allocation.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(DecodeError(format!(
                "count {n} exceeds remaining payload ({remaining} bytes)"
            )));
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError("invalid UTF-8".into()))
    }
    fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn encode_snapshot(e: &mut Enc, s: &WireSnapshot) {
    e.len_u32(s.labels.len());
    for l in &s.labels {
        e.str(l);
    }
    for &v in &s.estimates {
        e.f64_bits(v);
    }
    for &(lo, hi) in &s.intervals {
        e.f64_bits(lo);
        e.f64_bits(hi);
    }
    for &a in &s.active {
        e.u8(u8::from(a));
    }
    for &n in &s.samples_per_group {
        e.u64(n);
    }
    e.u64(s.rounds);
    e.u8(u8::from(s.truncated));
}

fn decode_snapshot(d: &mut Dec<'_>) -> Result<WireSnapshot, DecodeError> {
    let k = d.count(4)?;
    let mut labels = Vec::with_capacity(k);
    for _ in 0..k {
        labels.push(d.str()?);
    }
    let mut estimates = Vec::with_capacity(k);
    for _ in 0..k {
        estimates.push(d.f64_bits()?);
    }
    let mut intervals = Vec::with_capacity(k);
    for _ in 0..k {
        intervals.push((d.f64_bits()?, d.f64_bits()?));
    }
    let mut active = Vec::with_capacity(k);
    for _ in 0..k {
        active.push(d.u8()? != 0);
    }
    let mut samples_per_group = Vec::with_capacity(k);
    for _ in 0..k {
        samples_per_group.push(d.u64()?);
    }
    Ok(WireSnapshot {
        labels,
        estimates,
        intervals,
        active,
        samples_per_group,
        rounds: d.u64()?,
        truncated: d.u8()? != 0,
    })
}

impl Frame {
    /// A [`Frame::Round`] built from a session's [`RoundUpdate`].
    #[must_use]
    pub fn from_update(update: &RoundUpdate) -> Self {
        let snap = &update.snapshot;
        Frame::Round(WireRound {
            outcome: update.outcome,
            round: update.round,
            total_samples: update.total_samples,
            fraction_sampled: update.fraction_sampled,
            newly_certified: update
                .newly_certified
                .iter()
                // Group counts are bounded far below u32::MAX; clamp so a
                // pathological session degrades to a bad index, not an abort.
                .map(|&i| u32::try_from(i).unwrap_or(u32::MAX))
                .collect(),
            snapshot: WireSnapshot {
                labels: snap.labels.clone(),
                estimates: snap.estimates.clone(),
                intervals: snap.intervals.iter().map(|i| (i.lo, i.hi)).collect(),
                active: snap.active.clone(),
                samples_per_group: snap.samples_per_group.clone(),
                rounds: snap.rounds,
                truncated: snap.truncated,
            },
        })
    }

    /// A [`Frame::Answer`] built from a finished [`QueryAnswer`].
    #[must_use]
    pub fn from_answer(answer: &QueryAnswer) -> Self {
        Frame::Answer(WireAnswer {
            outcome: answer.outcome,
            population: answer.population,
            truncated: answer.result.truncated,
            labels: answer.result.labels.clone(),
            estimates: answer.result.estimates.clone(),
            samples_per_group: answer.result.samples_per_group.clone(),
            rounds: answer.result.rounds,
        })
    }

    /// Encodes the frame payload (the length prefix is written by
    /// [`write_frame`]).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        match self {
            Frame::Round(r) => {
                e.u8(TAG_ROUND);
                e.u8(outcome_to_u8(r.outcome));
                e.u64(r.round);
                e.u64(r.total_samples);
                e.f64_bits(r.fraction_sampled);
                e.len_u32(r.newly_certified.len());
                for &i in &r.newly_certified {
                    e.u32(i);
                }
                encode_snapshot(&mut e, &r.snapshot);
            }
            Frame::Answer(a) => {
                e.u8(TAG_ANSWER);
                e.u8(outcome_to_u8(a.outcome));
                e.u64(a.population);
                e.u8(u8::from(a.truncated));
                e.len_u32(a.labels.len());
                for l in &a.labels {
                    e.str(l);
                }
                for &v in &a.estimates {
                    e.f64_bits(v);
                }
                for &n in &a.samples_per_group {
                    e.u64(n);
                }
                e.u64(a.rounds);
            }
            Frame::Error { code, message } => {
                e.u8(TAG_ERROR);
                e.u8(*code as u8);
                e.str(message);
            }
            Frame::Evicted { bytes } => {
                e.u8(TAG_EVICTED);
                e.u64(*bytes);
            }
            Frame::Stats(s) => {
                e.u8(TAG_STATS);
                for v in [
                    s.sessions_admitted,
                    s.sessions_completed,
                    s.sessions_cancelled,
                    s.sessions_rejected,
                    s.frames_sent,
                    s.frames_dropped_slow,
                    s.active_clients,
                    s.predicate_cache.0,
                    s.predicate_cache.1,
                    s.plan_cache.0,
                    s.plan_cache.1,
                    s.composite_cache.0,
                    s.composite_cache.1,
                    s.sessions_parked,
                    s.sessions_resumed,
                    s.sessions_expired,
                    s.parked_now,
                    s.parked_bytes,
                    s.scheduler_restarts,
                ] {
                    e.u64(v);
                }
            }
            Frame::Parked { token } => {
                e.u8(TAG_PARKED);
                e.u64(*token);
            }
        }
        e.0
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on an unknown tag, truncated payload,
    /// implausible count, invalid UTF-8, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Dec::new(payload);
        let frame = match d.u8()? {
            TAG_ROUND => {
                let outcome = outcome_from_u8(d.u8()?)?;
                let round = d.u64()?;
                let total_samples = d.u64()?;
                let fraction_sampled = d.f64_bits()?;
                let n = d.count(4)?;
                let mut newly_certified = Vec::with_capacity(n);
                for _ in 0..n {
                    newly_certified.push(d.u32()?);
                }
                let snapshot = decode_snapshot(&mut d)?;
                Frame::Round(WireRound {
                    outcome,
                    round,
                    total_samples,
                    fraction_sampled,
                    newly_certified,
                    snapshot,
                })
            }
            TAG_ANSWER => {
                let outcome = outcome_from_u8(d.u8()?)?;
                let population = d.u64()?;
                let truncated = d.u8()? != 0;
                let k = d.count(4)?;
                let mut labels = Vec::with_capacity(k);
                for _ in 0..k {
                    labels.push(d.str()?);
                }
                let mut estimates = Vec::with_capacity(k);
                for _ in 0..k {
                    estimates.push(d.f64_bits()?);
                }
                let mut samples_per_group = Vec::with_capacity(k);
                for _ in 0..k {
                    samples_per_group.push(d.u64()?);
                }
                Frame::Answer(WireAnswer {
                    outcome,
                    population,
                    truncated,
                    labels,
                    estimates,
                    samples_per_group,
                    rounds: d.u64()?,
                })
            }
            TAG_ERROR => {
                let code = ErrorCode::from_u8(d.u8()?)
                    .ok_or_else(|| DecodeError("bad error code".into()))?;
                let message = d.str()?;
                Frame::Error { code, message }
            }
            TAG_EVICTED => Frame::Evicted { bytes: d.u64()? },
            TAG_STATS => {
                let mut next = || d.u64();
                Frame::Stats(WireStats {
                    sessions_admitted: next()?,
                    sessions_completed: next()?,
                    sessions_cancelled: next()?,
                    sessions_rejected: next()?,
                    frames_sent: next()?,
                    frames_dropped_slow: next()?,
                    active_clients: next()?,
                    predicate_cache: (next()?, next()?),
                    plan_cache: (next()?, next()?),
                    composite_cache: (next()?, next()?),
                    sessions_parked: next()?,
                    sessions_resumed: next()?,
                    sessions_expired: next()?,
                    parked_now: next()?,
                    parked_bytes: next()?,
                    scheduler_restarts: next()?,
                })
            }
            TAG_PARKED => Frame::Parked { token: d.u64()? },
            other => return Err(DecodeError(format!("unknown frame tag 0x{other:02x}"))),
        };
        d.finish()?;
        Ok(frame)
    }
}

/// Writes one length-prefixed frame: `u32` little-endian payload length,
/// then the payload.
///
/// # Errors
///
/// Propagates the writer's I/O errors.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    let payload = frame.encode();
    write_frame_bytes(w, &payload)
}

/// Writes an already-encoded payload with its length prefix.
///
/// # Errors
///
/// Propagates the writer's I/O errors.
pub fn write_frame_bytes(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let Ok(len) = u32::try_from(payload.len()) else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame payload exceeds the u32 length prefix",
        ));
    };
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF at
/// a frame boundary (the server closed after a terminal frame).
///
/// # Errors
///
/// Returns `InvalidData` for a length prefix past [`MAX_FRAME_BYTES`] or
/// a payload that fails to decode; other I/O errors pass through
/// (including `UnexpectedEof` mid-frame).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Frame>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "EOF inside frame length prefix",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME_BYTES}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Frame::decode(&payload)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Converts a [`rapidviz::Snapshot`] interval list into wire pairs (used
/// by tests comparing wire rounds against in-process updates).
#[must_use]
pub fn intervals_to_pairs(intervals: &[Interval]) -> Vec<(f64, f64)> {
    intervals.iter().map(|i| (i.lo, i.hi)).collect()
}

/// Why [`read_line`] gave up on a line.
#[derive(Debug)]
pub enum LineError {
    /// The line outgrew [`MAX_REQUEST_LINE`] with no LF in sight.
    TooLong,
    /// The underlying stream failed (not a timeout — timeouts are
    /// retried internally).
    Io(std::io::Error),
}

/// Accumulates request lines from a non-blocking-ish stream, preserving
/// any bytes read past the newline for the next call (a peer may
/// legitimately send bytes one at a time, or many lines at once).
pub struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> LineReader<R> {
    /// Wraps a stream.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: Vec::new(),
        }
    }
}

/// Reads one LF-terminated line (LF stripped, lossy UTF-8). Returns
/// `Ok(None)` on EOF or when `stop` flips while waiting; the read timeout
/// configured on the stream sets the `stop`-poll cadence.
///
/// # Errors
///
/// [`LineError::TooLong`] once the pending line passes
/// [`MAX_REQUEST_LINE`]; [`LineError::Io`] for real stream failures.
pub fn read_line<R: Read>(
    reader: &mut LineReader<R>,
    stop: &std::sync::atomic::AtomicBool,
) -> Result<Option<String>, LineError> {
    loop {
        if let Some(pos) = reader.buf.iter().position(|&b| b == b'\n') {
            let rest = reader.buf.split_off(pos + 1);
            let mut line = std::mem::replace(&mut reader.buf, rest);
            line.pop(); // the LF
            return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
        }
        if reader.buf.len() > MAX_REQUEST_LINE {
            return Err(LineError::TooLong);
        }
        if stop.load(std::sync::atomic::Ordering::SeqCst) {
            return Ok(None);
        }
        let mut chunk = [0u8; 1024];
        match reader.inner.read(&mut chunk) {
            Ok(0) => return Ok(None),
            Ok(n) => reader.buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Read timeout: poll the stop flag and retry.
            }
            Err(e) => return Err(LineError::Io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_round() -> Frame {
        Frame::Round(WireRound {
            outcome: StepOutcome::Running,
            round: 3,
            total_samples: 120,
            fraction_sampled: 0.25,
            newly_certified: vec![1],
            snapshot: WireSnapshot {
                labels: vec!["a".into(), "b".into()],
                estimates: vec![1.5, -2.25],
                intervals: vec![(1.0, 2.0), (-3.0, -1.5)],
                active: vec![true, false],
                samples_per_group: vec![70, 50],
                rounds: 3,
                truncated: false,
            },
        })
    }

    #[test]
    fn request_line_round_trips() {
        let mut req = QueryRequest::avg("airline", "delay", 42);
        req.aggregate = Aggregate::Sum;
        req.algorithm = AlgorithmChoice::IFocus;
        req.filter = Some(FilterSpec::In(
            "origin".into(),
            vec!["BOS".into(), "SFO".into()],
        ));
        req.delta = Some(0.01);
        req.resolution_pct = Some(1.0);
        req.bound = Some(100.0);
        req.samples_per_round = Some(16);
        req.max_samples = Some(5000);
        let line = req.to_line();
        assert_eq!(QueryRequest::parse_line(&line), Ok(req));
    }

    #[test]
    fn request_line_rejects_garbage() {
        for bad in [
            "HELLO",
            "QUERYx group=g agg=avg measure=v seed=1",
            "QUERY group=g agg=avg measure=v", // missing seed
            "QUERY group=g agg=avg seed=1",    // missing measure
            "QUERY group=g measure=v seed=1",  // missing agg
            "QUERY agg=avg measure=v seed=1",  // missing group
            "QUERY group=a,b,c agg=avg measure=v seed=1", // 3 group cols
            "QUERY group=g agg=median measure=v seed=1", // unknown agg
            "QUERY group=g agg=avg measure=v seed=banana", // bad number
            "QUERY group=g agg=avg measure=v seed=1 delta=1.5", // delta range
            "QUERY group=g agg=avg measure=v seed=1 spr=0", // zero spr
            "QUERY group=g agg=avg measure=v seed=1 nope=1", // unknown key
            "QUERY group=g agg=avg measure=v seed=1 filter=zz", // bad filter
            "QUERY group=g agg=avg measure=v seed=1 filter=in:f:", // empty IN
        ] {
            assert!(
                QueryRequest::parse_line(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn frames_round_trip() {
        let frames = [
            sample_round(),
            Frame::Answer(WireAnswer {
                outcome: StepOutcome::Converged,
                population: 1000,
                truncated: false,
                labels: vec!["x".into()],
                estimates: vec![7.0],
                samples_per_group: vec![33],
                rounds: 12,
            }),
            Frame::Error {
                code: ErrorCode::InvalidQuery,
                message: "no such column".into(),
            },
            Frame::Evicted { bytes: 4096 },
            Frame::Stats(WireStats {
                sessions_admitted: 5,
                sessions_completed: 4,
                sessions_cancelled: 1,
                sessions_rejected: 2,
                frames_sent: 99,
                frames_dropped_slow: 3,
                active_clients: 2,
                predicate_cache: (10, 2),
                plan_cache: (8, 4),
                composite_cache: (0, 1),
                sessions_parked: 6,
                sessions_resumed: 5,
                sessions_expired: 1,
                parked_now: 2,
                parked_bytes: 1234,
                scheduler_restarts: 1,
            }),
            Frame::Parked { token: 42 },
            Frame::Error {
                code: ErrorCode::NoSuchToken,
                message: "token 9 is unknown or expired".into(),
            },
        ];
        for frame in frames {
            let payload = frame.encode();
            assert_eq!(Frame::decode(&payload), Ok(frame));
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let payload = sample_round().encode();
        // Unknown tag.
        let mut bad = payload.clone();
        bad[0] = 0x7f;
        assert!(Frame::decode(&bad).is_err());
        // Truncation at every prefix length must error, never panic.
        for cut in 0..payload.len() {
            assert!(Frame::decode(&payload[..cut]).is_err());
        }
        // Trailing garbage.
        let mut long = payload.clone();
        long.push(0);
        assert!(Frame::decode(&long).is_err());
        // Implausible count: claim 2^31 labels.
        let mut huge = sample_round().encode();
        // newly_certified count sits after tag(1)+outcome(1)+round(8)+
        // samples(8)+fraction(8) = offset 26.
        huge[26..30].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Frame::decode(&huge).is_err());
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn clean_eof_is_none_and_midframe_eof_errors() {
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
        let err = read_frame(&mut [5u8, 0].as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn resume_line_parses_and_rejects_garbage() {
        assert_eq!(parse_resume_line("RESUME token=7"), Ok(7));
        assert_eq!(parse_resume_line("RESUME  token=18446744073709551615"), {
            Ok(u64::MAX)
        });
        for bad in [
            "RESUME",                            // missing token
            "RESUMEtoken=1",                     // no space
            "RESUME token=0",                    // zero sentinel
            "RESUME token=banana",               // bad number
            "RESUME token=1 extra=2",            // unknown key
            "RESUME token",                      // no value
            "QUERY token=1",                     // wrong verb
            "RESUME token=-3",                   // negative
            "RESUME token=99999999999999999999", // overflow
        ] {
            assert!(
                parse_resume_line(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn parked_frame_truncation_and_corruption_are_handled() {
        let payload = (Frame::Parked {
            token: 0x0102_0304_0506_0708,
        })
        .encode();
        assert_eq!(payload.len(), 9);
        for cut in 0..payload.len() {
            assert!(Frame::decode(&payload[..cut]).is_err());
        }
        let mut long = payload.clone();
        long.push(0);
        assert!(Frame::decode(&long).is_err());
    }

    #[test]
    fn filter_spec_builds_or_chain_in_listed_order() {
        let spec = FilterSpec::In("f".into(), vec!["a".into(), "b".into()]);
        let pred = spec.to_predicate();
        let swapped = FilterSpec::In("f".into(), vec!["b".into(), "a".into()]).to_predicate();
        // Distinct spellings, same canonical plan key.
        assert_ne!(format!("{pred:?}"), format!("{swapped:?}"));
        assert_eq!(pred.canonical_key(), swapped.canonical_key());
    }
}
