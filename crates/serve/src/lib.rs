//! # rapidviz-serve — a streaming wire protocol for progressive queries
//!
//! The paper's interaction model is a dashboard: a user issues an
//! aggregate query and watches bars *certify* one by one, long before the
//! exact answer would be ready. This crate puts that loop behind a TCP
//! socket: a std-only threaded server ([`server::Server`]) admits queries
//! into one shared [`rapidviz::MultiQueryScheduler`] and streams every
//! session's [`rapidviz::RoundUpdate`]s to its client as length-prefixed
//! binary frames, ending with the terminal answer.
//!
//! Determinism survives the wire: a request carries its RNG seed, and the
//! scheduler's invariant (multiplexing never perturbs results) means the
//! streamed estimates are **byte-identical** — `f64::to_bits` equal — to
//! an in-process [`rapidviz::VizQuery::execute`] with the same seed. The
//! loopback tests assert exactly that.
//!
//! ## Request grammar
//!
//! Requests are single LF-terminated ASCII lines, at most
//! [`protocol::MAX_REQUEST_LINE`] bytes including the LF (CR before the
//! LF is tolerated and stripped; empty lines are ignored):
//!
//! ```text
//! QUERY group=<col>[,<col>] agg=<avg|sum|count> measure=<col> seed=<u64>
//!       [algo=<ifocus|irefine|roundrobin|scan>]
//!       [filter=eq:<col>:<val> | filter=in:<col>:<v1>|<v2>|...]
//!       [delta=<f64>] [resolution_pct=<f64>] [bound=<f64>]
//!       [spr=<u64>] [max_samples=<u64>]
//! RESUME token=<u64>
//! STATS
//! ```
//!
//! `group`, `agg`, `measure`, and `seed` are required; key order is free;
//! unknown keys, bad numbers, or a missing required key get an error
//! frame with code `Malformed` and the connection closes. A connection
//! runs one command at a time: after `QUERY` or `RESUME`, the server
//! streams frames until the terminal frame, then reads the next line.
//!
//! `RESUME` re-attaches to a parked session: `token` is the non-zero
//! `u64` a `Parked` frame announced when the session was admitted.
//! Tokens stay valid while the session's checkpoint sits in the parking
//! registry — from admission until the session completes, is explicitly
//! resumed, or its TTL ([`server::ServerConfig::park_ttl`]) elapses after
//! a disconnect. An unknown, expired, or already-resumed token gets a
//! structured `NoSuchToken` error frame.
//!
//! ## Frame layout
//!
//! Every server→client message is one frame:
//!
//! ```text
//! u32 LE payload length (≤ protocol::MAX_FRAME_BYTES) | payload
//! ```
//!
//! All integers are little-endian. Floats travel as `f64::to_bits` in a
//! `u64` — bit-exact, NaN-safe. Strings are `u32 length | UTF-8 bytes`.
//! Vectors are a `u32` count followed by packed elements. `payload[0]` is
//! the frame tag:
//!
//! | tag | frame | payload after the tag |
//! |-----|-------|------------------------|
//! | `0x01` | Round | `u8` outcome (0 running / 1 converged / 2 budget), `u64` round, `u64` total_samples, `u64` fraction_sampled bits, `u32` n + n×`u32` newly-certified indices, snapshot |
//! | `0x02` | Answer | `u8` outcome, `u64` population, `u8` truncated, `u32` k + k×string labels, k×`u64` estimate bits, k×`u64` samples per group, `u64` rounds |
//! | `0x03` | Error | `u8` code (1 malformed / 2 invalid query / 3 over capacity / 4 shutting down / 5 no such token), string message |
//! | `0x04` | Evicted | `u64` resident bytes at eviction |
//! | `0x05` | Stats | 19×`u64`: admitted, completed, cancelled, rejected, frames sent, frames dropped, active clients, hit/miss pairs for the predicate, plan, and composite caches, then parked, resumed, expired, parked-now, parked bytes, scheduler restarts |
//! | `0x06` | Parked | `u64` resume token (never 0) |
//!
//! A snapshot (inside `0x01`) is: `u32` k + k×string labels, k×`u64`
//! estimate bits, k×(`u64`,`u64`) interval lo/hi bits, k×`u8` active
//! flags, k×`u64` samples per group, `u64` rounds, `u8` truncated.
//!
//! `0x02` and `0x03` are **terminal**: the server sends nothing further
//! for that command (and closes after `0x03`). `0x04` is followed by a
//! best-effort `0x02`; `0x06` precedes the round stream. Decoders must
//! reject unknown tags, truncated payloads, and trailing bytes —
//! [`protocol::Frame::decode`] does, and the robustness tests hammer it.
//!
//! ## Server lifecycle and failure behavior
//!
//! * One scheduler thread owns the engine and every session; client
//!   threads only parse, forward, and pump encoded frames (sessions are
//!   not `Send`-guaranteed, so they never cross threads). A supervisor
//!   restarts the scheduler loop if it ever panics, instead of leaving
//!   the accept loop wedged against a dead command channel.
//! * Sessions are **durable**: each admission that can checkpoint gets a
//!   resume token (`0x06 Parked`, sent before the first round) and its
//!   checkpoint is refreshed into a TTL-bounded parking registry after
//!   every round. A client disconnecting mid-stream *parks* the session
//!   (resumable via `RESUME` until the TTL lapses,
//!   [`server::ServerStats::sessions_parked`]); only tokenless sessions
//!   are cancelled outright
//!   ([`server::ServerStats::sessions_cancelled`]). Graceful shutdown
//!   drains live sessions into the same registry, so a successor server
//!   started with [`server::Server::start_shared`] resumes them; a
//!   scheduler crash loses live sessions but not their last-round
//!   checkpoints, and the resumed stream is bit-identical from the
//!   checkpointed round on.
//! * Slow clients lose intermediate round frames (counted in
//!   [`server::ServerStats::frames_dropped_slow`]), never terminal ones.
//! * Over-capacity connects and mid-shutdown queries get structured
//!   error frames (`OverCapacity` / `ShuttingDown`), not resets.
//!
//! ## Binaries
//!
//! * `rapidviz-serve` — serves a seeded flight-model table.
//! * `rapidviz-load` — closed-loop load generator (optionally
//!   self-hosting a server) reporting time-to-first-certified-bar
//!   percentiles, frames/s, and sessions/s.

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{backoff_delays, QueryRun, RetryPolicy, WireClient};
pub use protocol::{
    parse_resume_line, read_frame, write_frame, ErrorCode, FilterSpec, Frame, QueryRequest,
    WireAnswer, WireRound, WireSnapshot, WireStats,
};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};
