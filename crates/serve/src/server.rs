//! The threaded TCP server: one scheduler thread multiplexing every
//! client's sessions, an accept loop, and one lightweight thread per
//! connection.
//!
//! # Threading model
//!
//! [`QuerySession`]s are not `Send`-guaranteed, so they never leave the
//! **scheduler thread**: it owns the [`MultiQueryScheduler`], builds
//! sessions from parsed requests, and multiplexes quanta across every
//! admitted query. Client threads talk to it over an mpsc command channel
//! and receive *encoded frame payloads* (plain `Vec<u8>`) back over
//! bounded per-query channels — the scheduler never blocks on a socket.
//! The scheduler thread itself runs under a **supervisor**
//! (`supervisor_loop`): a panic (or the config-gated `CRASH` drill verb)
//! kills one incarnation of the loop, and the supervisor immediately
//! starts the next one on the same command channel instead of wedging the
//! accept loop against a dead receiver.
//!
//! # Durability
//!
//! Every admitted session that can checkpoint is granted a **resume
//! token** ([`Frame::Parked`]), announced to the client before the first
//! round so the client holds it ahead of any failure. The scheduler
//! refreshes the session's [checkpoint](rapidviz::SessionCheckpoint) into
//! a shared TTL-bounded [`ParkingRegistry`] after every round, so the
//! registry always holds each session's latest resumable state:
//!
//! * a client **disconnect** parks the session (it is no longer
//!   scheduled, but its checkpoint stays resumable under the token);
//! * a graceful **shutdown** drains the same way, so a successor server
//!   sharing the registry ([`Server::start_shared`]) picks the sessions
//!   back up;
//! * a scheduler **crash** loses the live sessions but not their
//!   last-round checkpoints — reconnecting clients `RESUME token=…` and
//!   the stream continues bit-identically from the checkpoint.
//!
//! Sessions that cannot checkpoint (or that the registry's byte cap
//! rejects) run exactly as before, just without a token — disconnect
//! cancels them.
//!
//! # Backpressure
//!
//! Round frames are sent with `try_send`: a client that stops draining
//! loses intermediate rounds (each snapshot supersedes the last, so this
//! is lossless for the final answer) and
//! [`ServerStats::frames_dropped_slow`] counts the drops. Terminal frames
//! — [`Frame::Answer`], [`Frame::Error`], [`Frame::Evicted`] — are never
//! dropped; a blocking send there is bounded because client threads write
//! under a socket timeout and drop their receiver on failure, which
//! unblocks the scheduler immediately.

use crate::protocol::{
    parse_resume_line, read_line, ErrorCode, Frame, LineError, LineReader, QueryRequest, WireStats,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rapidviz::needletail::NeedleTail;
use rapidviz::{
    MultiQueryScheduler, ParkingRegistry, QueryId, QuerySession, SchedulePolicy, SchedulerEvent,
    StepOutcome, VizQuery,
};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port — read it back
    /// from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Scheduling policy for the shared [`MultiQueryScheduler`].
    pub policy: SchedulePolicy,
    /// Concurrent-connection cap; further connects get an
    /// [`ErrorCode::OverCapacity`] frame and a close.
    pub max_clients: usize,
    /// Optional global sample budget across every session
    /// ([`MultiQueryScheduler::with_global_sample_budget`]).
    pub global_sample_budget: Option<u64>,
    /// Optional per-session memory cap in bytes
    /// ([`MultiQueryScheduler::with_session_memory_cap`]).
    pub session_memory_cap: Option<usize>,
    /// Hard per-query sample ceiling; a request's own `max_samples` is
    /// clamped to this, and requests without one get exactly this.
    pub per_client_max_samples: u64,
    /// Capacity of each query's frame queue. Larger queues make drops
    /// rarer; tests wanting a complete round stream set this high and
    /// assert [`ServerStats::frames_dropped_slow`] stayed zero.
    pub frame_queue: usize,
    /// Socket write timeout — bounds how long a terminal-frame send can
    /// wedge on a stalled client before that client is declared dead.
    pub write_timeout: Duration,
    /// How long a parked session stays resumable after its client
    /// disconnects (or the server drains). Must be positive.
    pub park_ttl: Duration,
    /// Optional cap on total parked-checkpoint bytes
    /// ([`ParkingRegistry::with_byte_cap`]); sessions whose checkpoints
    /// the full registry rejects run without durability.
    pub park_byte_cap: Option<usize>,
    /// Gates the `CRASH` debug verb, which kills the current scheduler
    /// loop incarnation (sessions drop un-drained; parked checkpoints
    /// survive) so recovery drills can exercise the supervisor. Leave
    /// off outside tests and chaos harnesses.
    pub enable_crash: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            policy: SchedulePolicy::FairShare,
            max_clients: 64,
            global_sample_budget: None,
            session_memory_cap: None,
            per_client_max_samples: 200_000,
            frame_queue: 64,
            write_timeout: Duration::from_secs(5),
            park_ttl: Duration::from_secs(120),
            park_byte_cap: None,
            enable_crash: false,
        }
    }
}

/// Lifetime counters, shared across every server thread and readable from
/// the owning process (loopback tests assert on these without a STATS
/// round-trip).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Sessions admitted into the scheduler (resumed sessions count
    /// again — a resume is a fresh admission).
    pub sessions_admitted: AtomicU64,
    /// Sessions that produced a terminal answer frame.
    pub sessions_completed: AtomicU64,
    /// Sessions cancelled outright by client disconnect (only sessions
    /// without a resume token; durable ones park instead).
    pub sessions_cancelled: AtomicU64,
    /// Requests rejected before admission (malformed, invalid, capacity,
    /// shutdown, unknown resume token).
    pub sessions_rejected: AtomicU64,
    /// Frames actually written to sockets.
    pub frames_sent: AtomicU64,
    /// Intermediate round frames dropped because a client's queue was
    /// full.
    pub frames_dropped_slow: AtomicU64,
    /// Currently connected clients.
    pub active_clients: AtomicU64,
    /// Sessions parked into the registry on disconnect or drain.
    pub sessions_parked: AtomicU64,
    /// Parked sessions successfully resumed via `RESUME`.
    pub sessions_resumed: AtomicU64,
    /// Admissions that ran without durability because the parking
    /// registry rejected their checkpoint (byte cap).
    pub park_rejected: AtomicU64,
    /// Times the supervisor restarted a dead scheduler loop (panic or
    /// `CRASH` drill).
    pub scheduler_restarts: AtomicU64,
    /// Sessions dropped un-drained by a `CRASH` drill (their latest
    /// checkpoints survive in the registry, so they stay resumable).
    /// Together with completed + cancelled + parked this keeps slot
    /// accounting balanced: every admission ends in exactly one bucket.
    /// A real panic's casualties are not counted — the unwound stack
    /// takes the tally with it.
    pub sessions_crashed: AtomicU64,
}

impl ServerStats {
    fn wire(
        &self,
        engine_metrics: &rapidviz::needletail::MetricsSnapshot,
        parking: rapidviz::ParkingStats,
    ) -> WireStats {
        WireStats {
            sessions_admitted: self.sessions_admitted.load(Ordering::Relaxed),
            sessions_completed: self.sessions_completed.load(Ordering::Relaxed),
            sessions_cancelled: self.sessions_cancelled.load(Ordering::Relaxed),
            sessions_rejected: self.sessions_rejected.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_dropped_slow: self.frames_dropped_slow.load(Ordering::Relaxed),
            active_clients: self.active_clients.load(Ordering::Relaxed),
            predicate_cache: (
                engine_metrics.predicate_cache_hits,
                engine_metrics.predicate_cache_misses,
            ),
            plan_cache: (
                engine_metrics.plan_cache_hits,
                engine_metrics.plan_cache_misses,
            ),
            composite_cache: (
                engine_metrics.composite_cache_hits,
                engine_metrics.composite_cache_misses,
            ),
            sessions_parked: self.sessions_parked.load(Ordering::Relaxed),
            sessions_resumed: self.sessions_resumed.load(Ordering::Relaxed),
            sessions_expired: parking.expired_total,
            parked_now: parking.parked,
            parked_bytes: parking.parked_bytes,
            scheduler_restarts: self.scheduler_restarts.load(Ordering::Relaxed),
        }
    }
}

/// A command from a client thread to the scheduler thread.
enum Command {
    /// Admit a parsed query for `client`, streaming frames to `tx`.
    Admit {
        client: u64,
        request: Box<QueryRequest>,
        tx: SyncSender<Vec<u8>>,
    },
    /// Resume the parked session under `token` for `client`.
    Resume {
        client: u64,
        token: u64,
        tx: SyncSender<Vec<u8>>,
    },
    /// The client disconnected; park its in-flight sessions (cancel the
    /// ones that cannot park).
    Cancel { client: u64 },
    /// Encode a stats frame and send it to `tx`.
    Stats { tx: SyncSender<Vec<u8>> },
    /// Kill this scheduler-loop incarnation abruptly (config-gated
    /// recovery drill); the supervisor starts the next one.
    Crash,
    /// Drain gracefully (parking live sessions) and exit the thread.
    Shutdown,
}

/// Why one incarnation of the scheduler loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoopExit {
    /// Graceful: live sessions were parked; the supervisor exits too.
    Shutdown,
    /// Simulated crash (`CRASH` drill): live sessions were dropped
    /// un-drained; the supervisor starts a fresh incarnation.
    Crashed,
}

/// Where an admitted session's frames go.
struct ClientLink {
    client: u64,
    tx: SyncSender<Vec<u8>>,
    /// The session's resume token (0 = not durable: the session could not
    /// checkpoint or the registry rejected it).
    token: u64,
}

/// A running server. Dropping the handle does **not** stop the server —
/// call [`ServerHandle::shutdown`].
pub struct Server;

/// Control handle returned by [`Server::start`].
pub struct ServerHandle {
    local_addr: SocketAddr,
    stats: Arc<ServerStats>,
    registry: Arc<Mutex<ParkingRegistry>>,
    shutdown: Arc<AtomicBool>,
    cmd_tx: Sender<Command>,
    accept_thread: Option<JoinHandle<()>>,
    scheduler_thread: Option<JoinHandle<()>>,
    client_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral `:0` bind).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared lifetime counters.
    #[must_use]
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// The parking registry holding parked/resumable session checkpoints.
    /// Shared: keep a clone across [`ServerHandle::shutdown`] and pass it
    /// to [`Server::start_shared`] so a successor server resumes the
    /// drained sessions.
    #[must_use]
    pub fn parking(&self) -> Arc<Mutex<ParkingRegistry>> {
        Arc::clone(&self.registry)
    }

    /// Stops accepting, drains in-flight sessions into the parking
    /// registry (cancelling the non-durable ones), and joins every server
    /// thread. Idempotent.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        let _ = self.cmd_tx.send(Command::Shutdown);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let clients = std::mem::take(
            &mut *self
                .client_threads
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for t in clients {
            let _ = t.join();
        }
        if let Some(t) = self.scheduler_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Best-effort: never leave detached threads spinning past the
        // handle (tests that forget shutdown() still terminate cleanly).
        if self.accept_thread.is_some() || self.scheduler_thread.is_some() {
            self.shutdown_inner();
        }
    }
}

impl Server {
    /// Binds and starts serving `engine` under `config`, with a private
    /// parking registry built from the config's TTL and byte cap.
    ///
    /// # Errors
    ///
    /// Fails on the initial bind or if either server thread cannot spawn.
    ///
    /// # Panics
    ///
    /// Panics if `config.park_ttl` is zero.
    pub fn start(engine: NeedleTail, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let mut registry = ParkingRegistry::new(config.park_ttl);
        if let Some(cap) = config.park_byte_cap {
            registry = registry.with_byte_cap(cap);
        }
        Self::start_shared(engine, config, Arc::new(Mutex::new(registry)))
    }

    /// [`Server::start`] against a caller-supplied parking registry — the
    /// restart pattern: shut one server down (its drain parks every live
    /// session), then start a successor with the same registry and an
    /// identically-built engine, and reconnecting clients `RESUME` their
    /// sessions as if nothing happened. The config's own TTL/byte-cap
    /// fields are ignored on this path; the registry carries them.
    ///
    /// # Errors
    ///
    /// Fails on the initial bind or if either server thread cannot spawn.
    pub fn start_shared(
        engine: NeedleTail,
        config: ServerConfig,
        registry: Arc<Mutex<ParkingRegistry>>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (cmd_tx, cmd_rx) = mpsc::channel::<Command>();
        let client_threads = Arc::new(Mutex::new(Vec::new()));

        let scheduler_thread = {
            let stats = Arc::clone(&stats);
            let config = config.clone();
            let registry = Arc::clone(&registry);
            std::thread::Builder::new()
                .name("rapidviz-sched".into())
                .spawn(move || supervisor_loop(&engine, &config, &cmd_rx, &stats, &registry))?
        };

        let accept_thread = {
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            let accept_cmd_tx = cmd_tx.clone();
            let client_threads = Arc::clone(&client_threads);
            let config = config.clone();
            let spawn = std::thread::Builder::new()
                .name("rapidviz-accept".into())
                .spawn(move || {
                    accept_loop(
                        &listener,
                        &config,
                        &accept_cmd_tx,
                        &stats,
                        &shutdown,
                        &client_threads,
                    );
                });
            match spawn {
                Ok(t) => t,
                Err(e) => {
                    // Unwind the half-started server: drain the scheduler
                    // thread — which parks any session it holds — and
                    // join it before reporting the spawn failure, rather
                    // than unwinding past a live thread.
                    drain_scheduler(&cmd_tx, scheduler_thread);
                    return Err(e);
                }
            }
        };

        Ok(ServerHandle {
            local_addr,
            stats,
            registry,
            shutdown,
            cmd_tx,
            accept_thread: Some(accept_thread),
            scheduler_thread: Some(scheduler_thread),
            client_threads,
        })
    }
}

/// Tells the scheduler thread to drain (parking its live sessions) and
/// joins it. The cleanup for a partially-started server: every spawned
/// thread is stopped through its ordinary exit path before the start
/// error propagates.
fn drain_scheduler(cmd_tx: &Sender<Command>, thread: JoinHandle<()>) {
    let _ = cmd_tx.send(Command::Shutdown);
    let _ = thread.join();
}

/// Locks the parking registry, riding through poisoning: the registry
/// holds plain data (no invariants spanning the lock), so a panicked
/// incarnation's half-finished write is at worst a stale checkpoint.
fn lock_registry(registry: &Mutex<ParkingRegistry>) -> std::sync::MutexGuard<'_, ParkingRegistry> {
    registry
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Builds a session from a wire request, clamping its sample budget to
/// the server's per-client ceiling.
fn build_session(
    engine: &NeedleTail,
    req: &QueryRequest,
    per_client_max_samples: u64,
) -> Result<QuerySession, String> {
    let mut q = VizQuery::new(engine);
    for col in &req.group_by {
        q = q.group_by(col.clone());
    }
    q = match req.aggregate {
        rapidviz::Aggregate::Avg => q.avg(req.measure.clone()),
        rapidviz::Aggregate::Sum => q.sum(req.measure.clone()),
        rapidviz::Aggregate::Count => q.count(req.measure.clone()),
    };
    q = q.algorithm(req.algorithm);
    if let Some(f) = &req.filter {
        q = q.filter(f.to_predicate());
    }
    if let Some(d) = req.delta {
        q = q.delta(d);
    }
    if let Some(r) = req.resolution_pct {
        q = q.resolution_pct(r);
    }
    if let Some(b) = req.bound {
        q = q.bound(b);
    }
    if let Some(s) = req.samples_per_round {
        q = q.samples_per_round(s);
    }
    let cap = req
        .max_samples
        .map_or(per_client_max_samples, |m| m.min(per_client_max_samples));
    q = q.max_samples(cap);
    q.start(StdRng::seed_from_u64(req.seed))
        .map_err(|e| e.to_string())
}

/// Runs [`scheduler_loop`] incarnations until one exits gracefully. A
/// panic inside the loop (or a `CRASH` drill) kills that incarnation's
/// sessions and frame channels — clients see a disconnect and reconnect
/// with `RESUME` — but the command channel, engine, and parking registry
/// all live here, outside the unwind, so the next incarnation picks them
/// up immediately instead of leaving the accept loop talking to a dead
/// receiver.
fn supervisor_loop(
    engine: &NeedleTail,
    config: &ServerConfig,
    cmd_rx: &Receiver<Command>,
    stats: &ServerStats,
    registry: &Arc<Mutex<ParkingRegistry>>,
) {
    loop {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scheduler_loop(engine, config, cmd_rx, stats, registry)
        }));
        match outcome {
            Ok(LoopExit::Shutdown) => break,
            Ok(LoopExit::Crashed) | Err(_) => {
                // The incarnation's sessions died with it; their latest
                // per-round checkpoints survive in the shared registry,
                // so reconnecting clients resume from there.
                stats.scheduler_restarts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// One scheduler-loop incarnation: owns the scheduler and every session;
/// commands in, frame payloads out. Returns how it exited (see
/// [`LoopExit`]); on [`LoopExit::Shutdown`] live sessions have been
/// drained into the parking registry.
fn scheduler_loop(
    engine: &NeedleTail,
    config: &ServerConfig,
    cmd_rx: &Receiver<Command>,
    stats: &ServerStats,
    registry: &Arc<Mutex<ParkingRegistry>>,
) -> LoopExit {
    let mut sched = MultiQueryScheduler::new(config.policy);
    if let Some(cap) = config.global_sample_budget {
        sched = sched.with_global_sample_budget(cap);
    }
    if let Some(cap) = config.session_memory_cap {
        sched = sched.with_session_memory_cap(cap);
    }
    // BTreeMap, not HashMap: broadcast paths iterate this map, and
    // delivery order must replay identically run to run.
    let mut links: BTreeMap<QueryId, ClientLink> = BTreeMap::new();
    let exit = 'run: loop {
        // Drain every pending command first so admissions and cancels are
        // never starved by a busy scheduler.
        let drained = if sched.runnable_count() == 0 && links.is_empty() {
            // Nothing to do: block until the next command (or all senders
            // gone, which only happens at teardown).
            match cmd_rx.recv() {
                Ok(cmd) => {
                    if let Some(exit) =
                        handle_command(cmd, engine, config, &mut sched, &mut links, stats, registry)
                    {
                        break 'run exit;
                    }
                    true
                }
                Err(_) => break 'run LoopExit::Shutdown,
            }
        } else {
            false
        };
        while let Ok(cmd) = cmd_rx.try_recv() {
            if let Some(exit) =
                handle_command(cmd, engine, config, &mut sched, &mut links, stats, registry)
            {
                break 'run exit;
            }
        }
        if drained && sched.runnable_count() == 0 {
            continue;
        }
        match sched.poll() {
            SchedulerEvent::Round { id, update } => {
                let terminal = update.outcome != StepOutcome::Running;
                if let Some(link) = links.get(&id) {
                    send_round(&link.tx, &Frame::from_update(&update).encode(), stats);
                    if !terminal && link.token != 0 {
                        // Durability refresh: keep the registry holding
                        // this session's latest resumable state, so even
                        // a hard crash loses no completed rounds.
                        if let Ok(ck) = sched.checkpoint(id) {
                            let mut reg = lock_registry(registry);
                            let _ = reg.park_reserved(link.token, ck);
                        }
                    }
                }
                if terminal {
                    deliver_answer(&mut sched, &mut links, id, stats, registry);
                }
            }
            SchedulerEvent::MemoryEvicted { id, bytes } => {
                if let Some(link) = links.get(&id) {
                    // Eviction notices are part of the contract — never
                    // dropped (see module docs for why this send is
                    // bounded).
                    let payload = (Frame::Evicted {
                        bytes: bytes as u64,
                    })
                    .encode();
                    let _ = link.tx.send(payload);
                }
                deliver_answer(&mut sched, &mut links, id, stats, registry);
            }
            SchedulerEvent::GlobalBudgetExhausted { .. } => {
                // Finish out everything still registered with best-effort
                // answers; late admits land here on the next poll.
                let ids: Vec<QueryId> = links.keys().copied().collect();
                for id in ids {
                    deliver_answer(&mut sched, &mut links, id, stats, registry);
                }
            }
            SchedulerEvent::Drained => {
                // Raced between runnable_count and poll; loop back to
                // blocking recv.
            }
        }
    };
    match exit {
        LoopExit::Shutdown => {
            // Graceful drain: park every still-linked session so a
            // successor server sharing the registry can resume it;
            // receivers see the channel close and clients get a clean TCP
            // close.
            let targets: Vec<(QueryId, u64)> = links.iter().map(|(id, l)| (*id, l.token)).collect();
            links.clear();
            for (id, token) in targets {
                park_or_cancel(&mut sched, id, token, stats, registry);
            }
        }
        LoopExit::Crashed => {
            // Drop everything un-drained — that is the point of the
            // drill; parked checkpoints in the shared registry survive.
            // Count the casualties so slot accounting stays balanced.
            stats
                .sessions_crashed
                .fetch_add(links.len() as u64, Ordering::Relaxed);
        }
    }
    exit
}

/// Parks a linked session under its token, falling back to cancelling it
/// when it has no token or parking fails. Counts whichever happened.
fn park_or_cancel(
    sched: &mut MultiQueryScheduler,
    id: QueryId,
    token: u64,
    stats: &ServerStats,
    registry: &Arc<Mutex<ParkingRegistry>>,
) {
    if token != 0 {
        let parked = {
            let mut reg = lock_registry(registry);
            match sched.park_reserved(id, &mut reg, token) {
                Ok(_) => true,
                Err(_) => {
                    // The session cannot park (or the slot is already
                    // gone); drop its stale durability shadow too.
                    reg.discard(token);
                    false
                }
            }
        };
        if parked {
            stats.sessions_parked.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    if sched.finish(id).is_some() {
        stats.sessions_cancelled.fetch_add(1, Ordering::Relaxed);
    }
}

/// Reserves a resume token for a fresh admission and seeds the registry
/// with the session's initial checkpoint. Returns 0 (the "no token"
/// sentinel) when the session cannot checkpoint or the registry rejected
/// it — the session still runs, it just is not durable.
fn grant_token(
    sched: &mut MultiQueryScheduler,
    id: QueryId,
    stats: &ServerStats,
    registry: &Arc<Mutex<ParkingRegistry>>,
) -> u64 {
    let Ok(ck) = sched.checkpoint(id) else {
        return 0;
    };
    let mut reg = lock_registry(registry);
    let token = reg.reserve();
    match reg.park_reserved(token, ck) {
        Ok(_) => token,
        Err(_) => {
            stats.park_rejected.fetch_add(1, Ordering::Relaxed);
            0
        }
    }
}

/// Applies one command. Returns `Some(exit)` when the loop must stop.
fn handle_command(
    cmd: Command,
    engine: &NeedleTail,
    config: &ServerConfig,
    sched: &mut MultiQueryScheduler,
    links: &mut BTreeMap<QueryId, ClientLink>,
    stats: &ServerStats,
    registry: &Arc<Mutex<ParkingRegistry>>,
) -> Option<LoopExit> {
    match cmd {
        Command::Admit {
            client,
            request,
            tx,
        } => match build_session(engine, &request, config.per_client_max_samples) {
            Ok(session) => {
                let id = sched.admit(session);
                let token = grant_token(sched, id, stats, registry);
                if token != 0 {
                    // Announce the token before any round frame: the
                    // client must hold it before a failure can take the
                    // stream down.
                    let _ = tx.send((Frame::Parked { token }).encode());
                }
                links.insert(id, ClientLink { client, tx, token });
                stats.sessions_admitted.fetch_add(1, Ordering::Relaxed);
            }
            Err(message) => {
                stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                let payload = (Frame::Error {
                    code: ErrorCode::InvalidQuery,
                    message,
                })
                .encode();
                let _ = tx.send(payload);
            }
        },
        Command::Resume { client, token, tx } => {
            let taken = {
                let mut reg = lock_registry(registry);
                reg.take(token).ok()
            };
            let Some(checkpoint) = taken else {
                stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                let payload = (Frame::Error {
                    code: ErrorCode::NoSuchToken,
                    message: format!("token {token} is unknown, already resumed, or expired"),
                })
                .encode();
                let _ = tx.send(payload);
                return None;
            };
            let clock = lock_registry(registry).clock();
            // Resumed outside the registry lock: re-planning may take
            // engine cache locks of its own.
            match QuerySession::resume_with_clock(engine, &checkpoint, clock) {
                Ok(session) => {
                    let id = sched.admit(session);
                    // The token survives the resume: re-seed the registry
                    // under the same name so the session stays durable
                    // across any number of further failures.
                    if let Ok(fresh) = sched.checkpoint(id) {
                        let mut reg = lock_registry(registry);
                        let _ = reg.park_reserved(token, fresh);
                    }
                    let _ = tx.send((Frame::Parked { token }).encode());
                    links.insert(id, ClientLink { client, tx, token });
                    stats.sessions_admitted.fetch_add(1, Ordering::Relaxed);
                    stats.sessions_resumed.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    // Schema drift between park and resume: put the
                    // checkpoint back so the failure stays observable
                    // (and retryable) until the TTL reaps it.
                    {
                        let mut reg = lock_registry(registry);
                        let _ = reg.park_reserved(token, checkpoint);
                    }
                    stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                    let payload = (Frame::Error {
                        code: ErrorCode::InvalidQuery,
                        message: format!("resume failed: {e}"),
                    })
                    .encode();
                    let _ = tx.send(payload);
                }
            }
        }
        Command::Cancel { client } => {
            let targets: Vec<(QueryId, u64)> = links
                .iter()
                .filter(|(_, l)| l.client == client)
                .map(|(id, l)| (*id, l.token))
                .collect();
            for (id, token) in targets {
                links.remove(&id);
                // Disconnect no longer cancels: durable sessions park and
                // stay resumable for the TTL.
                park_or_cancel(sched, id, token, stats, registry);
            }
        }
        Command::Stats { tx } => {
            let parking = {
                let mut reg = lock_registry(registry);
                // Sweep first so expired entries are counted as expired,
                // not reported as still parked.
                reg.sweep();
                reg.stats()
            };
            let payload = Frame::Stats(stats.wire(&engine.metrics().snapshot(), parking)).encode();
            let _ = tx.send(payload);
        }
        Command::Crash => {
            if config.enable_crash {
                // Simulated hard crash: exit abruptly, dropping every
                // live session and frame channel without draining.
                return Some(LoopExit::Crashed);
            }
            // Disabled: the client layer already rejects the verb; a
            // stray command is ignored.
        }
        Command::Shutdown => return Some(LoopExit::Shutdown),
    }
    None
}

/// Finishes `id`, drops its durability shadow, and streams its terminal
/// answer frame.
fn deliver_answer(
    sched: &mut MultiQueryScheduler,
    links: &mut BTreeMap<QueryId, ClientLink>,
    id: QueryId,
    stats: &ServerStats,
    registry: &Arc<Mutex<ParkingRegistry>>,
) {
    let Some(link) = links.remove(&id) else {
        // Client already cancelled; drop the answer.
        let _ = sched.finish(id);
        return;
    };
    if link.token != 0 {
        // A completed session is no longer resumable; without this the
        // shadow would linger until the TTL reaped it.
        let mut reg = lock_registry(registry);
        reg.discard(link.token);
    }
    if let Some(answer) = sched.finish(id) {
        // Count before handing the frame off: a client that reads its
        // answer must already see itself in `sessions_completed`.
        stats.sessions_completed.fetch_add(1, Ordering::Relaxed);
        let _ = link.tx.send(Frame::from_answer(&answer).encode());
    }
}

/// Sends an intermediate round frame without ever blocking the scheduler:
/// a full queue drops the frame (the next snapshot supersedes it).
fn send_round(tx: &SyncSender<Vec<u8>>, payload: &[u8], stats: &ServerStats) {
    match tx.try_send(payload.to_vec()) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            stats.frames_dropped_slow.fetch_add(1, Ordering::Relaxed);
        }
        Err(TrySendError::Disconnected(_)) => {
            // Client is gone; its Cancel command is in flight.
        }
    }
}

/// The accept loop: capacity gate, then one thread per connection.
fn accept_loop(
    listener: &TcpListener,
    config: &ServerConfig,
    cmd_tx: &Sender<Command>,
    stats: &Arc<ServerStats>,
    shutdown: &Arc<AtomicBool>,
    client_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_client: u64 = 0;
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if stats.active_clients.load(Ordering::Relaxed) >= config.max_clients as u64 {
            stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
            reject_over_capacity(stream, config, stats);
            continue;
        }
        stats.active_clients.fetch_add(1, Ordering::Relaxed);
        next_client += 1;
        let client = next_client;
        let cmd_tx = cmd_tx.clone();
        let client_stats = Arc::clone(stats);
        let shutdown = Arc::clone(shutdown);
        let config = config.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("rapidviz-client-{client}"))
            .spawn(move || {
                client_loop(stream, client, &config, &cmd_tx, &client_stats, &shutdown);
                client_stats.active_clients.fetch_sub(1, Ordering::Relaxed);
            });
        let Ok(handle) = spawned else {
            // Out of threads: shed this connection (dropping the stream
            // closes it) and keep serving the clients we already have.
            stats.active_clients.fetch_sub(1, Ordering::Relaxed);
            stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
            continue;
        };
        let mut threads = client_threads
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Opportunistically reap finished threads so the list stays small
        // on long-lived servers.
        threads.retain(|t| !t.is_finished());
        threads.push(handle);
    }
}

fn reject_over_capacity(mut stream: TcpStream, config: &ServerConfig, stats: &ServerStats) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let frame = Frame::Error {
        code: ErrorCode::OverCapacity,
        message: format!("server is at its {}-client capacity", config.max_clients),
    };
    if crate::protocol::write_frame(&mut stream, &frame).is_ok() {
        stats.frames_sent.fetch_add(1, Ordering::Relaxed);
    }
}

/// One connection's lifecycle: read a command line, dispatch, stream the
/// reply frames, repeat until EOF / error / shutdown. Never panics on
/// malformed input — the worst a hostile peer gets is an error frame and
/// a close.
fn client_loop(
    stream: TcpStream,
    client: u64,
    config: &ServerConfig,
    cmd_tx: &Sender<Command>,
    stats: &ServerStats,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let mut reader = LineReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        let line = match read_line(&mut reader, shutdown) {
            Ok(Some(line)) => line,
            Ok(None) => break, // clean EOF or shutdown
            Err(LineError::TooLong) => {
                stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                send_error(
                    &mut writer,
                    stats,
                    ErrorCode::Malformed,
                    "request line exceeds the size cap",
                );
                break;
            }
            Err(LineError::Io(_)) => break, // peer vanished mid-line
        };
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if line == "STATS" {
            let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(1);
            if cmd_tx.send(Command::Stats { tx }).is_err() {
                break;
            }
            if !pump_frames(&mut writer, &rx, stats, shutdown, client, cmd_tx) {
                break;
            }
            continue;
        }
        if line == "CRASH" {
            if config.enable_crash {
                // Recovery drill: kill the current scheduler-loop
                // incarnation and close this connection.
                let _ = cmd_tx.send(Command::Crash);
                break;
            }
            stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
            send_error(&mut writer, stats, ErrorCode::Malformed, "unknown command");
            break;
        }
        if line.starts_with("RESUME") {
            match parse_resume_line(line) {
                Ok(token) => {
                    if shutdown.load(Ordering::SeqCst) {
                        stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                        send_error(
                            &mut writer,
                            stats,
                            ErrorCode::ShuttingDown,
                            "server is shutting down",
                        );
                        break;
                    }
                    let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(config.frame_queue.max(1));
                    if cmd_tx.send(Command::Resume { client, token, tx }).is_err() {
                        break;
                    }
                    if !pump_frames(&mut writer, &rx, stats, shutdown, client, cmd_tx) {
                        // Disconnect (or shutdown) raced the stream; park
                        // (or reclaim) the slot.
                        let _ = cmd_tx.send(Command::Cancel { client });
                        break;
                    }
                }
                Err(message) => {
                    stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                    send_error(&mut writer, stats, ErrorCode::Malformed, &message);
                    break;
                }
            }
            continue;
        }
        match QueryRequest::parse_line(line) {
            Ok(request) => {
                if shutdown.load(Ordering::SeqCst) {
                    stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                    send_error(
                        &mut writer,
                        stats,
                        ErrorCode::ShuttingDown,
                        "server is shutting down",
                    );
                    break;
                }
                let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(config.frame_queue.max(1));
                if cmd_tx
                    .send(Command::Admit {
                        client,
                        request: Box::new(request),
                        tx,
                    })
                    .is_err()
                {
                    break;
                }
                if !pump_frames(&mut writer, &rx, stats, shutdown, client, cmd_tx) {
                    // Disconnect (or shutdown) raced the stream; make sure
                    // the slot is parked or reclaimed.
                    let _ = cmd_tx.send(Command::Cancel { client });
                    break;
                }
            }
            Err(message) => {
                stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                send_error(&mut writer, stats, ErrorCode::Malformed, &message);
                break;
            }
        }
    }
}

fn send_error(writer: &mut TcpStream, stats: &ServerStats, code: ErrorCode, message: &str) {
    let frame = Frame::Error {
        code,
        message: message.to_owned(),
    };
    if crate::protocol::write_frame(writer, &frame).is_ok() {
        let _ = writer.flush();
        stats.frames_sent.fetch_add(1, Ordering::Relaxed);
    }
}

/// Streams payloads from the scheduler to the socket until a terminal
/// frame (`Answer` / `Error` / `Stats`) goes out. Returns `false` if the
/// socket died or the server is shutting down — the caller then cancels
/// and closes.
fn pump_frames(
    writer: &mut TcpStream,
    rx: &Receiver<Vec<u8>>,
    stats: &ServerStats,
    shutdown: &AtomicBool,
    _client: u64,
    _cmd_tx: &Sender<Command>,
) -> bool {
    loop {
        let payload = match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(p) => p,
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    return false;
                }
                continue;
            }
            // Scheduler dropped the sender (teardown or crash) — nothing
            // more is coming.
            Err(RecvTimeoutError::Disconnected) => return false,
        };
        let tag = payload.first().copied().unwrap_or(0);
        if crate::protocol::write_frame_bytes(writer, &payload).is_err() {
            return false;
        }
        stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        // 0x02 Answer, 0x03 Error, 0x05 Stats end the stream (0x04
        // Evicted is followed by a best-effort Answer; 0x06 Parked
        // precedes the round stream).
        if matches!(tag, 0x02 | 0x03 | 0x05) {
            let _ = writer.flush();
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidviz_datagen::FlightModel;

    fn engine() -> NeedleTail {
        let mut rng = StdRng::seed_from_u64(7);
        let table = FlightModel::new(7).to_table(2_000, &mut rng);
        NeedleTail::new(table, &["name"]).expect("flight engine builds")
    }

    /// Pins the half-started-server cleanup: when the accept thread fails
    /// to spawn after the scheduler thread is already running (the exact
    /// shape of the `start_shared` error path), `drain_scheduler` must
    /// drain-and-join — and draining must park any session the scheduler
    /// already holds, not strand or cancel it.
    #[test]
    fn drain_scheduler_parks_active_sessions_on_partial_start() {
        let config = ServerConfig::default();
        let registry = Arc::new(Mutex::new(ParkingRegistry::new(config.park_ttl)));
        let stats = Arc::new(ServerStats::default());
        let (cmd_tx, cmd_rx) = mpsc::channel::<Command>();
        let thread = {
            let stats = Arc::clone(&stats);
            let config = config.clone();
            let registry = Arc::clone(&registry);
            let engine = engine();
            std::thread::Builder::new()
                .name("rapidviz-sched".into())
                .spawn(move || supervisor_loop(&engine, &config, &cmd_rx, &stats, &registry))
                .expect("scheduler thread spawns")
        };
        // A session far too long to complete before the drain lands (one
        // sample per round makes every step pay full snapshot overhead,
        // and the inflated bound keeps it from certifying early).
        let mut req = QueryRequest::avg("name", "arr_delay", 1);
        req.max_samples = Some(200_000);
        req.samples_per_round = Some(1);
        req.bound = Some(5_000.0);
        let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(4_096);
        cmd_tx
            .send(Command::Admit {
                client: 1,
                request: Box::new(req),
                tx,
            })
            .expect("admit sent");
        // The token announcement proves the session is live and durable.
        let first = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("token frame arrives");
        assert_eq!(first.first().copied(), Some(0x06), "Parked frame first");

        drain_scheduler(&cmd_tx, thread);

        assert_eq!(
            stats.sessions_parked.load(Ordering::Relaxed),
            1,
            "drain parked the active session"
        );
        assert_eq!(stats.sessions_cancelled.load(Ordering::Relaxed), 0);
        let reg = lock_registry(&registry);
        assert_eq!(reg.len(), 1, "registry holds the parked checkpoint");
        assert!(reg.bytes() > 0);
    }

    /// The drain must also join cleanly when the scheduler holds nothing.
    #[test]
    fn drain_scheduler_is_clean_on_an_idle_scheduler() {
        let config = ServerConfig::default();
        let registry = Arc::new(Mutex::new(ParkingRegistry::new(config.park_ttl)));
        let stats = Arc::new(ServerStats::default());
        let (cmd_tx, cmd_rx) = mpsc::channel::<Command>();
        let thread = {
            let stats = Arc::clone(&stats);
            let config = config.clone();
            let registry = Arc::clone(&registry);
            let engine = engine();
            std::thread::Builder::new()
                .name("rapidviz-sched".into())
                .spawn(move || supervisor_loop(&engine, &config, &cmd_rx, &stats, &registry))
                .expect("scheduler thread spawns")
        };
        drain_scheduler(&cmd_tx, thread);
        assert!(lock_registry(&registry).is_empty());
        assert_eq!(stats.sessions_parked.load(Ordering::Relaxed), 0);
    }
}
