//! The threaded TCP server: one scheduler thread multiplexing every
//! client's sessions, an accept loop, and one lightweight thread per
//! connection.
//!
//! # Threading model
//!
//! [`QuerySession`]s are not `Send`-guaranteed, so they never leave the
//! **scheduler thread**: it owns the [`NeedleTail`] engine and the
//! [`MultiQueryScheduler`], builds sessions from parsed requests, and
//! multiplexes quanta across every admitted query. Client threads talk to
//! it over an mpsc command channel and receive *encoded frame payloads*
//! (plain `Vec<u8>`) back over bounded per-query channels — the scheduler
//! never blocks on a socket.
//!
//! # Backpressure
//!
//! Round frames are sent with `try_send`: a client that stops draining
//! loses intermediate rounds (each snapshot supersedes the last, so this
//! is lossless for the final answer) and
//! [`ServerStats::frames_dropped_slow`] counts the drops. Terminal frames
//! — [`Frame::Answer`], [`Frame::Error`], [`Frame::Evicted`] — are never
//! dropped; a blocking send there is bounded because client threads write
//! under a socket timeout and drop their receiver on failure, which
//! unblocks the scheduler immediately.

use crate::protocol::{
    read_line, ErrorCode, Frame, LineError, LineReader, QueryRequest, WireStats,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rapidviz::needletail::NeedleTail;
use rapidviz::{
    MultiQueryScheduler, QueryId, QuerySession, SchedulePolicy, SchedulerEvent, StepOutcome,
    VizQuery,
};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port — read it back
    /// from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Scheduling policy for the shared [`MultiQueryScheduler`].
    pub policy: SchedulePolicy,
    /// Concurrent-connection cap; further connects get an
    /// [`ErrorCode::OverCapacity`] frame and a close.
    pub max_clients: usize,
    /// Optional global sample budget across every session
    /// ([`MultiQueryScheduler::with_global_sample_budget`]).
    pub global_sample_budget: Option<u64>,
    /// Optional per-session memory cap in bytes
    /// ([`MultiQueryScheduler::with_session_memory_cap`]).
    pub session_memory_cap: Option<usize>,
    /// Hard per-query sample ceiling; a request's own `max_samples` is
    /// clamped to this, and requests without one get exactly this.
    pub per_client_max_samples: u64,
    /// Capacity of each query's frame queue. Larger queues make drops
    /// rarer; tests wanting a complete round stream set this high and
    /// assert [`ServerStats::frames_dropped_slow`] stayed zero.
    pub frame_queue: usize,
    /// Socket write timeout — bounds how long a terminal-frame send can
    /// wedge on a stalled client before that client is declared dead.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            policy: SchedulePolicy::FairShare,
            max_clients: 64,
            global_sample_budget: None,
            session_memory_cap: None,
            per_client_max_samples: 200_000,
            frame_queue: 64,
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Lifetime counters, shared across every server thread and readable from
/// the owning process (loopback tests assert on these without a STATS
/// round-trip).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Sessions admitted into the scheduler.
    pub sessions_admitted: AtomicU64,
    /// Sessions that produced a terminal answer frame.
    pub sessions_completed: AtomicU64,
    /// Sessions cancelled by client disconnect before their answer.
    pub sessions_cancelled: AtomicU64,
    /// Requests rejected before admission (malformed, invalid, capacity,
    /// shutdown).
    pub sessions_rejected: AtomicU64,
    /// Frames actually written to sockets.
    pub frames_sent: AtomicU64,
    /// Intermediate round frames dropped because a client's queue was
    /// full.
    pub frames_dropped_slow: AtomicU64,
    /// Currently connected clients.
    pub active_clients: AtomicU64,
}

impl ServerStats {
    fn wire(&self, engine_metrics: &rapidviz::needletail::MetricsSnapshot) -> WireStats {
        WireStats {
            sessions_admitted: self.sessions_admitted.load(Ordering::Relaxed),
            sessions_completed: self.sessions_completed.load(Ordering::Relaxed),
            sessions_cancelled: self.sessions_cancelled.load(Ordering::Relaxed),
            sessions_rejected: self.sessions_rejected.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_dropped_slow: self.frames_dropped_slow.load(Ordering::Relaxed),
            active_clients: self.active_clients.load(Ordering::Relaxed),
            predicate_cache: (
                engine_metrics.predicate_cache_hits,
                engine_metrics.predicate_cache_misses,
            ),
            plan_cache: (
                engine_metrics.plan_cache_hits,
                engine_metrics.plan_cache_misses,
            ),
            composite_cache: (
                engine_metrics.composite_cache_hits,
                engine_metrics.composite_cache_misses,
            ),
        }
    }
}

/// A command from a client thread to the scheduler thread.
enum Command {
    /// Admit a parsed query for `client`, streaming frames to `tx`.
    Admit {
        client: u64,
        request: Box<QueryRequest>,
        tx: SyncSender<Vec<u8>>,
    },
    /// The client disconnected; cancel its in-flight session, if any.
    Cancel { client: u64 },
    /// Encode a stats frame and send it to `tx`.
    Stats { tx: SyncSender<Vec<u8>> },
    /// Stop scheduling and exit the thread.
    Shutdown,
}

/// Where an admitted session's frames go.
struct ClientLink {
    client: u64,
    tx: SyncSender<Vec<u8>>,
}

/// A running server. Dropping the handle does **not** stop the server —
/// call [`ServerHandle::shutdown`].
pub struct Server;

/// Control handle returned by [`Server::start`].
pub struct ServerHandle {
    local_addr: SocketAddr,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    cmd_tx: Sender<Command>,
    accept_thread: Option<JoinHandle<()>>,
    scheduler_thread: Option<JoinHandle<()>>,
    client_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral `:0` bind).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared lifetime counters.
    #[must_use]
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// Stops accepting, cancels in-flight sessions, and joins every
    /// server thread. Idempotent.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        let _ = self.cmd_tx.send(Command::Shutdown);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let clients = std::mem::take(
            &mut *self
                .client_threads
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for t in clients {
            let _ = t.join();
        }
        if let Some(t) = self.scheduler_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Best-effort: never leave detached threads spinning past the
        // handle (tests that forget shutdown() still terminate cleanly).
        if self.accept_thread.is_some() || self.scheduler_thread.is_some() {
            self.shutdown_inner();
        }
    }
}

impl Server {
    /// Binds and starts serving `engine` under `config`.
    ///
    /// # Errors
    ///
    /// Fails on the initial bind or if either server thread cannot spawn.
    pub fn start(engine: NeedleTail, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (cmd_tx, cmd_rx) = mpsc::channel::<Command>();
        let client_threads = Arc::new(Mutex::new(Vec::new()));

        let scheduler_thread = {
            let stats = Arc::clone(&stats);
            let config = config.clone();
            std::thread::Builder::new()
                .name("rapidviz-sched".into())
                .spawn(move || scheduler_loop(engine, &config, &cmd_rx, &stats))?
        };

        let accept_thread = {
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            let accept_cmd_tx = cmd_tx.clone();
            let client_threads = Arc::clone(&client_threads);
            let config = config.clone();
            let spawn = std::thread::Builder::new()
                .name("rapidviz-accept".into())
                .spawn(move || {
                    accept_loop(
                        &listener,
                        &config,
                        &accept_cmd_tx,
                        &stats,
                        &shutdown,
                        &client_threads,
                    );
                });
            match spawn {
                Ok(t) => t,
                Err(e) => {
                    // Unwind the half-started server: stop the scheduler
                    // thread before reporting the spawn failure.
                    let _ = cmd_tx.send(Command::Shutdown);
                    let _ = scheduler_thread.join();
                    return Err(e);
                }
            }
        };

        Ok(ServerHandle {
            local_addr,
            stats,
            shutdown,
            cmd_tx,
            accept_thread: Some(accept_thread),
            scheduler_thread: Some(scheduler_thread),
            client_threads,
        })
    }
}

/// Builds a session from a wire request, clamping its sample budget to
/// the server's per-client ceiling.
fn build_session(
    engine: &NeedleTail,
    req: &QueryRequest,
    per_client_max_samples: u64,
) -> Result<QuerySession, String> {
    let mut q = VizQuery::new(engine);
    for col in &req.group_by {
        q = q.group_by(col.clone());
    }
    q = match req.aggregate {
        rapidviz::Aggregate::Avg => q.avg(req.measure.clone()),
        rapidviz::Aggregate::Sum => q.sum(req.measure.clone()),
        rapidviz::Aggregate::Count => q.count(req.measure.clone()),
    };
    q = q.algorithm(req.algorithm);
    if let Some(f) = &req.filter {
        q = q.filter(f.to_predicate());
    }
    if let Some(d) = req.delta {
        q = q.delta(d);
    }
    if let Some(r) = req.resolution_pct {
        q = q.resolution_pct(r);
    }
    if let Some(b) = req.bound {
        q = q.bound(b);
    }
    if let Some(s) = req.samples_per_round {
        q = q.samples_per_round(s);
    }
    let cap = req
        .max_samples
        .map_or(per_client_max_samples, |m| m.min(per_client_max_samples));
    q = q.max_samples(cap);
    q.start(StdRng::seed_from_u64(req.seed))
        .map_err(|e| e.to_string())
}

/// The scheduler thread body: owns the engine and the scheduler; commands
/// in, frame payloads out.
fn scheduler_loop(
    engine: NeedleTail,
    config: &ServerConfig,
    cmd_rx: &Receiver<Command>,
    stats: &ServerStats,
) {
    let mut sched = MultiQueryScheduler::new(config.policy);
    if let Some(cap) = config.global_sample_budget {
        sched = sched.with_global_sample_budget(cap);
    }
    if let Some(cap) = config.session_memory_cap {
        sched = sched.with_session_memory_cap(cap);
    }
    // BTreeMap, not HashMap: broadcast paths iterate this map, and
    // delivery order must replay identically run to run.
    let mut links: BTreeMap<QueryId, ClientLink> = BTreeMap::new();
    loop {
        // Drain every pending command first so admissions and cancels are
        // never starved by a busy scheduler.
        let drained = if sched.runnable_count() == 0 && links.is_empty() {
            // Nothing to do: block until the next command (or all senders
            // gone, which only happens at teardown).
            match cmd_rx.recv() {
                Ok(cmd) => {
                    if handle_command(cmd, &engine, config, &mut sched, &mut links, stats) {
                        break;
                    }
                    true
                }
                Err(_) => break,
            }
        } else {
            false
        };
        let mut stop = false;
        while let Ok(cmd) = cmd_rx.try_recv() {
            if handle_command(cmd, &engine, config, &mut sched, &mut links, stats) {
                stop = true;
                break;
            }
        }
        if stop {
            break;
        }
        if drained && sched.runnable_count() == 0 {
            continue;
        }
        match sched.poll() {
            SchedulerEvent::Round { id, update } => {
                let terminal = update.outcome != StepOutcome::Running;
                if let Some(link) = links.get(&id) {
                    send_round(&link.tx, &Frame::from_update(&update).encode(), stats);
                }
                if terminal {
                    deliver_answer(&mut sched, &mut links, id, stats);
                }
            }
            SchedulerEvent::MemoryEvicted { id, bytes } => {
                if let Some(link) = links.get(&id) {
                    // Eviction notices are part of the contract — never
                    // dropped (see module docs for why this send is
                    // bounded).
                    let payload = (Frame::Evicted {
                        bytes: bytes as u64,
                    })
                    .encode();
                    let _ = link.tx.send(payload);
                }
                deliver_answer(&mut sched, &mut links, id, stats);
            }
            SchedulerEvent::GlobalBudgetExhausted { .. } => {
                // Finish out everything still registered with best-effort
                // answers; late admits land here on the next poll.
                let ids: Vec<QueryId> = links.keys().copied().collect();
                for id in ids {
                    deliver_answer(&mut sched, &mut links, id, stats);
                }
            }
            SchedulerEvent::Drained => {
                // Raced between runnable_count and poll; loop back to
                // blocking recv.
            }
        }
    }
    // Teardown: surviving sessions are cancelled; receivers see the
    // channel close and clients get a clean TCP close.
    let n = links.len() as u64;
    stats.sessions_cancelled.fetch_add(n, Ordering::Relaxed);
}

/// Applies one command. Returns `true` on shutdown.
fn handle_command(
    cmd: Command,
    engine: &NeedleTail,
    config: &ServerConfig,
    sched: &mut MultiQueryScheduler,
    links: &mut BTreeMap<QueryId, ClientLink>,
    stats: &ServerStats,
) -> bool {
    match cmd {
        Command::Admit {
            client,
            request,
            tx,
        } => match build_session(engine, &request, config.per_client_max_samples) {
            Ok(session) => {
                let id = sched.admit(session);
                links.insert(id, ClientLink { client, tx });
                stats.sessions_admitted.fetch_add(1, Ordering::Relaxed);
            }
            Err(message) => {
                stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                let payload = (Frame::Error {
                    code: ErrorCode::InvalidQuery,
                    message,
                })
                .encode();
                let _ = tx.send(payload);
            }
        },
        Command::Cancel { client } => {
            let ids: Vec<QueryId> = links
                .iter()
                .filter(|(_, l)| l.client == client)
                .map(|(id, _)| *id)
                .collect();
            for id in ids {
                links.remove(&id);
                if sched.finish(id).is_some() {
                    stats.sessions_cancelled.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Command::Stats { tx } => {
            let payload = Frame::Stats(stats.wire(&engine.metrics().snapshot())).encode();
            let _ = tx.send(payload);
        }
        Command::Shutdown => return true,
    }
    false
}

/// Finishes `id` and streams its terminal answer frame.
fn deliver_answer(
    sched: &mut MultiQueryScheduler,
    links: &mut BTreeMap<QueryId, ClientLink>,
    id: QueryId,
    stats: &ServerStats,
) {
    let Some(link) = links.remove(&id) else {
        // Client already cancelled; drop the answer.
        let _ = sched.finish(id);
        return;
    };
    if let Some(answer) = sched.finish(id) {
        // Count before handing the frame off: a client that reads its
        // answer must already see itself in `sessions_completed`.
        stats.sessions_completed.fetch_add(1, Ordering::Relaxed);
        let _ = link.tx.send(Frame::from_answer(&answer).encode());
    }
}

/// Sends an intermediate round frame without ever blocking the scheduler:
/// a full queue drops the frame (the next snapshot supersedes it).
fn send_round(tx: &SyncSender<Vec<u8>>, payload: &[u8], stats: &ServerStats) {
    match tx.try_send(payload.to_vec()) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            stats.frames_dropped_slow.fetch_add(1, Ordering::Relaxed);
        }
        Err(TrySendError::Disconnected(_)) => {
            // Client is gone; its Cancel command is in flight.
        }
    }
}

/// The accept loop: capacity gate, then one thread per connection.
fn accept_loop(
    listener: &TcpListener,
    config: &ServerConfig,
    cmd_tx: &Sender<Command>,
    stats: &Arc<ServerStats>,
    shutdown: &Arc<AtomicBool>,
    client_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_client: u64 = 0;
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if stats.active_clients.load(Ordering::Relaxed) >= config.max_clients as u64 {
            stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
            reject_over_capacity(stream, config, stats);
            continue;
        }
        stats.active_clients.fetch_add(1, Ordering::Relaxed);
        next_client += 1;
        let client = next_client;
        let cmd_tx = cmd_tx.clone();
        let client_stats = Arc::clone(stats);
        let shutdown = Arc::clone(shutdown);
        let config = config.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("rapidviz-client-{client}"))
            .spawn(move || {
                client_loop(stream, client, &config, &cmd_tx, &client_stats, &shutdown);
                client_stats.active_clients.fetch_sub(1, Ordering::Relaxed);
            });
        let Ok(handle) = spawned else {
            // Out of threads: shed this connection (dropping the stream
            // closes it) and keep serving the clients we already have.
            stats.active_clients.fetch_sub(1, Ordering::Relaxed);
            stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
            continue;
        };
        let mut threads = client_threads
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Opportunistically reap finished threads so the list stays small
        // on long-lived servers.
        threads.retain(|t| !t.is_finished());
        threads.push(handle);
    }
}

fn reject_over_capacity(mut stream: TcpStream, config: &ServerConfig, stats: &ServerStats) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let frame = Frame::Error {
        code: ErrorCode::OverCapacity,
        message: format!("server is at its {}-client capacity", config.max_clients),
    };
    if crate::protocol::write_frame(&mut stream, &frame).is_ok() {
        stats.frames_sent.fetch_add(1, Ordering::Relaxed);
    }
}

/// One connection's lifecycle: read a command line, dispatch, stream the
/// reply frames, repeat until EOF / error / shutdown. Never panics on
/// malformed input — the worst a hostile peer gets is an error frame and
/// a close.
fn client_loop(
    stream: TcpStream,
    client: u64,
    config: &ServerConfig,
    cmd_tx: &Sender<Command>,
    stats: &ServerStats,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let mut reader = LineReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        let line = match read_line(&mut reader, shutdown) {
            Ok(Some(line)) => line,
            Ok(None) => break, // clean EOF or shutdown
            Err(LineError::TooLong) => {
                stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                send_error(
                    &mut writer,
                    stats,
                    ErrorCode::Malformed,
                    "request line exceeds the size cap",
                );
                break;
            }
            Err(LineError::Io(_)) => break, // peer vanished mid-line
        };
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if line == "STATS" {
            let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(1);
            if cmd_tx.send(Command::Stats { tx }).is_err() {
                break;
            }
            if !pump_frames(&mut writer, &rx, stats, shutdown, client, cmd_tx) {
                break;
            }
            continue;
        }
        match QueryRequest::parse_line(line) {
            Ok(request) => {
                if shutdown.load(Ordering::SeqCst) {
                    stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                    send_error(
                        &mut writer,
                        stats,
                        ErrorCode::ShuttingDown,
                        "server is shutting down",
                    );
                    break;
                }
                let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(config.frame_queue.max(1));
                if cmd_tx
                    .send(Command::Admit {
                        client,
                        request: Box::new(request),
                        tx,
                    })
                    .is_err()
                {
                    break;
                }
                if !pump_frames(&mut writer, &rx, stats, shutdown, client, cmd_tx) {
                    // Disconnect (or shutdown) raced the stream; make sure
                    // the slot is reclaimed.
                    let _ = cmd_tx.send(Command::Cancel { client });
                    break;
                }
            }
            Err(message) => {
                stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                send_error(&mut writer, stats, ErrorCode::Malformed, &message);
                break;
            }
        }
    }
}

fn send_error(writer: &mut TcpStream, stats: &ServerStats, code: ErrorCode, message: &str) {
    let frame = Frame::Error {
        code,
        message: message.to_owned(),
    };
    if crate::protocol::write_frame(writer, &frame).is_ok() {
        let _ = writer.flush();
        stats.frames_sent.fetch_add(1, Ordering::Relaxed);
    }
}

/// Streams payloads from the scheduler to the socket until a terminal
/// frame (`Answer` / `Error` / `Stats`) goes out. Returns `false` if the
/// socket died or the server is shutting down — the caller then cancels
/// and closes.
fn pump_frames(
    writer: &mut TcpStream,
    rx: &Receiver<Vec<u8>>,
    stats: &ServerStats,
    shutdown: &AtomicBool,
    _client: u64,
    _cmd_tx: &Sender<Command>,
) -> bool {
    loop {
        let payload = match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(p) => p,
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    return false;
                }
                continue;
            }
            // Scheduler dropped the sender (teardown) — nothing more
            // is coming.
            Err(RecvTimeoutError::Disconnected) => return false,
        };
        let tag = payload.first().copied().unwrap_or(0);
        if crate::protocol::write_frame_bytes(writer, &payload).is_err() {
            return false;
        }
        stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        // 0x02 Answer, 0x03 Error, 0x05 Stats end the stream (0x04
        // Evicted is followed by a best-effort Answer).
        if matches!(tag, 0x02 | 0x03 | 0x05) {
            let _ = writer.flush();
            return true;
        }
    }
}
