//! The `rapidviz-load` binary: a closed-loop load generator for
//! `rapidviz-serve`.
//!
//! ```text
//! rapidviz-load [--addr HOST:PORT | --self-host] [--clients 8]
//!               [--queries-per-client 4] [--seed 42] [--rows 20000]
//! ```
//!
//! Spawns N client threads; each runs its queries back-to-back (closed
//! loop) with a deterministic per-client mix of AVG / SUM / COUNT over
//! the flight measures, records time-to-first-certified-bar and frame
//! counts, and requires a terminal frame for every query. Prints p50/p99
//! TTFCB, frames/s, and sessions/s; exits non-zero if any query missed
//! its terminal frame.
//!
//! `--self-host` starts an in-process server on an ephemeral loopback
//! port first — the CI smoke path, no background-process orchestration
//! needed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rapidviz::needletail::NeedleTail;
use rapidviz::Aggregate;
use rapidviz_datagen::FlightModel;
use rapidviz_serve::{QueryRequest, RetryPolicy, Server, ServerConfig, ServerHandle, WireClient};
use std::time::{Duration, Instant};

const MEASURES: [&str; 3] = ["elapsed", "arr_delay", "dep_delay"];

struct Args {
    addr: Option<String>,
    self_host: bool,
    clients: usize,
    queries_per_client: usize,
    seed: u64,
    rows: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        self_host: false,
        clients: 8,
        queries_per_client: 4,
        seed: 42,
        rows: 20_000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--self-host" => args.self_host = true,
            "--clients" => args.clients = parse("--clients", &value("--clients")?)?,
            "--queries-per-client" => {
                args.queries_per_client =
                    parse("--queries-per-client", &value("--queries-per-client")?)?;
            }
            "--seed" => args.seed = parse("--seed", &value("--seed")?)?,
            "--rows" => args.rows = parse("--rows", &value("--rows")?)?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.addr.is_none() && !args.self_host {
        return Err("pass --addr HOST:PORT or --self-host".to_owned());
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(name: &str, value: &str) -> Result<T, String> {
    value
        .parse::<T>()
        .map_err(|_| format!("{name} could not parse {value:?}"))
}

/// SplitMix64 — a tiny deterministic stream for picking each query's mix,
/// independent of the engine's RNG.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One query's deterministic spec for client `c`, query `q`.
fn request_for(seed: u64, client: usize, query: usize) -> QueryRequest {
    let mut s = seed ^ ((client as u64) << 32) ^ query as u64;
    let roll = splitmix(&mut s);
    let measure = MEASURES[(roll % 3) as usize];
    let mut req = QueryRequest::avg("name", measure, splitmix(&mut s));
    req.aggregate = match (roll >> 8) % 3 {
        0 => Aggregate::Avg,
        1 => Aggregate::Sum,
        _ => Aggregate::Count,
    };
    // Keep sessions short enough for a smoke run but long enough to
    // stream several rounds.
    req.max_samples = Some(40_000);
    req.samples_per_round = Some(64);
    req
}

#[derive(Default)]
struct ClientReport {
    ttfcb: Vec<Duration>,
    frames: u64,
    completed: u64,
    missing_terminal: u64,
    retries: u64,
}

fn run_client(
    addr: &str,
    seed: u64,
    client: usize,
    queries: usize,
) -> Result<ClientReport, std::io::Error> {
    let mut report = ClientReport::default();
    for q in 0..queries {
        // Bounded, seeded-backoff connect: under a flapping or restarting
        // server each client retries on its own deterministic jitter
        // schedule instead of stampeding, and the summary reports how
        // often that happened.
        let policy = RetryPolicy {
            seed: seed ^ ((client as u64) << 32) ^ q as u64,
            ..RetryPolicy::default()
        };
        let (mut conn, retries) =
            WireClient::connect_with_retry(addr, Duration::from_secs(30), &policy)?;
        report.retries += u64::from(retries);
        let req = request_for(seed, client, q);
        let start = Instant::now();
        conn.send_request(&req)?;
        let mut first_certified: Option<Duration> = None;
        let mut terminal = false;
        while let Some(frame) = conn.next_frame()? {
            report.frames += 1;
            match frame {
                rapidviz_serve::Frame::Round(r) => {
                    if first_certified.is_none() && !r.newly_certified.is_empty() {
                        first_certified = Some(start.elapsed());
                    }
                }
                rapidviz_serve::Frame::Answer(_) => {
                    terminal = true;
                    break;
                }
                rapidviz_serve::Frame::Error { code, message } => {
                    eprintln!("client {client} query {q}: server error {code:?}: {message}");
                    terminal = true;
                    break;
                }
                rapidviz_serve::Frame::Parked { .. }
                | rapidviz_serve::Frame::Evicted { .. }
                | rapidviz_serve::Frame::Stats(_) => {}
            }
        }
        if terminal {
            report.completed += 1;
            // A query whose first certification arrives only with the
            // terminal frame still counts — use total latency then.
            report
                .ttfcb
                .push(first_certified.unwrap_or_else(|| start.elapsed()));
        } else {
            report.missing_terminal += 1;
        }
    }
    Ok(report)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn self_host(rows: u64, seed: u64, clients: usize) -> ServerHandle {
    let mut rng = StdRng::seed_from_u64(seed);
    let table = FlightModel::new(seed).to_table(rows, &mut rng);
    let engine = NeedleTail::new(table, &["name"]).expect("flight engine builds");
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        max_clients: clients.max(8) * 2,
        ..ServerConfig::default()
    };
    Server::start(engine, config).expect("self-hosted server binds")
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rapidviz-load: {e}");
            std::process::exit(2);
        }
    };
    let hosted = if args.self_host {
        Some(self_host(args.rows, args.seed, args.clients))
    } else {
        None
    };
    let addr = hosted.as_ref().map_or_else(
        || args.addr.clone().unwrap(),
        |h| h.local_addr().to_string(),
    );

    let wall = Instant::now();
    let reports: Vec<_> = std::thread::scope(|scope| {
        (0..args.clients)
            .map(|c| {
                let addr = addr.clone();
                scope.spawn(move || run_client(&addr, args.seed, c, args.queries_per_client))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread joins"))
            .collect()
    });
    let elapsed = wall.elapsed();

    let mut ttfcb = Vec::new();
    let mut frames = 0u64;
    let mut completed = 0u64;
    let mut missing = 0u64;
    let mut io_errors = 0u64;
    let mut retries = 0u64;
    for r in reports {
        match r {
            Ok(rep) => {
                ttfcb.extend(rep.ttfcb);
                frames += rep.frames;
                completed += rep.completed;
                missing += rep.missing_terminal;
                retries += rep.retries;
            }
            Err(e) => {
                eprintln!("rapidviz-load: client failed: {e}");
                io_errors += 1;
            }
        }
    }
    ttfcb.sort();
    let secs = elapsed.as_secs_f64().max(1e-9);
    println!(
        "rapidviz-load: {completed} sessions, {frames} frames in {:.2}s \
         ({:.1} sessions/s, {:.1} frames/s), {retries} connect retries",
        elapsed.as_secs_f64(),
        completed as f64 / secs,
        frames as f64 / secs,
    );
    println!(
        "time-to-first-certified-bar: p50 {:.2}ms  p99 {:.2}ms",
        percentile(&ttfcb, 0.50).as_secs_f64() * 1e3,
        percentile(&ttfcb, 0.99).as_secs_f64() * 1e3,
    );
    if let Some(h) = hosted {
        let dropped = h
            .stats()
            .frames_dropped_slow
            .load(std::sync::atomic::Ordering::Relaxed);
        println!("server dropped {dropped} slow-client round frames");
        h.shutdown();
    }
    if missing > 0 || io_errors > 0 {
        eprintln!("rapidviz-load: FAIL — {missing} queries missing terminal frames, {io_errors} client I/O failures");
        std::process::exit(1);
    }
}
