//! The `rapidviz-serve` binary: serves a seeded flight-model table over
//! the wire protocol.
//!
//! ```text
//! rapidviz-serve [--addr 127.0.0.1:7171] [--rows 50000] [--seed 1]
//!                [--policy fairshare|deadline|greedy] [--max-clients 64]
//!                [--global-budget N] [--memory-cap BYTES]
//!                [--per-client-max-samples N] [--sessions-limit N]
//!                [--predicate-cache N] [--plan-cache N]
//!                [--composite-cache N] [--park-ttl-secs 120]
//!                [--park-byte-cap BYTES] [--enable-crash]
//! ```
//!
//! `--park-ttl-secs` bounds how long a disconnected client's session
//! stays resumable via `RESUME token=…`; `--park-byte-cap` caps the
//! registry's total checkpoint bytes (sessions over the cap run without
//! durability). `--enable-crash` arms the `CRASH` recovery-drill verb —
//! chaos testing only, never in real deployments.
//!
//! The three `--*-cache` flags size the engine's planning-cache LRUs
//! (entries, clamped to ≥ 1); defaults match the engine's built-in
//! capacities. Raise them when the STATS frame's cache-miss counters
//! show workload filter diversity outrunning the defaults.
//!
//! With `--sessions-limit N` the server exits 0 once N sessions have
//! reached a terminal state (completed or cancelled) — the CI smoke uses
//! this for a clean, timeout-free shutdown.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rapidviz::needletail::{CacheCapacities, NeedleTail};
use rapidviz::SchedulePolicy;
use rapidviz_datagen::FlightModel;
use rapidviz_serve::{Server, ServerConfig};
use std::sync::atomic::Ordering;
use std::time::Duration;

struct Args {
    addr: String,
    rows: u64,
    seed: u64,
    policy: SchedulePolicy,
    max_clients: usize,
    global_budget: Option<u64>,
    memory_cap: Option<usize>,
    per_client_max_samples: u64,
    sessions_limit: Option<u64>,
    caches: CacheCapacities,
    park_ttl_secs: u64,
    park_byte_cap: Option<usize>,
    enable_crash: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7171".to_owned(),
        rows: 50_000,
        seed: 1,
        policy: SchedulePolicy::FairShare,
        max_clients: 64,
        global_budget: None,
        memory_cap: None,
        per_client_max_samples: 200_000,
        sessions_limit: None,
        caches: CacheCapacities::default(),
        park_ttl_secs: 120,
        park_byte_cap: None,
        enable_crash: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--rows" => args.rows = parse("--rows", &value("--rows")?)?,
            "--seed" => args.seed = parse("--seed", &value("--seed")?)?,
            "--policy" => {
                args.policy = match value("--policy")?.as_str() {
                    "fairshare" => SchedulePolicy::FairShare,
                    "deadline" => SchedulePolicy::DeadlineAware,
                    "greedy" => SchedulePolicy::GreedyConvergence,
                    other => return Err(format!("unknown policy {other:?}")),
                };
            }
            "--max-clients" => args.max_clients = parse("--max-clients", &value("--max-clients")?)?,
            "--global-budget" => {
                args.global_budget = Some(parse("--global-budget", &value("--global-budget")?)?);
            }
            "--memory-cap" => {
                args.memory_cap = Some(parse("--memory-cap", &value("--memory-cap")?)?);
            }
            "--per-client-max-samples" => {
                args.per_client_max_samples = parse(
                    "--per-client-max-samples",
                    &value("--per-client-max-samples")?,
                )?;
            }
            "--sessions-limit" => {
                args.sessions_limit = Some(parse("--sessions-limit", &value("--sessions-limit")?)?);
            }
            "--predicate-cache" => {
                args.caches.predicate = parse("--predicate-cache", &value("--predicate-cache")?)?;
            }
            "--plan-cache" => {
                args.caches.plan = parse("--plan-cache", &value("--plan-cache")?)?;
            }
            "--composite-cache" => {
                args.caches.composite = parse("--composite-cache", &value("--composite-cache")?)?;
            }
            "--park-ttl-secs" => {
                args.park_ttl_secs = parse("--park-ttl-secs", &value("--park-ttl-secs")?)?;
                if args.park_ttl_secs == 0 {
                    return Err("--park-ttl-secs must be positive".to_owned());
                }
            }
            "--park-byte-cap" => {
                let cap: usize = parse("--park-byte-cap", &value("--park-byte-cap")?)?;
                if cap == 0 {
                    return Err("--park-byte-cap must be positive".to_owned());
                }
                args.park_byte_cap = Some(cap);
            }
            "--enable-crash" => args.enable_crash = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(name: &str, value: &str) -> Result<T, String> {
    value
        .parse::<T>()
        .map_err(|_| format!("{name} could not parse {value:?}"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rapidviz-serve: {e}");
            std::process::exit(2);
        }
    };
    let mut rng = StdRng::seed_from_u64(args.seed);
    let table = FlightModel::new(args.seed).to_table(args.rows, &mut rng);
    let engine = match NeedleTail::builder(table)
        .indexed_columns(&["name"])
        .cache_capacities(args.caches)
        .build()
    {
        Ok(e) => e,
        Err(e) => {
            eprintln!("rapidviz-serve: engine build failed: {e:?}");
            std::process::exit(1);
        }
    };
    let config = ServerConfig {
        addr: args.addr,
        policy: args.policy,
        max_clients: args.max_clients,
        global_sample_budget: args.global_budget,
        session_memory_cap: args.memory_cap,
        per_client_max_samples: args.per_client_max_samples,
        park_ttl: Duration::from_secs(args.park_ttl_secs),
        park_byte_cap: args.park_byte_cap,
        enable_crash: args.enable_crash,
        ..ServerConfig::default()
    };
    let handle = match Server::start(engine, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("rapidviz-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "rapidviz-serve listening on {} ({} flight rows, seed {})",
        handle.local_addr(),
        args.rows,
        args.seed
    );
    loop {
        std::thread::sleep(Duration::from_millis(50));
        if let Some(limit) = args.sessions_limit {
            let stats = handle.stats();
            let terminal = stats.sessions_completed.load(Ordering::Relaxed)
                + stats.sessions_cancelled.load(Ordering::Relaxed);
            if terminal >= limit {
                println!("rapidviz-serve: sessions limit {limit} reached, shutting down");
                handle.shutdown();
                return;
            }
        }
    }
}
