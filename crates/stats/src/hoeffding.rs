//! Chernoff–Hoeffding bounds for sampling **with** replacement.
//!
//! For i.i.d. samples `X_1..X_m` from a distribution supported on `[0, c]`
//! with mean `µ`, Hoeffding's inequality (Hoeffding 1963) states
//!
//! ```text
//! Pr[ |X̄_m − µ| ≥ ε ] ≤ 2·exp(−2·m·ε² / c²).
//! ```
//!
//! Three views of the same bound are exposed: the deviation probability for a
//! given `(m, ε)`, the half-width `ε` for a given `(m, δ)`, and the sample
//! size `m` for a given `(ε, δ)`. The last is the `EstimateMean` subroutine
//! size `m = c²/(2ε²)·ln(2/δ)` of Algorithm 2 in the paper.

/// Probability that the empirical mean of `m` samples in `[0, c]` deviates
/// from the true mean by at least `eps` (two-sided Hoeffding bound).
///
/// Returns a value clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if `c <= 0`, `eps < 0`, or `m == 0`.
#[must_use]
pub fn hoeffding_deviation_probability(m: u64, eps: f64, c: f64) -> f64 {
    assert!(c > 0.0, "range c must be positive");
    assert!(eps >= 0.0, "deviation eps must be non-negative");
    assert!(m > 0, "need at least one sample");
    let exponent = -2.0 * (m as f64) * eps * eps / (c * c);
    (2.0 * exponent.exp()).min(1.0)
}

/// Two-sided confidence half-width after `m` samples at confidence `1 − δ`:
///
/// ```text
/// ε = c·sqrt( ln(2/δ) / (2m) ).
/// ```
///
/// # Panics
///
/// Panics if `m == 0`, `c <= 0`, or `δ ∉ (0, 1)`.
#[must_use]
pub fn hoeffding_half_width(m: u64, delta: f64, c: f64) -> f64 {
    assert!(m > 0, "need at least one sample");
    assert!(c > 0.0, "range c must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
    c * ((2.0 / delta).ln() / (2.0 * m as f64)).sqrt()
}

/// Number of with-replacement samples sufficient to estimate a `[0, c]` mean
/// within `±eps` with probability `1 − δ` (Algorithm 2 of the paper):
///
/// ```text
/// m = ⌈ c²/(2ε²) · ln(2/δ) ⌉.
/// ```
///
/// # Panics
///
/// Panics if `eps <= 0`, `c <= 0`, or `δ ∉ (0, 1)`.
#[must_use]
pub fn hoeffding_sample_size(eps: f64, delta: f64, c: f64) -> u64 {
    assert!(eps > 0.0, "eps must be positive");
    assert!(c > 0.0, "range c must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
    let m = (c * c) / (2.0 * eps * eps) * (2.0 / delta).ln();
    // Guard against pathological rounding; at least one sample is required.
    m.ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_probability_decreases_in_m() {
        let p10 = hoeffding_deviation_probability(10, 0.1, 1.0);
        let p100 = hoeffding_deviation_probability(100, 0.1, 1.0);
        let p1000 = hoeffding_deviation_probability(1000, 0.1, 1.0);
        assert!(p10 > p100 && p100 > p1000);
    }

    #[test]
    fn deviation_probability_clamped_to_one() {
        assert_eq!(hoeffding_deviation_probability(1, 0.0, 1.0), 1.0);
    }

    #[test]
    fn known_value() {
        // m = 50, eps = 0.1, c = 1: 2·exp(−2·50·0.01) = 2·exp(−1) ≈ 0.7357589.
        let p = hoeffding_deviation_probability(50, 0.1, 1.0);
        assert!((p - 2.0 * (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn half_width_and_probability_are_inverses() {
        for &m in &[1u64, 7, 100, 12345] {
            for &delta in &[0.5, 0.05, 0.001] {
                let eps = hoeffding_half_width(m, delta, 1.0);
                let p = hoeffding_deviation_probability(m, eps, 1.0);
                assert!(
                    (p - delta).abs() < 1e-9,
                    "m={m} delta={delta}: round-trip gave {p}"
                );
            }
        }
    }

    #[test]
    fn half_width_scales_linearly_in_c() {
        let e1 = hoeffding_half_width(64, 0.05, 1.0);
        let e100 = hoeffding_half_width(64, 0.05, 100.0);
        assert!((e100 / e1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn sample_size_achieves_target() {
        for &eps in &[0.5, 0.1, 0.01] {
            for &delta in &[0.2, 0.05] {
                let m = hoeffding_sample_size(eps, delta, 1.0);
                assert!(hoeffding_deviation_probability(m, eps, 1.0) <= delta + 1e-12);
                // One fewer sample should not suffice (up to ceil slack).
                if m > 1 {
                    let p_prev = hoeffding_deviation_probability(m - 1, eps, 1.0);
                    assert!(p_prev > delta - 0.05, "sample size not tight: {p_prev}");
                }
            }
        }
    }

    #[test]
    fn sample_size_minimum_one() {
        // Huge eps => formula underflows below 1; we still demand 1 sample.
        assert_eq!(hoeffding_sample_size(10.0, 0.5, 1.0), 1);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rejects_bad_delta() {
        let _ = hoeffding_half_width(10, 1.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_zero_samples() {
        let _ = hoeffding_half_width(0, 0.1, 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn half_width_monotone_decreasing_in_m(
            m in 1u64..100_000,
            delta in 0.001f64..0.5,
            c in 0.1f64..1000.0,
        ) {
            let e1 = hoeffding_half_width(m, delta, c);
            let e2 = hoeffding_half_width(m + 1, delta, c);
            prop_assert!(e2 <= e1);
        }

        #[test]
        fn half_width_monotone_decreasing_in_delta(
            m in 1u64..100_000,
            delta in 0.001f64..0.4,
            c in 0.1f64..1000.0,
        ) {
            // Larger delta (weaker confidence) => narrower interval.
            let tight = hoeffding_half_width(m, delta, c);
            let loose = hoeffding_half_width(m, delta * 2.0, c);
            prop_assert!(loose <= tight);
        }

        #[test]
        fn sample_size_monotone_in_eps(
            eps in 0.01f64..1.0,
            delta in 0.001f64..0.5,
        ) {
            let m_tight = hoeffding_sample_size(eps / 2.0, delta, 1.0);
            let m_loose = hoeffding_sample_size(eps, delta, 1.0);
            prop_assert!(m_tight >= m_loose);
            // Quadratic scaling: halving eps needs ~4x samples (ceiling
            // rounding blurs this for tiny counts, so only check when the
            // loose size is already substantial).
            if m_loose >= 10 {
                prop_assert!(m_tight >= 3 * m_loose);
            }
        }

        /// Empirical coverage check: Hoeffding interval contains the true
        /// Bernoulli mean at least (1-δ) of the time (generous slack).
        #[test]
        fn empirical_coverage(seed in 0u64..50) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let p = 0.3;
            let m = 200u64;
            let delta = 0.1;
            let eps = hoeffding_half_width(m, delta, 1.0);
            let trials = 200;
            let mut covered = 0;
            for _ in 0..trials {
                let mean = (0..m).filter(|_| rng.gen_bool(p)).count() as f64 / m as f64;
                if (mean - p).abs() <= eps {
                    covered += 1;
                }
            }
            // True coverage is far above 1-δ (Hoeffding is conservative);
            // demand at least 1-2δ to keep the test robust.
            prop_assert!(covered as f64 >= (1.0 - 2.0 * delta) * trials as f64);
        }
    }
}
