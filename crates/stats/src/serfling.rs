//! The Hoeffding–Serfling inequality for sampling **without** replacement.
//!
//! Serfling (1974) sharpened Hoeffding's bound for the without-replacement
//! setting: when `m` of `N` population values in `[0, c]` have been drawn
//! without replacement,
//!
//! ```text
//! Pr[ max_{k ≤ m ≤ N−1} |X̄_m − µ| ≥ ε ] ≤ 2·exp( −2·k·ε² / (c²·(1 − (k−1)/N)) )
//! ```
//!
//! (the maximal form quoted as Lemma 2 of the paper). The only difference
//! from Hoeffding is the *sampling-fraction factor* `1 − (m−1)/N`, which
//! shrinks the interval as the sample exhausts the population — at `m = N`
//! the empirical mean *is* the population mean and the width collapses to 0.
//!
//! This module exposes the factor itself (shared with the anytime schedule in
//! [`crate::schedule`]) and the fixed-`m` half-width.

/// The Serfling sampling-fraction factor `1 − (m − 1)/N`, clamped to `[0, 1]`.
///
/// `m` is the number of samples drawn so far and `n` the population size.
/// For `m > n` (which a correct caller never produces, but a schedule asked
/// for a hypothetical round may) the factor clamps to 0, collapsing the
/// interval — the population is exhausted so the mean is known exactly.
#[must_use]
pub fn serfling_sampling_fraction_factor(m: u64, n: u64) -> f64 {
    assert!(n > 0, "population size must be positive");
    let f = 1.0 - (m.saturating_sub(1)) as f64 / n as f64;
    f.clamp(0.0, 1.0)
}

/// Two-sided fixed-`m` Hoeffding–Serfling half-width at confidence `1 − δ`
/// for a population of `n` values in `[0, c]`:
///
/// ```text
/// ε = c·sqrt( (1 − (m−1)/n) · ln(2/δ) / (2m) ).
/// ```
///
/// # Panics
///
/// Panics if `m == 0`, `n == 0`, `c <= 0`, or `δ ∉ (0, 1)`.
#[must_use]
pub fn serfling_half_width(m: u64, n: u64, delta: f64, c: f64) -> f64 {
    assert!(m > 0, "need at least one sample");
    assert!(n > 0, "population size must be positive");
    assert!(c > 0.0, "range c must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
    let factor = serfling_sampling_fraction_factor(m, n);
    c * (factor * (2.0 / delta).ln() / (2.0 * m as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hoeffding::hoeffding_half_width;

    #[test]
    fn factor_at_first_sample_is_one() {
        assert_eq!(serfling_sampling_fraction_factor(1, 100), 1.0);
    }

    #[test]
    fn factor_at_exhaustion() {
        // m = n: factor = 1 - (n-1)/n = 1/n.
        let f = serfling_sampling_fraction_factor(100, 100);
        assert!((f - 0.01).abs() < 1e-12);
        // m > n clamps to 0.
        assert_eq!(serfling_sampling_fraction_factor(102, 100), 0.0);
    }

    #[test]
    fn factor_monotone_decreasing_in_m() {
        let mut prev = f64::INFINITY;
        for m in 1..=50 {
            let f = serfling_sampling_fraction_factor(m, 50);
            assert!(f <= prev);
            prev = f;
        }
    }

    #[test]
    fn serfling_never_wider_than_hoeffding() {
        for &m in &[1u64, 10, 50, 99] {
            let s = serfling_half_width(m, 100, 0.05, 1.0);
            let h = hoeffding_half_width(m, 0.05, 1.0);
            assert!(
                s <= h + 1e-12,
                "m={m}: serfling {s} should not exceed hoeffding {h}"
            );
        }
    }

    #[test]
    fn serfling_converges_to_hoeffding_for_large_population() {
        let s = serfling_half_width(100, 1_000_000_000, 0.05, 1.0);
        let h = hoeffding_half_width(100, 0.05, 1.0);
        assert!((s - h).abs() / h < 1e-6);
    }

    #[test]
    fn width_collapses_at_exhaustion() {
        let almost = serfling_half_width(1000, 1000, 0.05, 1.0);
        let fresh = serfling_half_width(1, 1000, 0.05, 1.0);
        assert!(
            almost < fresh * 0.05,
            "near-exhaustion interval should collapse"
        );
    }

    #[test]
    fn scales_linearly_in_c() {
        let e1 = serfling_half_width(10, 100, 0.05, 1.0);
        let e42 = serfling_half_width(10, 100, 0.05, 42.0);
        assert!((e42 / e1 - 42.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn rejects_zero_population() {
        let _ = serfling_half_width(1, 0, 0.05, 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn factor_in_unit_range(m in 1u64..10_000, n in 1u64..10_000) {
            let f = serfling_sampling_fraction_factor(m, n);
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn half_width_monotone_decreasing_in_m(
            n in 2u64..100_000,
            delta in 0.001f64..0.5,
        ) {
            let mut prev = f64::INFINITY;
            // Probe a geometric ladder of m values up to n.
            let mut m = 1u64;
            while m <= n {
                let e = serfling_half_width(m, n, delta, 1.0);
                prop_assert!(e <= prev + 1e-12);
                prev = e;
                m *= 2;
            }
        }

        /// Empirical coverage for without-replacement draws from a fixed
        /// finite population.
        #[test]
        fn empirical_coverage(seed in 0u64..30) {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            // Population: 0/1 values, 40% ones.
            let n = 500usize;
            let mut pop: Vec<f64> =
                (0..n).map(|i| if i % 5 < 2 { 1.0 } else { 0.0 }).collect();
            let mu = pop.iter().sum::<f64>() / n as f64;
            let m = 300u64;
            let delta = 0.1;
            let eps = serfling_half_width(m, n as u64, delta, 1.0);
            let trials = 100;
            let mut covered = 0;
            for _ in 0..trials {
                pop.shuffle(&mut rng);
                let mean = pop[..m as usize].iter().sum::<f64>() / m as f64;
                if (mean - mu).abs() <= eps {
                    covered += 1;
                }
            }
            prop_assert!(covered as f64 >= (1.0 - 2.0 * delta) * trials as f64);
        }
    }
}
