//! Closed-interval arithmetic for confidence intervals.
//!
//! The active-set test of Algorithm 1 (line 11) asks whether the confidence
//! interval of group `i` intersects the union of the confidence intervals of
//! all *other* active groups. [`Interval`] provides the pointwise operations
//! and [`IntervalSet`] answers that union-overlap query in `O(log n)` per
//! probe after an `O(n log n)` build, which keeps the per-round bookkeeping
//! cost at `O(k log k)` as analyzed in §3.4 of the paper.

/// A closed interval `[lo, hi]` on the real line.
///
/// Invariant: `lo <= hi` (enforced by [`Interval::new`], which sorts the
/// endpoints). Degenerate (single-point) intervals are allowed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// Creates `[lo, hi]`, swapping the endpoints if given out of order.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is NaN; confidence intervals must be real.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            !lo.is_nan() && !hi.is_nan(),
            "interval endpoints must not be NaN"
        );
        if lo <= hi {
            Self { lo, hi }
        } else {
            Self { lo: hi, hi: lo }
        }
    }

    /// The confidence interval `[center - half_width, center + half_width]`.
    ///
    /// Negative half-widths are treated as zero (a point interval), which is
    /// the correct degenerate behaviour when a schedule clamps to zero.
    #[must_use]
    pub fn centered(center: f64, half_width: f64) -> Self {
        let h = half_width.max(0.0);
        Self::new(center - h, center + h)
    }

    /// Interval width `hi - lo`.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint of the interval.
    #[must_use]
    pub fn center(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether `x` lies inside the closed interval.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether two closed intervals intersect (shared endpoints count).
    ///
    /// Touching intervals *do* overlap: the paper's termination condition
    /// requires intervals to be disjoint, and treating tangency as overlap is
    /// the conservative choice (never stops early).
    #[must_use]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Whether this interval lies strictly below `other` (no intersection).
    #[must_use]
    pub fn strictly_below(&self, other: &Interval) -> bool {
        self.hi < other.lo
    }

    /// The intersection of two intervals, if non-empty.
    #[must_use]
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// The smallest interval containing both inputs.
    #[must_use]
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// A set of intervals supporting fast "does this interval hit any member
/// other than one excluded index?" queries.
///
/// Internally the member intervals are sorted by lower endpoint together with
/// a prefix/suffix decomposition of maxima/minima so that the exclusion query
/// runs in `O(log n)`:
///
/// for a probe `q` and excluded member `x`, `q` overlaps some member `!= x`
/// iff there exists `j != x` with `lo_j <= q.hi` and `hi_j >= q.lo`. We answer
/// this with two passes over the sorted order using precomputed prefix maxima
/// of `hi` (members starting at or below `q.hi`), skipping `x` via
/// second-best tracking.
///
/// Hot loops that rebuild the set every iteration (the algorithms'
/// deactivation fixpoints) should hold an [`IntervalSetScratch`] instead:
/// same queries, but rebuilding reuses the internal buffers.
#[derive(Debug, Clone)]
pub struct IntervalSet {
    scratch: IntervalSetScratch,
}

/// Best and second-best `(hi, index)` pairs for the exclusion trick.
#[derive(Debug, Clone, Copy)]
struct BestPair {
    best_val: f64,
    best_idx: usize,
    second_val: f64,
}

/// A reusable [`IntervalSet`] builder: `begin` / `push` / `build`, then the
/// same overlap queries, with every internal buffer (members, sort order,
/// prefix maxima) retained across rebuilds so a warmed scratch performs
/// **zero heap allocation** per rebuild. This is what the per-round
/// deactivation fixpoints of the IFOCUS family iterate on.
#[derive(Debug, Clone, Default)]
pub struct IntervalSetScratch {
    /// Member intervals in insertion order (index-addressable).
    members: Vec<Interval>,
    /// Indices sorted by `lo` (ties broken by index, so rebuilds are
    /// deterministic).
    by_lo: Vec<usize>,
    /// `prefix_best[t]` = best and second-best `hi` over `by_lo[..=t]`.
    prefix_best: Vec<BestPair>,
}

impl IntervalSetScratch {
    /// Creates an empty scratch (no buffers reserved yet).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new set, clearing members but keeping buffer capacity.
    pub fn begin(&mut self) {
        self.members.clear();
    }

    /// Adds a member interval; its index is the insertion position.
    pub fn push(&mut self, member: Interval) {
        self.members.push(member);
    }

    /// Sorts and indexes the pushed members, making the query methods
    /// valid. Allocation-free once the buffers have grown to the largest
    /// member count seen.
    pub fn build(&mut self) {
        self.by_lo.clear();
        self.by_lo.extend(0..self.members.len());
        // Unstable sort (no merge buffer); the index tiebreak keeps the
        // order — and therefore every downstream query — deterministic.
        self.by_lo.sort_unstable_by(|&a, &b| {
            self.members[a]
                .lo
                .total_cmp(&self.members[b].lo)
                .then(a.cmp(&b))
        });
        self.prefix_best.clear();
        self.prefix_best.reserve(self.members.len());
        let mut best = BestPair {
            best_val: f64::NEG_INFINITY,
            best_idx: usize::MAX,
            second_val: f64::NEG_INFINITY,
        };
        for &idx in &self.by_lo {
            let hi = self.members[idx].hi;
            if hi > best.best_val {
                best.second_val = best.best_val;
                best.best_val = hi;
                best.best_idx = idx;
            } else if hi > best.second_val {
                best.second_val = hi;
            }
            self.prefix_best.push(best);
        }
    }

    /// Number of member intervals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Approximate resident bytes of the retained buffers (capacities, not
    /// lengths) — feeds the algorithm layer's per-session memory
    /// accounting.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.members.capacity() * size_of::<Interval>()
            + self.by_lo.capacity() * size_of::<usize>()
            + self.prefix_best.capacity() * size_of::<BestPair>()
    }

    /// Whether the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Returns the member at `idx`.
    #[must_use]
    pub fn member(&self, idx: usize) -> Interval {
        self.members[idx]
    }

    /// Does `probe` overlap any member whose index differs from `exclude`?
    ///
    /// Pass `exclude = usize::MAX` (or any out-of-range index) to test
    /// against every member. Runs in `O(log n)`. Requires [`Self::build`]
    /// after the last `push`.
    #[must_use]
    pub fn overlaps_any_excluding(&self, probe: &Interval, exclude: usize) -> bool {
        if self.members.is_empty() {
            return false;
        }
        debug_assert_eq!(self.prefix_best.len(), self.members.len(), "not built");
        // Find the last sorted position whose lo <= probe.hi.
        let pos = self
            .by_lo
            .partition_point(|&i| self.members[i].lo <= probe.hi);
        if pos == 0 {
            return false;
        }
        let best = self.prefix_best[pos - 1];
        // Among members with lo <= probe.hi, is there one (other than
        // `exclude`) with hi >= probe.lo?
        if best.best_idx != exclude {
            best.best_val >= probe.lo
        } else {
            best.second_val >= probe.lo
        }
    }

    /// Does member `idx` overlap any *other* member of the set?
    ///
    /// This is exactly the activity test of Algorithm 1 line 11.
    #[must_use]
    pub fn member_overlaps_others(&self, idx: usize) -> bool {
        self.overlaps_any_excluding(&self.members[idx], idx)
    }
}

impl IntervalSet {
    /// Builds the set from the given member intervals.
    #[must_use]
    pub fn new(members: Vec<Interval>) -> Self {
        let mut scratch = IntervalSetScratch {
            members,
            by_lo: Vec::new(),
            prefix_best: Vec::new(),
        };
        scratch.build();
        Self { scratch }
    }

    /// Number of member intervals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scratch.len()
    }

    /// Whether the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scratch.is_empty()
    }

    /// Returns the member at `idx`.
    #[must_use]
    pub fn member(&self, idx: usize) -> Interval {
        self.scratch.member(idx)
    }

    /// Does `probe` overlap any member whose index differs from `exclude`?
    ///
    /// Pass `exclude = usize::MAX` (or any out-of-range index) to test
    /// against every member. Runs in `O(log n)`.
    #[must_use]
    pub fn overlaps_any_excluding(&self, probe: &Interval, exclude: usize) -> bool {
        self.scratch.overlaps_any_excluding(probe, exclude)
    }

    /// Does member `idx` overlap any *other* member of the set?
    ///
    /// This is exactly the activity test of Algorithm 1 line 11.
    #[must_use]
    pub fn member_overlaps_others(&self, idx: usize) -> bool {
        self.scratch.member_overlaps_others(idx)
    }

    /// Indices of all members that overlap at least one other member.
    #[must_use]
    pub fn overlapping_members(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.member_overlaps_others(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn new_sorts_endpoints() {
        let i = Interval::new(3.0, 1.0);
        assert_eq!(i.lo, 1.0);
        assert_eq!(i.hi, 3.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn new_rejects_nan() {
        let _ = Interval::new(f64::NAN, 1.0);
    }

    #[test]
    fn centered_clamps_negative_half_width() {
        let i = Interval::centered(5.0, -1.0);
        assert_eq!(i.lo, 5.0);
        assert_eq!(i.hi, 5.0);
        assert_eq!(i.width(), 0.0);
    }

    #[test]
    fn centered_basic() {
        let i = Interval::centered(10.0, 2.5);
        assert_eq!(i.lo, 7.5);
        assert_eq!(i.hi, 12.5);
        assert_eq!(i.center(), 10.0);
        assert_eq!(i.width(), 5.0);
    }

    #[test]
    fn contains_endpoints() {
        let i = iv(1.0, 2.0);
        assert!(i.contains(1.0));
        assert!(i.contains(2.0));
        assert!(i.contains(1.5));
        assert!(!i.contains(0.999));
        assert!(!i.contains(2.001));
    }

    #[test]
    fn overlap_is_symmetric_and_counts_tangency() {
        let a = iv(0.0, 1.0);
        let b = iv(1.0, 2.0);
        let c = iv(1.5, 3.0);
        let d = iv(2.5, 4.0);
        assert!(
            a.overlaps(&b) && b.overlaps(&a),
            "tangent intervals overlap"
        );
        assert!(b.overlaps(&c) && c.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(c.overlaps(&d));
        assert!(!a.overlaps(&d));
    }

    #[test]
    fn strictly_below() {
        assert!(iv(0.0, 1.0).strictly_below(&iv(1.1, 2.0)));
        assert!(!iv(0.0, 1.0).strictly_below(&iv(1.0, 2.0)));
        assert!(!iv(0.0, 1.0).strictly_below(&iv(0.5, 2.0)));
    }

    #[test]
    fn intersect_and_hull() {
        let a = iv(0.0, 2.0);
        let b = iv(1.0, 3.0);
        assert_eq!(a.intersect(&b), Some(iv(1.0, 2.0)));
        assert_eq!(a.hull(&b), iv(0.0, 3.0));
        assert_eq!(a.intersect(&iv(5.0, 6.0)), None);
    }

    /// Brute-force oracle for the exclusion query.
    fn naive_overlaps_any_excluding(
        members: &[Interval],
        probe: &Interval,
        exclude: usize,
    ) -> bool {
        members
            .iter()
            .enumerate()
            .any(|(i, m)| i != exclude && m.overlaps(probe))
    }

    #[test]
    fn interval_set_matches_naive_small() {
        let members = vec![iv(0.0, 1.0), iv(0.5, 2.0), iv(3.0, 4.0), iv(4.0, 5.0)];
        let set = IntervalSet::new(members.clone());
        for exclude in 0..=members.len() {
            for probe in &[iv(0.0, 0.4), iv(0.9, 3.1), iv(6.0, 7.0), iv(4.5, 4.6)] {
                assert_eq!(
                    set.overlaps_any_excluding(probe, exclude),
                    naive_overlaps_any_excluding(&members, probe, exclude),
                    "probe={probe:?} exclude={exclude}"
                );
            }
        }
    }

    #[test]
    fn member_overlaps_others_basic() {
        // Groups 0/1 overlap each other; 2 is isolated; 3/4 touch.
        let set = IntervalSet::new(vec![
            iv(0.0, 1.0),
            iv(0.5, 1.5),
            iv(10.0, 11.0),
            iv(20.0, 21.0),
            iv(21.0, 22.0),
        ]);
        assert!(set.member_overlaps_others(0));
        assert!(set.member_overlaps_others(1));
        assert!(!set.member_overlaps_others(2));
        assert!(set.member_overlaps_others(3), "tangency counts as overlap");
        assert!(set.member_overlaps_others(4));
        assert_eq!(set.overlapping_members(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn singleton_set_never_overlaps() {
        let set = IntervalSet::new(vec![iv(0.0, 100.0)]);
        assert!(!set.member_overlaps_others(0));
    }

    #[test]
    fn empty_set() {
        let set = IntervalSet::new(vec![]);
        assert!(set.is_empty());
        assert!(!set.overlaps_any_excluding(&iv(0.0, 1.0), usize::MAX));
    }

    #[test]
    fn duplicate_intervals_overlap_each_other() {
        let set = IntervalSet::new(vec![iv(1.0, 2.0), iv(1.0, 2.0)]);
        assert!(set.member_overlaps_others(0));
        assert!(set.member_overlaps_others(1));
    }

    #[test]
    fn scratch_rebuild_matches_fresh_set() {
        // A reused scratch must answer exactly like a freshly built set,
        // across rebuilds of different sizes (shrinking included).
        let rounds: Vec<Vec<Interval>> = vec![
            vec![iv(0.0, 1.0), iv(0.5, 2.0), iv(3.0, 4.0), iv(4.0, 5.0)],
            vec![iv(10.0, 11.0), iv(10.5, 12.0)],
            vec![iv(-3.0, -1.0), iv(-2.0, 0.0), iv(5.0, 6.0)],
            vec![iv(7.0, 8.0)],
        ];
        let mut scratch = IntervalSetScratch::new();
        for members in rounds {
            scratch.begin();
            for &m in &members {
                scratch.push(m);
            }
            scratch.build();
            let fresh = IntervalSet::new(members.clone());
            assert_eq!(scratch.len(), fresh.len());
            for i in 0..members.len() {
                assert_eq!(
                    scratch.member_overlaps_others(i),
                    fresh.member_overlaps_others(i),
                    "member {i} of {members:?}"
                );
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_interval() -> impl Strategy<Value = Interval> {
        (-100.0f64..100.0, 0.0f64..50.0).prop_map(|(lo, w)| Interval::new(lo, lo + w))
    }

    proptest! {
        #[test]
        fn overlap_symmetric(a in arb_interval(), b in arb_interval()) {
            prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        }

        #[test]
        fn intersect_nonempty_iff_overlap(a in arb_interval(), b in arb_interval()) {
            prop_assert_eq!(a.intersect(&b).is_some(), a.overlaps(&b));
        }

        #[test]
        fn hull_contains_both(a in arb_interval(), b in arb_interval()) {
            let h = a.hull(&b);
            prop_assert!(h.lo <= a.lo && h.hi >= a.hi);
            prop_assert!(h.lo <= b.lo && h.hi >= b.hi);
        }

        #[test]
        fn set_query_matches_naive(
            members in proptest::collection::vec(arb_interval(), 0..24),
            probe in arb_interval(),
            exclude in 0usize..30,
        ) {
            let set = IntervalSet::new(members.clone());
            let naive = members
                .iter()
                .enumerate()
                .any(|(i, m)| i != exclude && m.overlaps(&probe));
            prop_assert_eq!(set.overlaps_any_excluding(&probe, exclude), naive);
        }

        #[test]
        fn member_query_matches_naive(
            members in proptest::collection::vec(arb_interval(), 1..24),
        ) {
            let set = IntervalSet::new(members.clone());
            for i in 0..members.len() {
                let naive = members
                    .iter()
                    .enumerate()
                    .any(|(j, m)| j != i && m.overlaps(&members[i]));
                prop_assert_eq!(set.member_overlaps_others(i), naive);
            }
        }
    }
}
