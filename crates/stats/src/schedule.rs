//! The anytime (iterated-logarithm) confidence schedule of Algorithm 1.
//!
//! Line 6 of IFOCUS sets, at round `m`,
//!
//! ```text
//!            ┌──────────────────────────────────────────────────────────┐
//! ε_m = c · √│ (1 − (m/κ − 1)/N) · (2·log log_κ(m) + log(π²k/(3δ)))     │
//!            │ ──────────────────────────────────────────────────────── │
//!            │                       2·m/κ                              │
//!            └──────────────────────────────────────────────────────────┘
//! ```
//!
//! where `N = max_{i∈A} n_i` is the largest active-group population. The
//! schedule is *anytime*: by Theorem 3.2 (the paper's adaptation of the Law
//! of the Iterated Logarithm upper-bound argument over geometric epochs
//! `κ^{r−1} ≤ m ≤ κ^r`), with probability `1 − δ/k` the running mean of one
//! group stays within `±ε_m` of its true mean **simultaneously for every
//! round** `m ≥ 1` — which is exactly what the stopping rule needs.
//!
//! Paper-faithful details implemented here:
//!
//! * **κ knob.** Any `κ > 1` is admissible; the experiments use `κ = 1`,
//!   under which `log_κ` degenerates, so (per the paper's footnote †) the
//!   `log log_κ m` term falls back to `log(ln m)`. We additionally clamp the
//!   iterated logarithm at zero from below so `m ∈ {1, 2}` yields a valid
//!   (conservative) width rather than NaN.
//! * **Sampling mode.** Without replacement retains the Serfling factor
//!   `1 − (m/κ − 1)/N`; with replacement drops it (§3.6), in which case the
//!   schedule does not need the group sizes at all.
//! * **Heuristic factor.** Figures 5a/5b study dividing ε by a factor
//!   `h ≥ 1`; `h = 1` is the prescribed schedule.

use crate::serfling::serfling_sampling_fraction_factor;

/// Whether per-group samples are drawn with or without replacement (§3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplingMode {
    /// Sampling without replacement: Hoeffding–Serfling factor applies and
    /// intervals collapse as a group nears exhaustion. Paper default.
    #[default]
    WithoutReplacement,
    /// I.i.d. sampling with replacement: plain Hoeffding; group sizes are
    /// not needed.
    WithReplacement,
}

/// The anytime ε-schedule of Algorithm 1 line 6.
///
/// Construct once per query (it captures `c`, `δ`, `k`, `κ`, the sampling
/// mode, and the heuristic factor) and call [`EpsilonSchedule::half_width`]
/// each round.
///
/// ```
/// use rapidviz_stats::EpsilonSchedule;
///
/// // 10 groups of values in [0, 100], overall failure probability 5%.
/// let schedule = EpsilonSchedule::new(100.0, 0.05, 10);
/// let group_size = 1_000_000;
///
/// // The half-width shrinks as rounds accumulate...
/// assert!(schedule.half_width(10_000, group_size) < schedule.half_width(100, group_size));
/// // ...and collapses to zero when a group is exhausted (without
/// // replacement, the empirical mean then IS the true mean).
/// assert_eq!(schedule.half_width(group_size + 1, group_size), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct EpsilonSchedule {
    c: f64,
    delta: f64,
    k: usize,
    kappa: f64,
    mode: SamplingMode,
    heuristic_factor: f64,
    /// Precomputed `ln(π²·k / (3δ))`.
    delta_term: f64,
}

impl EpsilonSchedule {
    /// Creates the schedule for `k` groups of values in `[0, c]` with overall
    /// failure probability `δ`, `κ = 1`, without replacement, and no
    /// heuristic shrinking — the paper's experimental configuration.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`, `δ ∉ (0, 1)`, or `k == 0`.
    #[must_use]
    pub fn new(c: f64, delta: f64, k: usize) -> Self {
        Self::with_options(c, delta, k, 1.0, SamplingMode::WithoutReplacement, 1.0)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`, `δ ∉ (0, 1)`, `k == 0`, `κ < 1`, or
    /// `heuristic_factor < 1`.
    #[must_use]
    pub fn with_options(
        c: f64,
        delta: f64,
        k: usize,
        kappa: f64,
        mode: SamplingMode,
        heuristic_factor: f64,
    ) -> Self {
        assert!(c > 0.0, "range c must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
        assert!(k > 0, "need at least one group");
        assert!(kappa >= 1.0, "kappa must be >= 1");
        assert!(
            heuristic_factor >= 1.0,
            "heuristic factor < 1 would widen intervals past the proof"
        );
        let delta_term = (std::f64::consts::PI.powi(2) * k as f64 / (3.0 * delta)).ln();
        Self {
            c,
            delta,
            k,
            kappa,
            mode,
            heuristic_factor,
            delta_term,
        }
    }

    /// The value range bound `c`.
    #[must_use]
    pub fn c(&self) -> f64 {
        self.c
    }

    /// The overall failure probability `δ`.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of groups `k` the union bound is split across.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The epoch base `κ`.
    #[must_use]
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// The sampling mode.
    #[must_use]
    pub fn mode(&self) -> SamplingMode {
        self.mode
    }

    /// The heuristic shrink factor `h` (ε is divided by `h`).
    #[must_use]
    pub fn heuristic_factor(&self) -> f64 {
        self.heuristic_factor
    }

    /// The `ln(π²k/(3δ))` additive term.
    #[must_use]
    pub fn delta_term(&self) -> f64 {
        self.delta_term
    }

    /// The iterated-logarithm term `ln(log_κ m)`, clamped at zero.
    ///
    /// With `κ = 1` the paper's footnote substitutes `ln(ln m)`; both the
    /// inner and the outer logarithm are floored so early rounds produce a
    /// finite, conservative value.
    #[must_use]
    pub fn loglog_term(&self, m: u64) -> f64 {
        let m = m.max(1) as f64;
        let inner = if self.kappa > 1.0 {
            m.ln() / self.kappa.ln()
        } else {
            m.ln()
        };
        if inner <= 1.0 {
            0.0
        } else {
            inner.ln()
        }
    }

    /// The effective round count `m/κ` (the paper divides the sample count by
    /// the epoch base; with `κ = 1` this is just `m`).
    fn effective_m(&self, m: u64) -> f64 {
        (m.max(1) as f64) / self.kappa
    }

    /// ε at round `m`, for largest active-group population `n_max`.
    ///
    /// `n_max` is only consulted in [`SamplingMode::WithoutReplacement`];
    /// pass [`u64::MAX`] (or anything) when sampling with replacement.
    ///
    /// Guaranteed finite and non-negative. Returns 0 once a
    /// without-replacement schedule has exhausted the population.
    #[must_use]
    pub fn half_width(&self, m: u64, n_max: u64) -> f64 {
        let m_eff = self.effective_m(m);
        let numerator = 2.0 * self.loglog_term(m) + self.delta_term;
        let factor = match self.mode {
            SamplingMode::WithReplacement => 1.0,
            SamplingMode::WithoutReplacement => {
                // 1 − (m/κ − 1)/N, clamped: reuse the Serfling factor with
                // the effective round count.
                let m_for_factor = m_eff.ceil().max(1.0) as u64;
                serfling_sampling_fraction_factor(m_for_factor, n_max.max(1))
            }
        };
        let eps = self.c * (factor * numerator / (2.0 * m_eff)).sqrt();
        eps / self.heuristic_factor
    }

    /// Smallest round `m` at which `half_width(m, n_max) < target`, found by
    /// galloping + binary search. Returns `None` if no `m ≤ m_cap` achieves
    /// it (with replacement the width decays like `sqrt(log log m / m)`, so
    /// every positive target is eventually reached; the cap guards callers).
    #[must_use]
    pub fn rounds_to_reach(&self, target: f64, n_max: u64, m_cap: u64) -> Option<u64> {
        assert!(target > 0.0, "target half-width must be positive");
        if self.half_width(1, n_max) < target {
            return Some(1);
        }
        // Gallop for an upper bound where the width drops below target.
        let mut hi = 2u64;
        while hi < m_cap && self.half_width(hi, n_max) >= target {
            hi = hi.saturating_mul(2);
        }
        if hi >= m_cap && self.half_width(m_cap, n_max) >= target {
            return None;
        }
        let hi = hi.min(m_cap);
        // Binary search in (lo, hi]: width(lo) >= target > width(hi).
        // The schedule is not perfectly monotone at tiny m because of the
        // loglog clamp, but is monotone non-increasing for m >= 2; the search
        // is still valid because we only need *some* round where the width is
        // below target and all later rounds stay below (verified in tests).
        let mut lo = hi / 2;
        let mut hi = hi;
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if self.half_width(mid, n_max) < target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(delta: f64, k: usize) -> EpsilonSchedule {
        EpsilonSchedule::new(1.0, delta, k)
    }

    #[test]
    fn first_round_is_finite_and_positive() {
        let s = sched(0.05, 10);
        let e = s.half_width(1, 1_000_000);
        assert!(e.is_finite() && e > 0.0, "epsilon at m=1 was {e}");
    }

    #[test]
    fn monotone_non_increasing_from_round_two() {
        let s = sched(0.05, 10);
        let mut prev = s.half_width(2, 1_000_000);
        for m in 3..5000 {
            let e = s.half_width(m, 1_000_000);
            assert!(
                e <= prev + 1e-12,
                "epsilon increased at m={m}: {prev} -> {e}"
            );
            prev = e;
        }
    }

    #[test]
    fn delta_term_value() {
        // ln(pi^2 * 10 / (3 * 0.05)) = ln(657.97...) ≈ 6.489.
        let s = sched(0.05, 10);
        let expect = (std::f64::consts::PI.powi(2) * 10.0 / 0.15).ln();
        assert!((s.delta_term() - expect).abs() < 1e-12);
    }

    #[test]
    fn loglog_clamped_small_m() {
        let s = sched(0.05, 10);
        assert_eq!(s.loglog_term(1), 0.0);
        assert_eq!(s.loglog_term(2), 0.0, "ln 2 < 1 so clamp applies");
        assert!(s.loglog_term(100) > 0.0);
    }

    #[test]
    fn loglog_with_kappa_above_one() {
        let s =
            EpsilonSchedule::with_options(1.0, 0.05, 10, 2.0, SamplingMode::WithReplacement, 1.0);
        // log_2(1024) = 10, ln(10) ≈ 2.3026.
        assert!((s.loglog_term(1024) - 10.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn kappa_close_to_one_matches_kappa_one() {
        // The paper's footnote: κ = 1.01 gives very similar results to κ = 1.
        let s1 = EpsilonSchedule::new(1.0, 0.05, 10);
        let s101 = EpsilonSchedule::with_options(
            1.0,
            0.05,
            10,
            1.01,
            SamplingMode::WithoutReplacement,
            1.0,
        );
        // log_{1.01} m ≈ 100·ln m inflates the (non-dominant) iterated-log
        // term; the widths stay within a factor ~1.5, matching the paper's
        // observation that κ = 1 vs κ ≈ 1 give very similar behaviour.
        for &m in &[100u64, 10_000, 1_000_000] {
            let a = s1.half_width(m, u64::MAX / 2);
            let b = s101.half_width(m, u64::MAX / 2);
            let ratio = b / a;
            assert!(
                (0.6..=1.6).contains(&ratio),
                "m={m}: kappa 1 vs 1.01 diverged: {a} vs {b}"
            );
        }
    }

    #[test]
    fn without_replacement_never_wider_than_with() {
        let wo = EpsilonSchedule::new(1.0, 0.05, 10);
        let wi =
            EpsilonSchedule::with_options(1.0, 0.05, 10, 1.0, SamplingMode::WithReplacement, 1.0);
        for &m in &[1u64, 10, 100, 999] {
            assert!(wo.half_width(m, 1000) <= wi.half_width(m, 1000) + 1e-12);
        }
    }

    #[test]
    fn exhaustion_collapses_width() {
        let s = sched(0.05, 4);
        let e = s.half_width(2000, 1000);
        assert_eq!(e, 0.0, "past-exhaustion width should clamp to zero");
    }

    #[test]
    fn heuristic_factor_divides_width() {
        let s1 = sched(0.05, 10);
        let s4 = EpsilonSchedule::with_options(
            1.0,
            0.05,
            10,
            1.0,
            SamplingMode::WithoutReplacement,
            4.0,
        );
        let (a, b) = (s1.half_width(100, 1 << 30), s4.half_width(100, 1 << 30));
        assert!((a / b - 4.0).abs() < 1e-9);
    }

    #[test]
    fn more_groups_widen_intervals() {
        // Union bound across more groups demands more confidence per group.
        let s10 = sched(0.05, 10);
        let s50 = sched(0.05, 50);
        assert!(s50.half_width(100, 1 << 30) > s10.half_width(100, 1 << 30));
    }

    #[test]
    fn smaller_delta_widens_intervals() {
        let loose = sched(0.2, 10);
        let tight = sched(0.01, 10);
        assert!(tight.half_width(100, 1 << 30) > loose.half_width(100, 1 << 30));
    }

    #[test]
    fn c_scales_width() {
        let s1 = EpsilonSchedule::new(1.0, 0.05, 10);
        let s100 = EpsilonSchedule::new(100.0, 0.05, 10);
        let (a, b) = (s1.half_width(64, 1 << 30), s100.half_width(64, 1 << 30));
        assert!((b / a - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rounds_to_reach_finds_threshold() {
        let s =
            EpsilonSchedule::with_options(1.0, 0.05, 10, 1.0, SamplingMode::WithReplacement, 1.0);
        let target = 0.01;
        let m = s
            .rounds_to_reach(target, u64::MAX, 1 << 40)
            .expect("reachable");
        assert!(s.half_width(m, u64::MAX) < target);
        assert!(s.half_width(m - 1, u64::MAX) >= target);
    }

    #[test]
    fn rounds_to_reach_respects_cap() {
        let s =
            EpsilonSchedule::with_options(1.0, 0.05, 10, 1.0, SamplingMode::WithReplacement, 1.0);
        assert_eq!(s.rounds_to_reach(1e-9, u64::MAX, 1000), None);
    }

    #[test]
    fn anytime_vs_fixed_m_width() {
        // The anytime schedule must be wider than the fixed-m Hoeffding
        // width at the same per-group confidence (it pays for uniformity
        // over all rounds).
        let k = 10usize;
        let delta = 0.05;
        let s =
            EpsilonSchedule::with_options(1.0, delta, k, 1.0, SamplingMode::WithReplacement, 1.0);
        for &m in &[10u64, 100, 10_000] {
            let anytime = s.half_width(m, u64::MAX);
            let fixed = crate::hoeffding::hoeffding_half_width(m, delta / k as f64, 1.0);
            assert!(
                anytime >= fixed,
                "m={m}: anytime width {anytime} below fixed-m width {fixed}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "heuristic")]
    fn rejects_widening_heuristic() {
        let _ = EpsilonSchedule::with_options(
            1.0,
            0.05,
            10,
            1.0,
            SamplingMode::WithoutReplacement,
            0.5,
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn width_finite_nonnegative(
            m in 1u64..10_000_000,
            n in 1u64..10_000_000_000,
            delta in 0.0001f64..0.999,
            k in 1usize..200,
            c in 0.001f64..10_000.0,
        ) {
            let s = EpsilonSchedule::new(c, delta, k);
            let e = s.half_width(m, n);
            prop_assert!(e.is_finite());
            prop_assert!(e >= 0.0);
        }

        #[test]
        fn monotone_in_m_beyond_two(
            m in 2u64..1_000_000,
            delta in 0.001f64..0.5,
            k in 1usize..100,
        ) {
            let s = EpsilonSchedule::with_options(
                1.0, delta, k, 1.0, SamplingMode::WithReplacement, 1.0,
            );
            prop_assert!(s.half_width(m + 1, u64::MAX) <= s.half_width(m, u64::MAX) + 1e-15);
        }

        /// Anytime empirical coverage: the running mean stays inside ±ε_m for
        /// *every* prefix, with frequency at least 1 − δ (per group budget
        /// δ/k is what the schedule actually guarantees; we test the whole-
        /// run event with generous slack).
        #[test]
        fn anytime_coverage(seed in 0u64..20) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let delta = 0.1;
            let s = EpsilonSchedule::with_options(
                1.0, delta, 1, 1.0, SamplingMode::WithReplacement, 1.0,
            );
            let p = 0.5;
            let trials = 60;
            let horizon = 2_000u64;
            let mut violated = 0;
            for _ in 0..trials {
                let mut sum = 0.0;
                let mut bad = false;
                for m in 1..=horizon {
                    sum += f64::from(u8::from(rng.gen_bool(p)));
                    let mean = sum / m as f64;
                    if (mean - p).abs() > s.half_width(m, u64::MAX) {
                        bad = true;
                        break;
                    }
                }
                violated += u32::from(bad);
            }
            prop_assert!(
                f64::from(violated) <= 2.0 * delta * f64::from(trials),
                "anytime bound violated in {violated}/{trials} runs"
            );
        }
    }
}
