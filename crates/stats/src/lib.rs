//! # rapidviz-stats
//!
//! Statistical machinery underlying the rapidviz sampling algorithms:
//!
//! * [`interval`] — closed-interval arithmetic ([`interval::Interval`]) and
//!   overlap queries over collections of confidence intervals, the geometric
//!   primitive that drives every active-set decision in IFOCUS and friends.
//! * [`hoeffding`] — the classical Chernoff–Hoeffding bound for sampling
//!   *with* replacement: deviation probabilities, half-widths, and inverse
//!   sample-size calculations (used by IREFINE's `EstimateMean`).
//! * [`serfling`] — the Hoeffding–Serfling inequality (Serfling 1974) for
//!   sampling *without* replacement, with the maximal-sequence form used in
//!   the paper's Lemma 2.
//! * [`schedule`] — the anytime (iterated-logarithm) ε-schedule of
//!   Algorithm 1 line 6: a confidence-interval half-width that is
//!   simultaneously valid over *all* rounds `m`, with the paper's `κ` knob,
//!   with/without-replacement modes, and the heuristic shrink factor studied
//!   in Figures 5a/5b.
//! * [`estimators`] — numerically careful running estimators: running mean
//!   (the `ν_i` update of Algorithm 1 line 9), Welford variance, extrema.
//!
//! All bounds here treat values in a bounded range `[0, c]`; the algorithms
//! pass `c` explicitly (the paper's boundedness assumption, §2.1).
//!
//! The crate is dependency-free; `unsafe` is denied workspace-wide
//! (see `[workspace.lints]` and the rapidviz-lint unsafe budget).

pub mod bernstein;
pub mod estimators;
pub mod hoeffding;
pub mod interval;
pub mod schedule;
pub mod serfling;

pub use bernstein::{empirical_bernstein_half_width, BernsteinSchedule};
pub use estimators::{Extrema, RunningMean, WelfordVariance};
pub use hoeffding::{hoeffding_deviation_probability, hoeffding_half_width, hoeffding_sample_size};
pub use interval::{Interval, IntervalSet, IntervalSetScratch};
pub use schedule::{EpsilonSchedule, SamplingMode};
pub use serfling::{serfling_half_width, serfling_sampling_fraction_factor};
