//! Numerically careful running estimators.
//!
//! [`RunningMean`] implements the incremental update of Algorithm 1 line 9,
//! `ν ← (m−1)/m·ν + x/m`, in the standard numerically stable form
//! `ν ← ν + (x − ν)/m`. [`WelfordVariance`] extends it with Welford's
//! single-pass variance (used by diagnostics and the data-difficulty
//! reports), and [`Extrema`] tracks the observed range, which lets callers
//! sanity-check the `[0, c]` boundedness assumption at run time.

/// Incrementally maintained sample mean.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    count: u64,
    mean: f64,
}

impl RunningMean {
    /// An empty estimator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds an estimator from previously captured
    /// ([`count`](RunningMean::count), [`mean`](RunningMean::mean)) parts —
    /// the checkpoint/restore hook. The restored estimator is bit-identical
    /// to the one the parts were read from, so subsequent pushes continue
    /// the exact same float stream.
    #[must_use]
    pub fn from_parts(count: u64, mean: f64) -> Self {
        Self { count, mean }
    }

    /// Incorporates one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.mean += (x - self.mean) / self.count as f64;
    }

    /// Incorporates a whole batch of observations — the hook the batched
    /// draw pipeline feeds (one call per round instead of one per sample).
    /// Bit-identical to pushing each element in order, so batching can
    /// never change an estimate.
    pub fn push_batch(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Incorporates a batch of `(x, z)` draw/size-estimate pairs as the
    /// products `x·z` — the hook the unknown-group-size `SUM` path
    /// (Algorithm 5) feeds from its batched size-estimating draws.
    /// Bit-identical to pushing each product in order.
    pub fn push_products(&mut self, pairs: &[(f64, f64)]) {
        for &(x, z) in pairs {
            self.push(x * z);
        }
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean; `0.0` before any observation (matching an estimate
    /// initialized to the empty sum).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Whether any observation has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merges another running mean into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningMean) {
        if other.count == 0 {
            return;
        }
        let total = self.count + other.count;
        let w = other.count as f64 / total as f64;
        self.mean += (other.mean - self.mean) * w;
        self.count = total;
    }
}

/// Welford's single-pass mean/variance estimator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WelfordVariance {
    count: u64,
    mean: f64,
    m2: f64,
}

impl WelfordVariance {
    /// An empty estimator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Incorporates one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (`M2/n`); `None` with no observations.
    #[must_use]
    pub fn population_variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Sample variance (`M2/(n−1)`); `None` with fewer than two observations.
    #[must_use]
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sample_std(&self) -> Option<f64> {
        self.sample_variance().map(f64::sqrt)
    }

    /// Merges another estimator (Chan et al. parallel combination).
    pub fn merge(&mut self, other: &WelfordVariance) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
    }
}

/// Running minimum/maximum tracker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extrema {
    min: f64,
    max: f64,
    count: u64,
}

impl Default for Extrema {
    fn default() -> Self {
        Self {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
        }
    }
}

impl Extrema {
    /// An empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Incorporates one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Observed minimum; `None` before any observation.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Observed maximum; `None` before any observation.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Observed range width; `None` before any observation.
    #[must_use]
    pub fn range(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max - self.min)
    }

    /// Whether all observations so far lie within `[0, c]`.
    #[must_use]
    pub fn within_bound(&self, c: f64) -> bool {
        self.count == 0 || (self.min >= 0.0 && self.max <= c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_exact_small() {
        let mut rm = RunningMean::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            rm.push(x);
        }
        assert_eq!(rm.count(), 4);
        assert!((rm.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn running_mean_empty() {
        let rm = RunningMean::new();
        assert!(rm.is_empty());
        assert_eq!(rm.mean(), 0.0);
    }

    #[test]
    fn running_mean_merge_matches_pooled() {
        let mut a = RunningMean::new();
        let mut b = RunningMean::new();
        for x in [1.0, 5.0, 9.0] {
            a.push(x);
        }
        for x in [2.0, 4.0] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert!((a.mean() - 4.2).abs() < 1e-12);
    }

    #[test]
    fn push_batch_bit_identical_to_singles() {
        let xs: Vec<f64> = (0..57)
            .map(|i| (f64::from(i)).sin() * 40.0 + 50.0)
            .collect();
        let mut singles = RunningMean::new();
        for &x in &xs {
            singles.push(x);
        }
        let mut batched = RunningMean::new();
        batched.push_batch(&xs[..20]);
        batched.push_batch(&xs[20..]);
        assert_eq!(batched, singles, "batching must not change the estimate");
    }

    #[test]
    fn push_products_bit_identical_to_singles() {
        let pairs: Vec<(f64, f64)> = (0..31)
            .map(|i| (f64::from(i) * 3.0, f64::from(i % 2)))
            .collect();
        let mut singles = RunningMean::new();
        for &(x, z) in &pairs {
            singles.push(x * z);
        }
        let mut batched = RunningMean::new();
        batched.push_products(&pairs);
        assert_eq!(batched, singles);
    }

    #[test]
    fn running_mean_from_parts_roundtrips_bit_exact() {
        let mut rm = RunningMean::new();
        for x in [3.5, -2.0, 17.25, 0.1] {
            rm.push(x);
        }
        let mut restored = RunningMean::from_parts(rm.count(), rm.mean());
        assert_eq!(restored, rm);
        restored.push(9.75);
        rm.push(9.75);
        assert_eq!(restored.mean().to_bits(), rm.mean().to_bits());
    }

    #[test]
    fn running_mean_merge_empty_is_noop() {
        let mut a = RunningMean::new();
        a.push(7.0);
        let before = a;
        a.merge(&RunningMean::new());
        assert_eq!(a, before);
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = WelfordVariance::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.population_variance().unwrap() - var).abs() < 1e-12);
        assert!(
            (w.sample_variance().unwrap() - var * xs.len() as f64 / (xs.len() - 1) as f64).abs()
                < 1e-12
        );
    }

    #[test]
    fn welford_degenerate_counts() {
        let mut w = WelfordVariance::new();
        assert_eq!(w.population_variance(), None);
        w.push(3.0);
        assert_eq!(w.population_variance(), Some(0.0));
        assert_eq!(w.sample_variance(), None);
    }

    #[test]
    fn welford_merge_matches_pooled() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = WelfordVariance::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = WelfordVariance::new();
        let mut right = WelfordVariance::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!(
            (left.population_variance().unwrap() - whole.population_variance().unwrap()).abs()
                < 1e-9
        );
    }

    #[test]
    fn extrema_basic() {
        let mut e = Extrema::new();
        assert_eq!(e.min(), None);
        assert!(e.within_bound(1.0), "vacuous before observations");
        for x in [3.0, -1.0, 7.0, 0.5] {
            e.push(x);
        }
        assert_eq!(e.min(), Some(-1.0));
        assert_eq!(e.max(), Some(7.0));
        assert_eq!(e.range(), Some(8.0));
        assert!(!e.within_bound(10.0), "negative value violates [0, c]");
    }

    #[test]
    fn extrema_within_bound() {
        let mut e = Extrema::new();
        for x in [0.0, 50.0, 100.0] {
            e.push(x);
        }
        assert!(e.within_bound(100.0));
        assert!(!e.within_bound(99.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn running_mean_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut rm = RunningMean::new();
            for &x in &xs {
                rm.push(x);
            }
            let naive = xs.iter().sum::<f64>() / xs.len() as f64;
            prop_assert!((rm.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
        }

        #[test]
        fn merge_equals_sequential(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
            split in 0usize..100,
        ) {
            let split = split.min(xs.len());
            let mut seq = WelfordVariance::new();
            for &x in &xs {
                seq.push(x);
            }
            let mut a = WelfordVariance::new();
            let mut b = WelfordVariance::new();
            for &x in &xs[..split] {
                a.push(x);
            }
            for &x in &xs[split..] {
                b.push(x);
            }
            a.merge(&b);
            prop_assert!((a.mean() - seq.mean()).abs() < 1e-7);
            prop_assert!(
                (a.population_variance().unwrap() - seq.population_variance().unwrap()).abs()
                    < 1e-6
            );
        }

        #[test]
        fn extrema_bounds_every_observation(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
        ) {
            let mut e = Extrema::new();
            for &x in &xs {
                e.push(x);
            }
            let (min, max) = (e.min().unwrap(), e.max().unwrap());
            for &x in &xs {
                prop_assert!(min <= x && x <= max);
            }
        }
    }
}
