//! Empirical Bernstein bounds — a variance-adaptive alternative schedule.
//!
//! The paper's remarks (§3.6, "Theory Remarks") note that all bounds
//! obtained via Bernstein's elementary inequality extend to maxima, which
//! invites a variance-adaptive variant of IFOCUS: Hoeffding charges the
//! worst case `c²/4` variance, while the *empirical Bernstein* inequality
//! (Audibert, Munos & Szepesvári 2009; Maurer & Pontil 2009) pays only for
//! the **observed** sample variance `V̂_m`:
//!
//! ```text
//! Pr[ |X̄_m − µ| ≥ √(2·V̂_m·ln(3/δ)/m) + 3·c·ln(3/δ)/m ] ≤ δ.
//! ```
//!
//! For low-variance groups (e.g. the `truncnorm` family with σ ≪ c) this
//! is dramatically tighter than Hoeffding once `m` is moderate, so an
//! IFOCUS configured with a Bernstein schedule deactivates low-variance
//! groups much sooner. The anytime extension uses the same geometric-epoch
//! union bound as [`crate::schedule::EpsilonSchedule`] (Theorem 3.2's
//! argument is agnostic to which fixed-`m` bound it stretches), spending
//! `δ_m = δ·6/(π²·(log₂ m + 1)²)` on epoch `⌈log₂ m⌉`.
//!
//! This is an *extension*, off by default; the ablation benches compare it
//! against the paper's Hoeffding-based schedule.

/// Fixed-`m` empirical Bernstein half-width at confidence `1 − δ` for
/// values in `[0, c]` with observed sample variance `variance`.
///
/// # Panics
///
/// Panics if `m == 0`, `c <= 0`, `variance < 0`, or `δ ∉ (0, 1)`.
#[must_use]
pub fn empirical_bernstein_half_width(m: u64, variance: f64, delta: f64, c: f64) -> f64 {
    assert!(m > 0, "need at least one sample");
    assert!(c > 0.0, "range c must be positive");
    assert!(variance >= 0.0, "variance must be non-negative");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
    let log_term = (3.0 / delta).ln();
    let mf = m as f64;
    (2.0 * variance * log_term / mf).sqrt() + 3.0 * c * log_term / mf
}

/// Anytime empirical Bernstein schedule: valid simultaneously for all
/// rounds `m ≥ 1` with total failure probability `δ`, by spending
/// `δ·6/(π²·e²)` on epoch `e = ⌊log₂ m⌋ + 1`.
#[derive(Debug, Clone)]
pub struct BernsteinSchedule {
    c: f64,
    delta: f64,
    k: usize,
}

impl BernsteinSchedule {
    /// Creates the schedule for `k` groups of values in `[0, c]` with
    /// overall failure probability `δ`.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`, `δ ∉ (0, 1)`, or `k == 0`.
    #[must_use]
    pub fn new(c: f64, delta: f64, k: usize) -> Self {
        assert!(c > 0.0, "range c must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
        assert!(k > 0, "need at least one group");
        Self { c, delta, k }
    }

    /// The per-round confidence budget at round `m` (per group, after the
    /// union bound over groups and epochs).
    fn round_delta(&self, m: u64) -> f64 {
        let epoch = 64 - m.max(1).leading_zeros(); // ⌊log2 m⌋ + 1, m >= 1
        let epoch = f64::from(epoch.max(1));
        self.delta * 6.0 / (std::f64::consts::PI.powi(2) * epoch * epoch * self.k as f64)
    }

    /// ε at round `m` given the group's observed sample variance.
    #[must_use]
    pub fn half_width(&self, m: u64, variance: f64) -> f64 {
        empirical_bernstein_half_width(m, variance, self.round_delta(m), self.c)
    }

    /// The Hoeffding-equivalent width (worst-case variance `c²/4`) at the
    /// same budget — for comparing how much the observed variance saves.
    #[must_use]
    pub fn worst_case_half_width(&self, m: u64) -> f64 {
        self.half_width(m, self.c * self.c / 4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hoeffding::hoeffding_half_width;

    #[test]
    fn low_variance_beats_hoeffding() {
        // σ = 2 on a [0, 100] range: Bernstein should crush Hoeffding once
        // m is moderate.
        let c = 100.0;
        let delta = 0.005;
        let m = 10_000;
        let bern = empirical_bernstein_half_width(m, 4.0, delta, c);
        let hoef = hoeffding_half_width(m, delta, c);
        assert!(
            bern < hoef / 5.0,
            "bernstein {bern} should be far below hoeffding {hoef}"
        );
    }

    #[test]
    fn worst_case_variance_comparable_to_hoeffding() {
        // With variance = c²/4, Bernstein ≈ √2·Hoeffding + O(1/m): same
        // order, slightly worse constants.
        let c = 1.0;
        let delta = 0.01;
        let m = 100_000;
        let bern = empirical_bernstein_half_width(m, 0.25, delta, c);
        let hoef = hoeffding_half_width(m, delta, c);
        assert!(bern > hoef, "bernstein pays extra constants");
        assert!(bern < 3.0 * hoef, "but stays the same order");
    }

    #[test]
    fn width_decreases_in_m() {
        let mut prev = f64::INFINITY;
        for m in [1u64, 10, 100, 1000, 10_000] {
            let w = empirical_bernstein_half_width(m, 1.0, 0.05, 10.0);
            assert!(w < prev);
            prev = w;
        }
    }

    #[test]
    fn zero_variance_leaves_only_range_term() {
        let w = empirical_bernstein_half_width(1000, 0.0, 0.05, 10.0);
        let expected = 3.0 * 10.0 * (3.0f64 / 0.05).ln() / 1000.0;
        assert!((w - expected).abs() < 1e-12);
    }

    #[test]
    fn schedule_epochs_widen_with_m_slowly() {
        let s = BernsteinSchedule::new(100.0, 0.05, 10);
        // Budget shrinks ~1/log² m: widths at adjacent epochs stay close.
        let a = s.half_width(1000, 25.0);
        let b = s.half_width(2000, 25.0);
        assert!(b < a, "more samples must narrow the interval");
        let far = s.half_width(1 << 30, 25.0);
        assert!(far < a / 10.0);
    }

    #[test]
    fn schedule_anytime_coverage() {
        use rand::{Rng, SeedableRng};
        // Empirical anytime coverage on a low-variance stream.
        let delta = 0.1;
        let s = BernsteinSchedule::new(1.0, delta, 1);
        let mut violations = 0u32;
        let trials: u32 = 40;
        for seed in 0..u64::from(trials) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let p: f64 = 0.5;
            let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
            let mut bad = false;
            for m in 1..=3000u64 {
                let x = 0.45 + 0.1 * rng.gen_range(0.0..1.0) * f64::from(u8::from(rng.gen_bool(p)));
                sum += x;
                sumsq += x * x;
                let mean = sum / m as f64;
                let var = (sumsq / m as f64 - mean * mean).max(0.0);
                // True mean of the stream: 0.45 + 0.1*E[U]*E[B] = 0.475.
                if (mean - 0.475).abs() > s.half_width(m, var) {
                    bad = true;
                    break;
                }
            }
            violations += u32::from(bad);
        }
        assert!(
            f64::from(violations) <= 2.0 * delta * f64::from(trials),
            "anytime Bernstein violated in {violations}/{trials} runs"
        );
    }

    #[test]
    fn worst_case_accessor() {
        let s = BernsteinSchedule::new(10.0, 0.05, 4);
        assert!((s.worst_case_half_width(100) - s.half_width(100, 25.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "variance")]
    fn rejects_negative_variance() {
        let _ = empirical_bernstein_half_width(10, -1.0, 0.05, 1.0);
    }
}
