//! Multi-query scheduler semantics: the determinism invariant (scheduling
//! must not perturb any session's results) under all three policies,
//! policy-specific ordering behavior, global sample budgets, per-session
//! deadline enforcement, memory accounting/eviction, and event tagging.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rapidviz::needletail::{ColumnDef, DataType, NeedleTail, Schema, TableBuilder, Value};
use rapidviz::{
    AlgorithmChoice, MultiQueryScheduler, QueryAnswer, QueryId, RunOutcome, SchedulePolicy,
    SchedulerEvent, StepOutcome, VizQuery,
};
use std::time::{Duration, Instant};

/// A 30k-row, 3-airline table with well-separated means (queries converge).
fn engine() -> NeedleTail {
    let mut b = TableBuilder::new(Schema::new(vec![
        ColumnDef::new("name", DataType::Str),
        ColumnDef::new("delay", DataType::Float),
    ]));
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..30_000 {
        let (name, mu) = [("AA", 60.0), ("JB", 20.0), ("UA", 85.0)][rng.gen_range(0..3)];
        let delay = if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 };
        b.push_row(vec![name.into(), Value::Float(delay)]);
    }
    NeedleTail::new(b.finish(), &["name"]).unwrap()
}

/// `k` groups with nearly tied means: runs last for thousands of rounds,
/// so budgets and weighting can be observed before anything certifies.
fn near_tie_engine(k: usize, seed: u64) -> NeedleTail {
    let mut b = TableBuilder::new(Schema::new(vec![
        ColumnDef::new("name", DataType::Str),
        ColumnDef::new("delay", DataType::Float),
    ]));
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..20_000 {
        let g = rng.gen_range(0..k);
        let mu = 50.0 + 0.2 * (g as f64 - (k as f64 - 1.0) / 2.0);
        let delay = if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 };
        b.push_row(vec![format!("tie{g}").into(), Value::Float(delay)]);
    }
    NeedleTail::new(b.finish(), &["name"]).unwrap()
}

/// Drives one session to its terminal outcome standalone — the reference
/// side of the determinism invariant.
fn run_standalone(query: &VizQuery<'_>, seed: u64) -> QueryAnswer {
    let mut session = query.start(StdRng::seed_from_u64(seed)).unwrap();
    while session.step().outcome.is_running() {}
    session.finish()
}

/// Byte-identical comparison: bit-for-bit estimates, exact sample counts,
/// rounds, truncation, and terminal outcome.
fn assert_same_answer(scheduled: &QueryAnswer, standalone: &QueryAnswer, what: &str) {
    assert_eq!(
        scheduled.result.labels, standalone.result.labels,
        "{what}: labels"
    );
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(
        bits(&scheduled.result.estimates),
        bits(&standalone.result.estimates),
        "{what}: estimates must be byte-identical"
    );
    assert_eq!(
        scheduled.result.samples_per_group, standalone.result.samples_per_group,
        "{what}: samples_per_group"
    );
    assert_eq!(
        scheduled.result.rounds, standalone.result.rounds,
        "{what}: rounds"
    );
    assert_eq!(
        scheduled.result.truncated, standalone.result.truncated,
        "{what}: truncated"
    );
    assert_eq!(scheduled.outcome, standalone.outcome, "{what}: outcome");
}

const SUITE_SEEDS: [u64; 7] = [11, 12, 13, 14, 15, 16, 17];

/// A heterogeneous query suite: every aggregate, every AVG algorithm, one
/// deadline-bearing session (far-future, never trips), and one near-tie
/// session that exhausts its own sample budget.
fn build_suite<'a>(engine: &'a NeedleTail, near: &'a NeedleTail) -> Vec<VizQuery<'a>> {
    vec![
        VizQuery::new(engine)
            .group_by("name")
            .avg("delay")
            .bound(100.0),
        VizQuery::new(engine)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .algorithm(AlgorithmChoice::IRefine)
            .deadline(Instant::now() + Duration::from_secs(3600)),
        VizQuery::new(engine)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .algorithm(AlgorithmChoice::RoundRobin),
        VizQuery::new(engine)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .algorithm(AlgorithmChoice::ExactScan),
        VizQuery::new(engine)
            .group_by("name")
            .sum("delay")
            .bound(100.0),
        VizQuery::new(engine)
            .group_by("name")
            .count("delay")
            .resolution_pct(2.0),
        VizQuery::new(near)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .max_samples(700),
    ]
}

/// The determinism invariant for one policy: every session's answer from a
/// scheduled run is byte-identical to running it alone with the same seed.
fn assert_policy_matches_standalone(policy: SchedulePolicy) {
    let engine = engine();
    let near = near_tie_engine(2, 6);
    let suite = build_suite(&engine, &near);
    let standalone: Vec<QueryAnswer> = suite
        .iter()
        .zip(SUITE_SEEDS)
        .map(|(q, seed)| run_standalone(q, seed))
        .collect();
    let mut sched = MultiQueryScheduler::new(policy);
    let ids: Vec<QueryId> = suite
        .iter()
        .zip(SUITE_SEEDS)
        .map(|(q, seed)| sched.admit(q.start(StdRng::seed_from_u64(seed)).unwrap()))
        .collect();
    assert_eq!(sched.run(|_| {}), RunOutcome::Drained);
    let answers = sched.finish_all();
    assert_eq!(answers.len(), suite.len());
    for (i, ((id, scheduled), reference)) in answers.iter().zip(&standalone).enumerate() {
        assert_eq!(*id, ids[i], "answers come back in admission order");
        assert_same_answer(scheduled, reference, &format!("{policy:?} query {i}"));
    }
}

#[test]
fn fair_share_is_byte_identical_to_standalone_runs() {
    assert_policy_matches_standalone(SchedulePolicy::FairShare);
}

#[test]
fn deadline_aware_is_byte_identical_to_standalone_runs() {
    assert_policy_matches_standalone(SchedulePolicy::DeadlineAware);
}

#[test]
fn greedy_convergence_is_byte_identical_to_standalone_runs() {
    assert_policy_matches_standalone(SchedulePolicy::GreedyConvergence);
}

#[test]
fn fair_share_weights_quanta_by_active_groups() {
    // Two near-tie sessions that will not certify anything for thousands
    // of rounds: one with 4 active groups, one with 2. Smooth weighted
    // round-robin must hand out quanta in exact 4:2 proportion.
    let wide = near_tie_engine(4, 21);
    let narrow = near_tie_engine(2, 22);
    let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare);
    let wide_id = sched.admit(
        VizQuery::new(&wide)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .start(StdRng::seed_from_u64(31))
            .unwrap(),
    );
    let narrow_id = sched.admit(
        VizQuery::new(&narrow)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .start(StdRng::seed_from_u64(32))
            .unwrap(),
    );
    let mut wide_quanta = 0u64;
    let mut narrow_quanta = 0u64;
    for _ in 0..90 {
        match sched.poll() {
            SchedulerEvent::Round { id, update } => {
                assert!(update.outcome.is_running(), "near-tie resolved too fast");
                if id == wide_id {
                    wide_quanta += 1;
                } else {
                    assert_eq!(id, narrow_id);
                    narrow_quanta += 1;
                }
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert_eq!(
        (wide_quanta, narrow_quanta),
        (60, 30),
        "4-active-group session must receive exactly twice the quanta"
    );
}

#[test]
fn deadline_policy_runs_earliest_deadline_exclusively_first() {
    let engine = engine();
    let mut sched = MultiQueryScheduler::new(SchedulePolicy::DeadlineAware);
    // Admitted late-deadline first, to prove ordering is by deadline, not
    // admission.
    let late = sched.admit(
        VizQuery::new(&engine)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .resolution_pct(1.0)
            .deadline(Instant::now() + Duration::from_secs(7200))
            .start(StdRng::seed_from_u64(41))
            .unwrap(),
    );
    let early = sched.admit(
        VizQuery::new(&engine)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .resolution_pct(1.0)
            .deadline(Instant::now() + Duration::from_secs(3600))
            .start(StdRng::seed_from_u64(42))
            .unwrap(),
    );
    let mut order = Vec::new();
    sched.run(|event| {
        if let SchedulerEvent::Round { id, .. } = event {
            order.push(*id);
        }
    });
    let first_late = order.iter().position(|&id| id == late).unwrap();
    // Every quantum before the late session's first is the early one's,
    // and the early session is terminal by then.
    assert!(first_late > 0, "early session must run first");
    assert!(order[..first_late].iter().all(|&id| id == early));
    assert!(!order[first_late..].contains(&early));
}

#[test]
fn deadline_less_sessions_yield_to_deadline_bearing_ones() {
    let engine = engine();
    let mut sched = MultiQueryScheduler::new(SchedulePolicy::DeadlineAware);
    let patient = sched.admit(
        VizQuery::new(&engine)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .start(StdRng::seed_from_u64(43))
            .unwrap(),
    );
    let urgent = sched.admit(
        VizQuery::new(&engine)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .deadline(Instant::now() + Duration::from_secs(3600))
            .start(StdRng::seed_from_u64(44))
            .unwrap(),
    );
    match sched.poll() {
        SchedulerEvent::Round { id, .. } => {
            assert_eq!(id, urgent, "deadline-bearing session runs first");
        }
        other => panic!("unexpected event {other:?}"),
    }
    assert_eq!(sched.run(|_| {}), RunOutcome::Drained);
    assert!(sched.stats(patient).unwrap().steps > 0, "patient still ran");
}

#[test]
fn past_deadline_session_is_stopped_within_one_round() {
    let engine = engine();
    let mut sched = MultiQueryScheduler::new(SchedulePolicy::DeadlineAware);
    let expired = sched.admit(
        VizQuery::new(&engine)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .deadline(Instant::now() - Duration::from_millis(1))
            .start(StdRng::seed_from_u64(51))
            .unwrap(),
    );
    let healthy = sched.admit(
        VizQuery::new(&engine)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .resolution_pct(1.0)
            .start(StdRng::seed_from_u64(52))
            .unwrap(),
    );
    assert_eq!(sched.run(|_| {}), RunOutcome::Drained);
    let stats = sched.stats(expired).unwrap();
    // The session's own deadline check fires before its first scheduled
    // round: only the bootstrap draws (one per group) ever happened.
    assert_eq!(stats.outcome, StepOutcome::BudgetExhausted);
    assert_eq!(stats.steps, 1, "one quantum delivers the terminal outcome");
    assert_eq!(stats.total_samples, 3, "bootstrap only — no round ran");
    assert_eq!(
        sched.stats(healthy).unwrap().outcome,
        StepOutcome::Converged
    );
}

#[test]
fn global_sample_budget_stops_all_sessions_within_one_round() {
    let near_a = near_tie_engine(2, 61);
    let near_b = near_tie_engine(2, 62);
    let mut sched =
        MultiQueryScheduler::new(SchedulePolicy::FairShare).with_global_sample_budget(600);
    for (eng, seed) in [(&near_a, 63u64), (&near_b, 64u64)] {
        sched.admit(
            VizQuery::new(eng)
                .group_by("name")
                .avg("delay")
                .bound(100.0)
                .start(StdRng::seed_from_u64(seed))
                .unwrap(),
        );
    }
    assert_eq!(sched.run(|_| {}), RunOutcome::GlobalBudgetExhausted);
    assert!(sched.global_budget_exhausted());
    let total = sched.total_samples();
    // Checked before every quantum: overshoot is at most one round's
    // draws (2 active groups × 1 sample here).
    assert!(total >= 600, "stopped early: {total}");
    assert!(total < 600 + 8, "overshot the global budget: {total}");
    // Once exhausted the scheduler stays quiescent, and keeps saying WHY:
    // runnable sessions remain, so polls report the exhausted budget
    // rather than pretending the work drained.
    assert!(matches!(
        sched.poll(),
        SchedulerEvent::GlobalBudgetExhausted { .. }
    ));
    assert_eq!(sched.total_samples(), total);
    // A session admitted after exhaustion is never scheduled — and the
    // caller is told the budget (not convergence) is the reason.
    let late = sched.admit(
        VizQuery::new(&near_a)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .start(StdRng::seed_from_u64(65))
            .unwrap(),
    );
    assert_eq!(sched.run(|_| {}), RunOutcome::GlobalBudgetExhausted);
    assert_eq!(sched.stats(late).unwrap().steps, 0);
    // Finishing a session out must NOT refund its draws to the budget:
    // the lifetime total is unchanged (`late`'s bootstrap draws included)
    // and the scheduler stays exhausted.
    let lifetime = sched.total_samples();
    let first = sched.ids()[0];
    let _ = sched.finish(first).expect("held");
    assert_eq!(sched.total_samples(), lifetime);
    assert_eq!(sched.run(|_| {}), RunOutcome::GlobalBudgetExhausted);
    // ...and every session still yields a usable best-effort answer.
    for (_, answer) in sched.finish_all() {
        assert!(!answer.converged());
        assert_eq!(answer.result.labels.len(), 2);
        assert!(answer.result.estimates.iter().all(|e| e.is_finite()));
    }
}

#[test]
fn terminal_sessions_are_never_rescheduled() {
    let engine = engine();
    let near = near_tie_engine(2, 71);
    let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare);
    let quick = sched.admit(
        VizQuery::new(&engine)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .resolution_pct(1.0)
            .start(StdRng::seed_from_u64(72))
            .unwrap(),
    );
    let slow = sched.admit(
        VizQuery::new(&near)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .max_samples(800)
            .start(StdRng::seed_from_u64(73))
            .unwrap(),
    );
    let mut events = Vec::new();
    assert_eq!(
        sched.run(|event| {
            if let SchedulerEvent::Round { id, update } = event {
                events.push((*id, update.outcome));
            }
        }),
        RunOutcome::Drained
    );
    let quick_terminal = events
        .iter()
        .position(|&(id, outcome)| id == quick && !outcome.is_running())
        .expect("quick session must terminate");
    assert!(
        events[quick_terminal + 1..]
            .iter()
            .all(|&(id, _)| id == slow),
        "terminal session received further quanta"
    );
    assert_eq!(sched.stats(quick).unwrap().outcome, StepOutcome::Converged);
    assert_eq!(
        sched.stats(slow).unwrap().outcome,
        StepOutcome::BudgetExhausted
    );
}

#[test]
fn events_are_tagged_and_rounds_monotone_per_session() {
    let engine = engine();
    let suite_seeds = [81u64, 82, 83];
    let mut sched = MultiQueryScheduler::new(SchedulePolicy::GreedyConvergence);
    let mut ids = Vec::new();
    for (i, seed) in suite_seeds.iter().enumerate() {
        let q = VizQuery::new(&engine).group_by("name").bound(100.0);
        let q = if i == 1 {
            q.sum("delay")
        } else {
            q.avg("delay")
        };
        ids.push(sched.admit(q.start(StdRng::seed_from_u64(*seed)).unwrap()));
    }
    let mut per_session_rounds: Vec<Vec<u64>> = vec![Vec::new(); ids.len()];
    sched.run(|event| {
        if let SchedulerEvent::Round { id, update } = event {
            let idx = ids.iter().position(|i| i == id).expect("unknown tag");
            per_session_rounds[idx].push(update.round);
        }
    });
    for (idx, rounds) in per_session_rounds.iter().enumerate() {
        assert!(!rounds.is_empty(), "session {idx} got no quanta");
        assert!(
            rounds.windows(2).all(|w| w[0] < w[1]),
            "session {idx}: rounds must advance strictly within its own stream"
        );
    }
}

#[test]
fn memory_accounting_tracks_current_and_peak_bytes() {
    let narrow = near_tie_engine(2, 91);
    let wide = near_tie_engine(4, 92);
    let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare);
    let narrow_id = sched.admit(
        VizQuery::new(&narrow)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .max_samples(300)
            .start(StdRng::seed_from_u64(93))
            .unwrap(),
    );
    let wide_id = sched.admit(
        VizQuery::new(&wide)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .max_samples(300)
            .start(StdRng::seed_from_u64(94))
            .unwrap(),
    );
    assert_eq!(sched.run(|_| {}), RunOutcome::Drained);
    let narrow_stats = sched.stats(narrow_id).unwrap().clone();
    let wide_stats = sched.stats(wide_id).unwrap().clone();
    for stats in [&narrow_stats, &wide_stats] {
        assert!(stats.approx_bytes > 0);
        assert!(stats.peak_bytes >= stats.approx_bytes);
        assert!(!stats.evicted);
    }
    assert!(
        wide_stats.peak_bytes > narrow_stats.peak_bytes,
        "4-group state ({}) must outweigh 2-group state ({})",
        wide_stats.peak_bytes,
        narrow_stats.peak_bytes
    );
}

#[test]
fn memory_cap_evicts_oversized_sessions_but_keeps_their_answers() {
    let near = near_tie_engine(2, 95);
    // A 1-byte cap: every session exceeds it after its first quantum.
    let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare).with_session_memory_cap(1);
    let id = sched.admit(
        VizQuery::new(&near)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .start(StdRng::seed_from_u64(96))
            .unwrap(),
    );
    let mut rounds = 0;
    let mut evictions = Vec::new();
    assert_eq!(
        sched.run(|event| match event {
            SchedulerEvent::Round { .. } => rounds += 1,
            SchedulerEvent::MemoryEvicted { id, bytes } => evictions.push((*id, *bytes)),
            _ => {}
        }),
        RunOutcome::Drained
    );
    assert_eq!(rounds, 1, "evicted after its first quantum");
    assert_eq!(evictions.len(), 1);
    assert_eq!(evictions[0].0, id);
    assert!(evictions[0].1 > 1);
    let stats = sched.stats(id).unwrap();
    assert!(stats.evicted);
    assert_eq!(
        stats.outcome,
        StepOutcome::Running,
        "not terminal — evicted"
    );
    // The best-effort answer survives eviction.
    let answer = sched.finish(id).expect("session still held");
    assert_eq!(answer.result.labels.len(), 2);
    assert!(!answer.converged());
}

#[test]
fn finish_by_id_removes_the_session() {
    let engine = engine();
    let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare);
    let a = sched.admit(
        VizQuery::new(&engine)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .start(StdRng::seed_from_u64(97))
            .unwrap(),
    );
    let b = sched.admit(
        VizQuery::new(&engine)
            .group_by("name")
            .sum("delay")
            .bound(100.0)
            .start(StdRng::seed_from_u64(98))
            .unwrap(),
    );
    assert_eq!(sched.run(|_| {}), RunOutcome::Drained);
    assert_eq!(sched.len(), 2);
    let answer = sched.finish(a).expect("held");
    assert_eq!(answer.ranked_labels(), vec!["JB", "AA", "UA"]);
    assert_eq!(sched.len(), 1);
    assert!(sched.stats(a).is_none());
    assert!(sched.finish(a).is_none(), "already finished out");
    assert_eq!(sched.ids(), vec![b]);
}

#[test]
fn empty_scheduler_drains_immediately() {
    let mut sched = MultiQueryScheduler::new(SchedulePolicy::DeadlineAware);
    assert!(sched.is_empty());
    assert!(matches!(sched.poll(), SchedulerEvent::Drained));
    assert_eq!(
        sched.run(|_| panic!("no events expected")),
        RunOutcome::Drained
    );
}

/// Contention stress: many heterogeneous sessions with wide per-round
/// batches (batch × groups clears the core's parallel threshold, so under
/// `--features parallel` / `--all-features` every quantum fans out over
/// the shared worker pool) — and the determinism invariant must still
/// hold byte-for-byte. This is the CI threaded-stress entry point.
#[test]
fn stress_interleaving_under_worker_pool_contention() {
    let engines: Vec<NeedleTail> = (0..4).map(|i| near_tie_engine(4, 100 + i)).collect();
    fn make_query(eng: &NeedleTail) -> VizQuery<'_> {
        VizQuery::new(eng)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .samples_per_round(64)
            .max_samples(6_000)
    }
    let seeds: Vec<u64> = (0..8).map(|i| 200 + i).collect();
    let standalone: Vec<QueryAnswer> = seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| run_standalone(&make_query(&engines[i % engines.len()]), seed))
        .collect();
    for policy in [
        SchedulePolicy::FairShare,
        SchedulePolicy::DeadlineAware,
        SchedulePolicy::GreedyConvergence,
    ] {
        let mut sched = MultiQueryScheduler::new(policy);
        for (i, &seed) in seeds.iter().enumerate() {
            sched.admit(
                make_query(&engines[i % engines.len()])
                    .start(StdRng::seed_from_u64(seed))
                    .unwrap(),
            );
        }
        assert_eq!(sched.run(|_| {}), RunOutcome::Drained);
        for (i, (_, scheduled)) in sched.finish_all().iter().enumerate() {
            assert_same_answer(
                scheduled,
                &standalone[i],
                &format!("{policy:?} stress session {i}"),
            );
        }
    }
}
