//! Scheduler edge interleavings: admission after global-budget exhaustion,
//! cancellation racing an eviction notice within one quantum, and policy
//! switches with zero runnable sessions — plus cross-switch determinism.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rapidviz::needletail::{ColumnDef, DataType, NeedleTail, Schema, TableBuilder};
use rapidviz::{
    MultiQueryScheduler, QueryAnswer, SchedulePolicy, SchedulerEvent, StepOutcome, VizQuery,
};

fn engine() -> NeedleTail {
    let mut b = TableBuilder::new(Schema::new(vec![
        ColumnDef::new("g", DataType::Str),
        ColumnDef::new("v", DataType::Float),
    ]));
    let mut rng = StdRng::seed_from_u64(3);
    for i in 0..3000 {
        let (g, mu) = match i % 3 {
            0 => ("a", 30.0),
            1 => ("b", 50.0),
            _ => ("c", 70.0),
        };
        let v: f64 = mu + rng.gen_range(-15.0..15.0);
        b.push_row(vec![g.into(), v.into()]);
    }
    NeedleTail::new(b.finish(), &["g"]).unwrap()
}

fn session(engine: &NeedleTail, seed: u64) -> rapidviz::QuerySession {
    VizQuery::new(engine)
        .group_by("g")
        .avg("v")
        .bound(100.0)
        .start(StdRng::seed_from_u64(seed))
        .unwrap()
}

#[test]
fn admit_after_global_exhaustion_never_runs_but_keeps_its_answer() {
    let engine = engine();
    // A cap the first session's bootstrap already busts, plus a memory cap
    // that would evict anything actually stepped.
    let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare)
        .with_global_sample_budget(1)
        .with_session_memory_cap(1);
    let first = sched.admit(session(&engine, 31));

    let mut saw_exhausted = false;
    for _ in 0..5 {
        match sched.poll() {
            SchedulerEvent::GlobalBudgetExhausted { total_samples } => {
                assert!(total_samples >= 1);
                saw_exhausted = true;
            }
            other => panic!("expected GlobalBudgetExhausted, got {other:?}"),
        }
    }
    assert!(saw_exhausted);

    // Admission after exhaustion: the session is held but never stepped —
    // and therefore never memory-evicted either, despite the 1-byte cap.
    let late = sched.admit(session(&engine, 32));
    for _ in 0..5 {
        assert!(matches!(
            sched.poll(),
            SchedulerEvent::GlobalBudgetExhausted { .. }
        ));
    }
    let late_stats = sched.stats(late).unwrap();
    assert_eq!(
        late_stats.steps, 0,
        "a post-exhaustion admit gets no quanta"
    );
    assert!(!late_stats.evicted, "never stepped, never evicted");

    // Both answers stay retrievable, best-effort.
    let late_answer = sched.finish(late).unwrap();
    assert_eq!(late_answer.outcome, StepOutcome::Running);
    assert_eq!(late_answer.result.labels.len(), 3);
    let first_answer = sched.finish(first).unwrap();
    assert_eq!(first_answer.outcome, StepOutcome::Running);
}

#[test]
fn cancel_in_same_quantum_as_eviction_drops_the_stale_notice() {
    let engine = engine();
    // A 1-byte cap evicts on the very first quantum.
    let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare).with_session_memory_cap(1);
    let id = sched.admit(session(&engine, 41));

    // Quantum 1: the round lands and the eviction notice is queued.
    match sched.poll() {
        SchedulerEvent::Round { id: rid, .. } => assert_eq!(rid, id),
        other => panic!("expected the session's round, got {other:?}"),
    }
    assert!(sched.stats(id).unwrap().evicted);

    // The caller cancels before the notice is delivered: the answer is
    // handed out now, and the stale MemoryEvicted for a session the
    // caller no longer tracks must not surface afterwards.
    let answer = sched
        .finish(id)
        .expect("evicted slot still parks its answer");
    assert_eq!(answer.result.labels.len(), 3);
    match sched.poll() {
        SchedulerEvent::Drained => {}
        other => panic!("expected Drained after cancel, got stale {other:?}"),
    }
}

#[test]
fn policy_switch_with_zero_runnable_sessions_is_inert() {
    let engine = engine();

    // Entirely empty scheduler: switching policies must not disturb it.
    let mut empty = MultiQueryScheduler::new(SchedulePolicy::FairShare);
    empty.set_policy(SchedulePolicy::GreedyConvergence);
    assert!(matches!(empty.poll(), SchedulerEvent::Drained));
    empty.set_policy(SchedulePolicy::DeadlineAware);
    assert!(matches!(empty.poll(), SchedulerEvent::Drained));

    // Only-terminal sessions: drive one to its (tiny) budget, then switch
    // into the greedy policy, whose proximity recompute walks runnable
    // slots — of which there are none.
    let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare);
    let id = sched.admit(
        VizQuery::new(&engine)
            .group_by("g")
            .avg("v")
            .bound(100.0)
            .max_samples(5)
            .start(StdRng::seed_from_u64(51))
            .unwrap(),
    );
    let mut polls = 0;
    while !matches!(sched.poll(), SchedulerEvent::Drained) {
        polls += 1;
        assert!(polls < 1000, "tiny budget session failed to terminate");
    }
    sched.set_policy(SchedulePolicy::GreedyConvergence);
    assert!(matches!(sched.poll(), SchedulerEvent::Drained));
    let answer = sched.finish(id).unwrap();
    assert_eq!(answer.outcome, StepOutcome::BudgetExhausted);
}

/// Byte-identical answers regardless of mid-run policy switches: the
/// interleaving changes, the per-session sample streams cannot.
#[test]
fn policy_switches_never_perturb_results() {
    let engine = engine();
    let run = |switches: bool| -> Vec<QueryAnswer> {
        let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare);
        for seed in [61, 62, 63] {
            sched.admit(session(&engine, seed));
        }
        let mut polls = 0u64;
        loop {
            polls += 1;
            assert!(polls < 100_000);
            if switches {
                match polls {
                    10 => sched.set_policy(SchedulePolicy::GreedyConvergence),
                    25 => sched.set_policy(SchedulePolicy::DeadlineAware),
                    40 => sched.set_policy(SchedulePolicy::FairShare),
                    _ => {}
                }
            }
            if matches!(sched.poll(), SchedulerEvent::Drained) {
                break;
            }
        }
        sched.finish_all().into_iter().map(|(_, a)| a).collect()
    };

    let steady = run(false);
    let switched = run(true);
    assert_eq!(steady.len(), switched.len());
    for (a, b) in steady.iter().zip(&switched) {
        assert_eq!(a.result.labels, b.result.labels);
        assert_eq!(a.outcome, b.outcome);
        let bits = |ans: &QueryAnswer| {
            ans.result
                .estimates
                .iter()
                .map(|e| e.to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(a), bits(b), "estimates must be byte-identical");
        assert_eq!(a.result.total_samples(), b.result.total_samples());
    }
}
