//! Checkpoint/resume equivalence: a session checkpointed at **every** round
//! boundary, serialized, decoded, and resumed must replay the remaining
//! round stream bit-identically (`f64::to_bits`) to the uninterrupted
//! original — across every algorithm choice and aggregate.

use proptest::prelude::*;
use rand::{RngCore, SeedableRng};
use rapidviz::needletail::{
    ColumnDef, DataType, NeedleTail, Predicate, Schema, TableBuilder, Value,
};
use rapidviz::{
    AlgorithmChoice, CheckpointError, QuerySession, RoundUpdate, SessionCheckpoint, SimulatedClock,
    Snapshot, StepOutcome, VizQuery,
};
use std::sync::Arc;
use std::time::Duration;

fn engine() -> NeedleTail {
    let mut b = TableBuilder::new(Schema::new(vec![
        ColumnDef::new("name", DataType::Str),
        ColumnDef::new("origin", DataType::Str),
        ColumnDef::new("delay", DataType::Float),
    ]));
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    use rand::Rng;
    for _ in 0..1_500 {
        // Skewed group sizes (6:3:1) so COUNT's size ordering separates
        // quickly; means stay well apart so AVG/SUM converge fast too.
        let (name, mu) = match rng.gen_range(0..10) {
            0..=5 => ("AA", 60.0),
            6..=8 => ("UA", 85.0),
            _ => ("JB", 20.0),
        };
        let origin = ["BOS", "SFO"][rng.gen_range(0..2)];
        let delay = if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 };
        b.push_row(vec![name.into(), origin.into(), Value::Float(delay)]);
    }
    NeedleTail::new(b.finish(), &["name"]).unwrap()
}

/// All query shapes under test: every AVG algorithm, SUM, and COUNT.
fn queries(engine: &NeedleTail) -> Vec<(&'static str, VizQuery<'_>)> {
    let avg = |alg: AlgorithmChoice| {
        VizQuery::new(engine)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .resolution_pct(6.0)
            .samples_per_round(24)
            .algorithm(alg)
    };
    vec![
        ("avg/ifocus", avg(AlgorithmChoice::IFocus)),
        ("avg/irefine", avg(AlgorithmChoice::IRefine)),
        ("avg/roundrobin", avg(AlgorithmChoice::RoundRobin)),
        ("avg/scan", avg(AlgorithmChoice::ExactScan)),
        (
            "sum",
            VizQuery::new(engine)
                .group_by("name")
                .sum("delay")
                .bound(100.0)
                .resolution_pct(4.0)
                .samples_per_round(16),
        ),
        (
            "count",
            VizQuery::new(engine)
                .group_by("name")
                .count("delay")
                .resolution_pct(5.0)
                .samples_per_round(16),
        ),
        (
            "avg/filtered-multi",
            VizQuery::new(engine)
                .group_by("name")
                .group_by("origin")
                .avg("delay")
                .bound(100.0)
                .resolution_pct(8.0)
                .samples_per_round(16)
                .filter(Predicate::eq("origin", "BOS")),
        ),
        (
            "avg/budgeted",
            VizQuery::new(engine)
                .group_by("name")
                .avg("delay")
                .bound(100.0)
                .samples_per_round(16)
                .max_samples(400),
        ),
    ]
}

fn assert_snapshots_identical(label: &str, round: usize, a: &Snapshot, b: &Snapshot) {
    assert_eq!(a.labels, b.labels, "{label} round {round}: labels");
    assert_eq!(
        a.estimates.iter().map(|e| e.to_bits()).collect::<Vec<_>>(),
        b.estimates.iter().map(|e| e.to_bits()).collect::<Vec<_>>(),
        "{label} round {round}: estimates"
    );
    assert_eq!(a.active, b.active, "{label} round {round}: active");
    assert_eq!(
        a.samples_per_group, b.samples_per_group,
        "{label} round {round}: samples"
    );
    assert_eq!(a.rounds, b.rounds, "{label} round {round}: rounds");
    assert_eq!(a.truncated, b.truncated, "{label} round {round}: truncated");
}

fn assert_updates_identical(label: &str, round: usize, a: &RoundUpdate, b: &RoundUpdate) {
    assert_eq!(a.outcome, b.outcome, "{label} round {round}: outcome");
    assert_eq!(a.round, b.round, "{label} round {round}: round counter");
    assert_eq!(
        a.total_samples, b.total_samples,
        "{label} round {round}: total samples"
    );
    assert_eq!(
        a.newly_certified, b.newly_certified,
        "{label} round {round}: newly certified"
    );
    assert_snapshots_identical(label, round, &a.snapshot, &b.snapshot);
}

/// Steps a session to its terminal update, returning every update.
fn drive(session: &mut QuerySession) -> Vec<RoundUpdate> {
    let mut updates = Vec::new();
    loop {
        let u = session.step();
        let done = !u.outcome.is_running();
        updates.push(u);
        if done {
            break;
        }
        assert!(updates.len() < 100_000, "runaway session");
    }
    updates
}

#[test]
fn resume_is_bit_identical_at_every_round_boundary() {
    let engine = engine();
    for (label, query) in queries(&engine) {
        // Reference: the uninterrupted run.
        let mut reference = query
            .start(rand::rngs::StdRng::seed_from_u64(42))
            .unwrap_or_else(|e| panic!("{label}: start failed: {e}"));
        let ref_updates = drive(&mut reference);
        let ref_answer = reference.finish();
        let n = ref_updates.len();

        // Checkpoint at every boundary: after 0, 1, …, n steps.
        for boundary in 0..=n {
            let mut session = query.start(rand::rngs::StdRng::seed_from_u64(42)).unwrap();
            for (i, expected) in ref_updates.iter().take(boundary).enumerate() {
                let u = session.step();
                assert_updates_identical(label, i, &u, expected);
            }
            let ck = session
                .checkpoint()
                .unwrap_or_else(|e| panic!("{label} boundary {boundary}: checkpoint failed: {e}"));
            // Serialize through the binary format to prove the bytes carry
            // the full state, not just the in-memory struct.
            let decoded = SessionCheckpoint::from_bytes(&ck.to_bytes())
                .unwrap_or_else(|e| panic!("{label} boundary {boundary}: decode failed: {e}"));
            assert_eq!(decoded, ck, "{label} boundary {boundary}: byte round-trip");
            drop(session);

            let mut resumed = QuerySession::resume(&engine, &decoded)
                .unwrap_or_else(|e| panic!("{label} boundary {boundary}: resume failed: {e}"));
            for (i, expected) in ref_updates.iter().enumerate().skip(boundary) {
                let u = resumed.step();
                assert_updates_identical(label, i, &u, expected);
            }
            let answer = resumed.finish();
            assert_eq!(
                answer
                    .result
                    .estimates
                    .iter()
                    .map(|e| e.to_bits())
                    .collect::<Vec<_>>(),
                ref_answer
                    .result
                    .estimates
                    .iter()
                    .map(|e| e.to_bits())
                    .collect::<Vec<_>>(),
                "{label} boundary {boundary}: final estimates"
            );
            assert_eq!(answer.result.labels, ref_answer.result.labels);
            assert_eq!(
                answer.result.samples_per_group,
                ref_answer.result.samples_per_group
            );
            assert_eq!(answer.result.truncated, ref_answer.result.truncated);
            assert_eq!(answer.outcome, ref_answer.outcome);
            assert_eq!(answer.population, ref_answer.population);
        }
    }
}

#[test]
fn resumed_iterator_view_respects_delivered_terminal() {
    let engine = engine();
    let query = VizQuery::new(&engine)
        .group_by("name")
        .avg("delay")
        .bound(100.0)
        .resolution_pct(4.0)
        .samples_per_round(16);
    let mut session = query.start(rand::rngs::StdRng::seed_from_u64(9)).unwrap();
    let updates = drive(&mut session);
    assert!(!updates.is_empty());
    // Terminal already delivered: the resumed iterator must yield nothing.
    let ck = session.checkpoint().unwrap();
    assert!(ck.delivered_terminal);
    let mut resumed = QuerySession::resume(&engine, &ck).unwrap();
    assert!(resumed.next().is_none(), "terminal was already delivered");
    assert!(resumed.is_finished());
}

#[test]
fn remaining_deadline_reanchors_on_resume() {
    let engine = engine();
    let clock = Arc::new(SimulatedClock::new());
    let query = VizQuery::new(&engine)
        .group_by("name")
        .avg("delay")
        .bound(100.0)
        .samples_per_round(4)
        .timeout(Duration::from_millis(100))
        .clock(Arc::clone(&clock) as Arc<_>);
    let mut session = query.start(rand::rngs::StdRng::seed_from_u64(3)).unwrap();
    let u = session.step();
    assert_eq!(u.outcome, StepOutcome::Running);
    // 60 ms burn: 40 ms of budget left at checkpoint time.
    clock.advance(Duration::from_millis(60));
    let ck = session.checkpoint().unwrap();
    let remaining = ck.remaining.expect("deadline session stores remaining");
    assert_eq!(remaining, Duration::from_millis(40));

    // Resume against a fresh clock: the 40 ms re-anchor at its `now()`,
    // so 39 ms later the session still runs and 41 ms later it trips.
    let clock2 = Arc::new(SimulatedClock::new());
    let mut resumed =
        QuerySession::resume_with_clock(&engine, &ck, Arc::clone(&clock2) as Arc<_>).unwrap();
    clock2.advance(Duration::from_millis(39));
    assert_eq!(resumed.step().outcome, StepOutcome::Running);
    clock2.advance(Duration::from_millis(2));
    assert_eq!(resumed.step().outcome, StepOutcome::BudgetExhausted);
}

/// An RNG the checkpoint layer cannot introspect.
struct OpaqueRng(u64);

impl RngCore for OpaqueRng {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
    fn next_u64(&mut self) -> u64 {
        // Weyl sequence: good enough to drive sampling in a test.
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.0
    }
}

#[test]
fn opaque_rng_sessions_run_but_refuse_to_checkpoint() {
    let engine = engine();
    let mut session = VizQuery::new(&engine)
        .group_by("name")
        .avg("delay")
        .bound(100.0)
        .resolution_pct(4.0)
        .samples_per_round(16)
        .start(OpaqueRng(7))
        .unwrap();
    let u = session.step();
    assert!(u.total_samples > 0, "opaque-RNG session still samples");
    assert_eq!(
        session.checkpoint().unwrap_err(),
        CheckpointError::OpaqueRng
    );
}

#[test]
fn resume_rejects_group_count_drift() {
    // Checkpoint against the 3-airline engine, resume against an engine
    // whose group-by column has a different cardinality: structured error.
    let engine = engine();
    let mut session = VizQuery::new(&engine)
        .group_by("name")
        .avg("delay")
        .bound(100.0)
        .samples_per_round(8)
        .start(rand::rngs::StdRng::seed_from_u64(1))
        .unwrap();
    session.step();
    let ck = session.checkpoint().unwrap();

    let mut b = TableBuilder::new(Schema::new(vec![
        ColumnDef::new("name", DataType::Str),
        ColumnDef::new("origin", DataType::Str),
        ColumnDef::new("delay", DataType::Float),
    ]));
    for (n, d) in [("AA", 30.0), ("JB", 10.0)] {
        b.push_row(vec![n.into(), "BOS".into(), Value::Float(d)]);
    }
    let drifted = NeedleTail::new(b.finish(), &["name"]).unwrap();
    let err = QuerySession::resume(&drifted, &ck).unwrap_err();
    assert!(
        matches!(
            err,
            CheckpointError::Restore(_) | CheckpointError::Mismatch(_)
        ),
        "expected a shape error, got {err:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random tables, random seeds, random pause points: the resumed
    /// suffix stream matches the uninterrupted one bit-for-bit.
    #[test]
    fn random_sessions_resume_bit_identically(
        rows in proptest::collection::vec((0usize..4, 0.0f64..100.0), 40..300),
        seed in 0u64..1_000,
        pause_fraction in 0.0f64..1.0,
    ) {
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("g", DataType::Str),
            ColumnDef::new("y", DataType::Float),
        ]));
        for &(g, y) in &rows {
            b.push_row(vec![Value::Str(format!("group{g}")), Value::Float(y)]);
        }
        let engine = NeedleTail::new(b.finish(), &["g"]).unwrap();
        let query = VizQuery::new(&engine)
            .group_by("g")
            .avg("y")
            .bound(110.0)
            .resolution_pct(10.0)
            .samples_per_round(4)
            .max_samples(2_000);

        let mut reference = query.start(rand::rngs::StdRng::seed_from_u64(seed)).unwrap();
        let ref_updates = drive(&mut reference);
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let boundary = ((ref_updates.len() as f64) * pause_fraction) as usize;

        let mut session = query.start(rand::rngs::StdRng::seed_from_u64(seed)).unwrap();
        for _ in 0..boundary {
            session.step();
        }
        let ck = SessionCheckpoint::from_bytes(&session.checkpoint().unwrap().to_bytes()).unwrap();
        let mut resumed = QuerySession::resume(&engine, &ck).unwrap();
        for (i, expected) in ref_updates.iter().enumerate().skip(boundary) {
            let u = resumed.step();
            prop_assert_eq!(u.outcome, expected.outcome, "round {}", i);
            prop_assert_eq!(
                u.snapshot.estimates.iter().map(|e| e.to_bits()).collect::<Vec<_>>(),
                expected.snapshot.estimates.iter().map(|e| e.to_bits()).collect::<Vec<_>>(),
                "round {}",
                i
            );
            prop_assert_eq!(&u.snapshot.samples_per_group, &expected.snapshot.samples_per_group);
        }
    }
}
