//! Resumable-session semantics: fixed-seed equivalence with the blocking
//! path (and with verbatim pre-refactor reference loops), prefix-consistent
//! partial orderings, cancellation, and budget exhaustion.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rapidviz::core::extensions::{ifocus_count, IFocusSum1};
use rapidviz::core::{AlgoConfig, IFocus, RunResult, StepOutcome};
use rapidviz::needletail::{
    ColumnDef, DataType, NeedleTail, Predicate, Schema, TableBuilder, Value,
};
use rapidviz::{AlgorithmChoice, NeedletailGroup, VizQuery};
use std::time::{Duration, Instant};

/// A 30k-row, 3-airline table with the group column indexed.
fn engine() -> NeedleTail {
    let mut b = TableBuilder::new(Schema::new(vec![
        ColumnDef::new("name", DataType::Str),
        ColumnDef::new("delay", DataType::Float),
    ]));
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..30_000 {
        let (name, mu) = [("AA", 60.0), ("JB", 20.0), ("UA", 85.0)][rng.gen_range(0..3)];
        let delay = if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 };
        b.push_row(vec![name.into(), Value::Float(delay)]);
    }
    NeedleTail::new(b.finish(), &["name"]).unwrap()
}

/// A table whose two groups have nearly tied means, so runs last thousands
/// of rounds — the budget/cancellation playground.
fn near_tie_engine() -> NeedleTail {
    let mut b = TableBuilder::new(Schema::new(vec![
        ColumnDef::new("name", DataType::Str),
        ColumnDef::new("delay", DataType::Float),
    ]));
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..50_000 {
        let (name, mu) = [("close1", 49.6), ("close2", 50.4)][rng.gen_range(0..2)];
        let delay = if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 };
        b.push_row(vec![name.into(), Value::Float(delay)]);
    }
    NeedleTail::new(b.finish(), &["name"]).unwrap()
}

fn assert_same_run(a: &RunResult, b: &RunResult) {
    assert_eq!(a.estimates, b.estimates, "estimates must be byte-identical");
    assert_eq!(a.samples_per_group, b.samples_per_group);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.truncated, b.truncated);
}

/// The pre-refactor `VizQuery::execute` body for AVG, verbatim (public
/// APIs only): build handles, infer nothing (bound given), run IFOCUS
/// blocking. Guards the acceptance criterion that the session refactor
/// left the blocking path byte-identical.
fn reference_execute_avg(engine: &NeedleTail, rng: &mut StdRng) -> RunResult {
    let handles = engine
        .group_handles("name", "delay", &Predicate::True)
        .unwrap();
    let mut groups: Vec<NeedletailGroup> = handles.into_iter().map(NeedletailGroup::new).collect();
    let config = AlgoConfig::new(100.0, 0.05);
    IFocus::new(config).run(&mut groups, rng)
}

/// The pre-refactor SUM path, verbatim.
fn reference_execute_sum(engine: &NeedleTail, rng: &mut StdRng) -> RunResult {
    let handles = engine
        .group_handles("name", "delay", &Predicate::True)
        .unwrap();
    let mut groups: Vec<NeedletailGroup> = handles.into_iter().map(NeedletailGroup::new).collect();
    let config = AlgoConfig::new(100.0, 0.05);
    IFocusSum1::new(config).run(&mut groups, rng)
}

/// The COUNT reference: the blocking §6.3.2 helper over the engine's
/// size-estimating handles (itself regression-tested in core against a
/// verbatim pre-refactor Algorithm-5 loop).
fn reference_execute_count(engine: &NeedleTail, rng: &mut StdRng) -> RunResult {
    let mut groups = rapidviz::query_sized_groups(engine, "name", "delay").unwrap();
    let config = AlgoConfig::new(1.0, 0.05).with_resolution(0.02);
    ifocus_count(&config, &mut groups, rng)
}

#[test]
fn execute_avg_matches_pre_refactor_reference() {
    let engine = engine();
    let answer = VizQuery::new(&engine)
        .group_by("name")
        .avg("delay")
        .bound(100.0)
        .execute(&mut StdRng::seed_from_u64(42))
        .unwrap();
    let reference = reference_execute_avg(&engine, &mut StdRng::seed_from_u64(42));
    assert_same_run(&answer.result, &reference);
    assert!(answer.converged());
}

#[test]
fn execute_sum_matches_pre_refactor_reference() {
    let engine = engine();
    let answer = VizQuery::new(&engine)
        .group_by("name")
        .sum("delay")
        .bound(100.0)
        .execute(&mut StdRng::seed_from_u64(43))
        .unwrap();
    let reference = reference_execute_sum(&engine, &mut StdRng::seed_from_u64(43));
    assert_same_run(&answer.result, &reference);
}

#[test]
fn execute_count_matches_reference_loop() {
    let engine = engine();
    let answer = VizQuery::new(&engine)
        .group_by("name")
        .count("delay")
        .resolution_pct(2.0)
        .execute(&mut StdRng::seed_from_u64(44))
        .unwrap();
    let reference = reference_execute_count(&engine, &mut StdRng::seed_from_u64(44));
    assert_same_run(&answer.result, &reference);
    // Roughly equal thirds of the relation.
    for est in &answer.result.estimates {
        assert!((est - 1.0 / 3.0).abs() < 0.1, "normalized count {est}");
    }
}

#[test]
fn session_step_loop_matches_execute_for_all_aggregates() {
    let engine = engine();
    type Build<'a> = Box<dyn Fn(&'a NeedleTail) -> VizQuery<'a>>;
    let builders: Vec<(&str, Build)> = vec![
        (
            "avg",
            Box::new(|e| VizQuery::new(e).group_by("name").avg("delay").bound(100.0)),
        ),
        (
            "sum",
            Box::new(|e| VizQuery::new(e).group_by("name").sum("delay").bound(100.0)),
        ),
        (
            "count",
            Box::new(|e| {
                VizQuery::new(e)
                    .group_by("name")
                    .count("delay")
                    .resolution_pct(2.0)
            }),
        ),
    ];
    for (what, build) in &builders {
        let blocking = build(&engine)
            .execute(&mut StdRng::seed_from_u64(77))
            .unwrap();
        let mut session = build(&engine).start(StdRng::seed_from_u64(77)).unwrap();
        let mut rounds = 0u64;
        loop {
            let update = session.step();
            rounds += 1;
            assert!(rounds < 10_000_000, "runaway session");
            match update.outcome {
                StepOutcome::Running => {}
                StepOutcome::Converged => break,
                StepOutcome::BudgetExhausted => panic!("{what}: no budget set"),
            }
        }
        let stepped = session.finish();
        assert_same_run(&blocking.result, &stepped.result);
        assert_eq!(blocking.population, stepped.population);
        assert_eq!(blocking.ranked_labels(), stepped.ranked_labels(), "{what}");
    }
}

#[test]
fn round_updates_are_prefix_consistent_with_final_answer() {
    let engine = engine();
    let query = VizQuery::new(&engine)
        .group_by("name")
        .avg("delay")
        .bound(100.0);
    let mut session = query.start(StdRng::seed_from_u64(7)).unwrap();
    let mut updates = Vec::new();
    for update in session.by_ref() {
        updates.push(update);
    }
    assert!(
        updates.len() >= 3,
        "expected ≥3 rounds, got {}",
        updates.len()
    );
    let answer = session.finish();

    let mut prev_fraction = -1.0f64;
    let mut prev_certified: Vec<usize> = Vec::new();
    for update in &updates {
        // fraction_sampled is monotone.
        assert!(
            update.fraction_sampled >= prev_fraction,
            "fraction_sampled regressed"
        );
        prev_fraction = update.fraction_sampled;
        // The certified set only grows, and certified estimates are frozen
        // at their final values — so every update's partial ordering is a
        // sub-ordering of the final answer's.
        let certified = update.snapshot.certified_order();
        for g in &prev_certified {
            assert!(certified.contains(g), "certified group {g} disappeared");
        }
        for &g in &certified {
            assert_eq!(
                update.snapshot.estimates[g], answer.result.estimates[g],
                "certified estimate for group {g} moved after freezing"
            );
        }
        // certified_order sorts by (frozen = final) estimate, so it is
        // automatically consistent with the final ranking; spot-check it.
        for pair in certified.windows(2) {
            assert!(
                answer.result.estimates[pair[0]] <= answer.result.estimates[pair[1]],
                "partial ordering disagrees with the final answer"
            );
        }
        prev_certified = certified;
    }
    // The last update certifies everyone.
    let last = updates.last().unwrap();
    assert_eq!(last.outcome, StepOutcome::Converged);
    assert_eq!(last.snapshot.certified_order().len(), 3);
    assert_eq!(answer.ranked_labels(), vec!["JB", "AA", "UA"]);
}

#[test]
fn cancellation_mid_run_leaves_usable_snapshot_and_answer() {
    let engine = near_tie_engine();
    let mut session = VizQuery::new(&engine)
        .group_by("name")
        .avg("delay")
        .bound(100.0)
        .start(StdRng::seed_from_u64(8))
        .unwrap();
    for _ in 0..50 {
        let update = session.step();
        assert_eq!(
            update.outcome,
            StepOutcome::Running,
            "near-tie resolves too fast"
        );
    }
    // Mid-run snapshot is fully usable.
    let snap = session.snapshot();
    assert_eq!(snap.labels.len(), 2);
    assert!(snap.estimates.iter().all(|e| e.is_finite()));
    assert_eq!(snap.active_count(), 2, "near-tied groups still active");
    assert!(session.fraction_sampled() > 0.0);
    assert!(session.fraction_sampled() < 1.0);
    assert!(!session.is_finished());
    // Cancel: finish early and keep the best-effort answer.
    let answer = session.finish();
    assert_eq!(answer.outcome, StepOutcome::Running);
    assert!(!answer.converged());
    assert_eq!(answer.result.labels.len(), 2);
    assert!(answer.fraction_sampled() < 1.0);
    // Estimates are close to the true means even without the guarantee.
    for est in &answer.result.estimates {
        assert!((est - 50.0).abs() < 15.0, "estimate {est} implausible");
    }
}

#[test]
fn sample_budget_exhaustion_is_terminal_and_monotone() {
    let engine = near_tie_engine();
    let mut session = VizQuery::new(&engine)
        .group_by("name")
        .avg("delay")
        .bound(100.0)
        .max_samples(500)
        .start(StdRng::seed_from_u64(9))
        .unwrap();
    let mut prev_fraction = -1.0f64;
    let outcome = loop {
        let update = session.step();
        assert!(
            update.fraction_sampled >= prev_fraction,
            "fraction must be monotone"
        );
        prev_fraction = update.fraction_sampled;
        if update.outcome != StepOutcome::Running {
            break update.outcome;
        }
    };
    assert_eq!(outcome, StepOutcome::BudgetExhausted);
    let samples_at_stop = session.total_samples();
    // Budget overshoot is at most one round past the cap.
    assert!(samples_at_stop >= 500);
    assert!(
        samples_at_stop < 500 + 16,
        "overshot the cap by a whole round"
    );
    // Terminal state is idempotent: further steps do not advance.
    let again = session.step();
    assert_eq!(again.outcome, StepOutcome::BudgetExhausted);
    assert_eq!(session.total_samples(), samples_at_stop);
    // Session-budget truncation shows up in snapshots, not just the final
    // answer — a renderer can see the estimates are best-effort.
    assert!(again.snapshot.truncated);
    assert!(session.snapshot().truncated);
    // finish() returns a well-formed, truncated answer.
    let answer = session.finish();
    assert_eq!(answer.outcome, StepOutcome::BudgetExhausted);
    assert!(answer.result.truncated);
    assert!(answer.fraction_sampled() < 1.0);
    assert!(answer.fraction_sampled() > 0.0);
    assert_eq!(answer.ranked_labels().len(), 2);
}

#[test]
fn past_deadline_exhausts_before_the_first_round() {
    let engine = near_tie_engine();
    let mut session = VizQuery::new(&engine)
        .group_by("name")
        .avg("delay")
        .bound(100.0)
        .deadline(Instant::now() - Duration::from_millis(1))
        .start(StdRng::seed_from_u64(10))
        .unwrap();
    let bootstrap_samples = session.total_samples();
    assert_eq!(bootstrap_samples, 2, "only the bootstrap draw happened");
    let update = session.step();
    assert_eq!(update.outcome, StepOutcome::BudgetExhausted);
    assert_eq!(session.total_samples(), bootstrap_samples, "no round ran");
    let answer = session.finish();
    assert!(answer.result.truncated);
    assert!(answer.fraction_sampled() < 1.0);
}

#[test]
fn algorithm_choices_order_correctly_through_the_front_door() {
    let engine = engine();
    for (choice, exhaustive) in [
        (AlgorithmChoice::IRefine, false),
        (AlgorithmChoice::RoundRobin, false),
        (AlgorithmChoice::ExactScan, true),
    ] {
        let answer = VizQuery::new(&engine)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .algorithm(choice)
            .execute(&mut StdRng::seed_from_u64(11))
            .unwrap();
        assert_eq!(
            answer.ranked_labels(),
            vec!["JB", "AA", "UA"],
            "{choice:?} mis-ordered"
        );
        if exhaustive {
            assert!((answer.fraction_sampled() - 1.0).abs() < 1e-12);
        } else {
            assert!(
                answer.fraction_sampled() < 1.0,
                "{choice:?} sampled everything"
            );
        }
    }
}

#[test]
fn scan_sessions_stream_one_exact_group_per_round() {
    let engine = engine();
    let mut session = VizQuery::new(&engine)
        .group_by("name")
        .avg("delay")
        .bound(100.0)
        .algorithm(AlgorithmChoice::ExactScan)
        .start(StdRng::seed_from_u64(12))
        .unwrap();
    let updates: Vec<_> = session.by_ref().collect();
    assert_eq!(updates.len(), 3, "one step per group");
    assert_eq!(updates[0].newly_certified.len(), 1);
    assert_eq!(updates.last().unwrap().outcome, StepOutcome::Converged);
    let answer = session.finish();
    assert_eq!(answer.ranked_labels(), vec!["JB", "AA", "UA"]);
}

#[test]
fn unsupported_combinations_error_cleanly() {
    let engine = engine();
    let mut rng = StdRng::seed_from_u64(13);
    // Algorithm overrides are AVG-only.
    assert!(VizQuery::new(&engine)
        .group_by("name")
        .sum("delay")
        .algorithm(AlgorithmChoice::IRefine)
        .execute(&mut rng)
        .is_err());
    assert!(VizQuery::new(&engine)
        .group_by("name")
        .count("delay")
        .algorithm(AlgorithmChoice::RoundRobin)
        .execute(&mut rng)
        .is_err());
    // COUNT is single-attribute.
    assert!(VizQuery::new(&engine)
        .group_by("name")
        .group_by("name")
        .count("delay")
        .execute(&mut rng)
        .is_err());
    // COUNT lives on the fixed [0, 1] scale: a value bound is rejected
    // loudly instead of silently ignored.
    assert!(VizQuery::new(&engine)
        .group_by("name")
        .count("delay")
        .bound(1440.0)
        .execute(&mut rng)
        .is_err());
}

#[test]
fn post_terminal_steps_repeat_outcome_without_advancing() {
    // After natural convergence, step() keeps answering: the terminal
    // outcome repeats, the snapshot is frozen, and newly_certified is
    // empty on every repeated call.
    let engine = engine();
    let mut session = VizQuery::new(&engine)
        .group_by("name")
        .avg("delay")
        .bound(100.0)
        .start(StdRng::seed_from_u64(21))
        .unwrap();
    let terminal = loop {
        let update = session.step();
        if !update.outcome.is_running() {
            break update;
        }
    };
    assert_eq!(terminal.outcome, StepOutcome::Converged);
    let frozen = session.snapshot();
    for _ in 0..3 {
        let again = session.step();
        assert_eq!(again.outcome, StepOutcome::Converged, "outcome repeats");
        assert!(
            again.newly_certified.is_empty(),
            "nothing re-certifies after termination"
        );
        assert_eq!(again.round, terminal.round);
        assert_eq!(again.total_samples, terminal.total_samples);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(
            bits(&again.snapshot.estimates),
            bits(&frozen.estimates),
            "snapshot estimates must not move"
        );
        assert_eq!(again.snapshot.samples_per_group, frozen.samples_per_group);
        assert_eq!(again.snapshot.active, frozen.active);
        assert_eq!(again.snapshot.rounds, frozen.rounds);
    }
}

#[test]
fn post_terminal_steps_after_budget_exhaustion_are_frozen_too() {
    let engine = near_tie_engine();
    let mut session = VizQuery::new(&engine)
        .group_by("name")
        .avg("delay")
        .bound(100.0)
        .max_samples(400)
        .start(StdRng::seed_from_u64(22))
        .unwrap();
    let terminal = loop {
        let update = session.step();
        if !update.outcome.is_running() {
            break update;
        }
    };
    assert_eq!(terminal.outcome, StepOutcome::BudgetExhausted);
    // The terminal update itself may certify groups (the transition just
    // happened); every repeat after it must not.
    for _ in 0..3 {
        let again = session.step();
        assert_eq!(again.outcome, StepOutcome::BudgetExhausted);
        assert!(again.newly_certified.is_empty());
        assert_eq!(again.total_samples, terminal.total_samples);
        assert_eq!(again.round, terminal.round);
        assert!(again.snapshot.truncated);
    }
}

#[test]
fn tiny_population_fraction_is_clamped_to_one() {
    // COUNT draws with replacement: on a 30-row table a 200-sample budget
    // draws far more samples than there are rows, which used to push
    // fraction_sampled past 1.0. It must clamp (and stay monotone).
    let mut b = TableBuilder::new(Schema::new(vec![
        ColumnDef::new("name", DataType::Str),
        ColumnDef::new("delay", DataType::Float),
    ]));
    for i in 0..30 {
        let name = if i % 2 == 0 { "even" } else { "odd" };
        b.push_row(vec![name.into(), Value::Float(f64::from(i))]);
    }
    let engine = NeedleTail::new(b.finish(), &["name"]).unwrap();
    let mut session = VizQuery::new(&engine)
        .group_by("name")
        .count("delay")
        .max_samples(200)
        .start(StdRng::seed_from_u64(23))
        .unwrap();
    let mut prev = -1.0f64;
    let outcome = loop {
        let update = session.step();
        assert!(
            update.fraction_sampled <= 1.0,
            "fraction {} exceeds 1.0",
            update.fraction_sampled
        );
        assert!(update.fraction_sampled >= prev, "fraction regressed");
        prev = update.fraction_sampled;
        if !update.outcome.is_running() {
            break update.outcome;
        }
    };
    assert_eq!(outcome, StepOutcome::BudgetExhausted);
    // More samples than rows were drawn, and every reading is clamped.
    assert!(session.total_samples() > session.population());
    assert_eq!(session.fraction_sampled(), 1.0);
    let answer = session.finish();
    assert_eq!(answer.fraction_sampled(), 1.0, "answer-side clamp too");
}

#[test]
fn session_iterator_terminates_after_terminal_update() {
    let engine = engine();
    let mut session = VizQuery::new(&engine)
        .group_by("name")
        .avg("delay")
        .bound(100.0)
        .resolution_pct(1.0)
        .start(StdRng::seed_from_u64(14))
        .unwrap();
    let updates: Vec<_> = session.by_ref().collect();
    assert!(!updates.is_empty());
    assert!(updates[..updates.len() - 1]
        .iter()
        .all(|u| u.outcome == StepOutcome::Running));
    assert_eq!(updates.last().unwrap().outcome, StepOutcome::Converged);
    // The iterator is fused after the terminal update...
    assert!(session.next().is_none());
    // ...but poll-style stepping still answers idempotently.
    assert_eq!(session.step().outcome, StepOutcome::Converged);
    assert!(session.is_finished());
}
