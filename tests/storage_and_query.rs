//! Integration tests for the adoption-path features: CSV ingestion, binary
//! persistence, the fluent query API, the simulated block device, and the
//! composite group-by — wired together end to end.

use rand::SeedableRng;
use rapidviz::core::{is_correctly_ordered_with_resolution, AlgoConfig, IFocus};
use rapidviz::datagen::FlightModel;
use rapidviz::needletail::{
    read_csv, read_table, write_table, CsvOptions, DiskModel, NeedleTail, Predicate, SimulatedDisk,
};
use rapidviz::{query_groups, VizQuery};

/// CSV → table → binary → table → engine → guaranteed ordering.
#[test]
fn csv_to_binary_to_query_pipeline() {
    let mut csv = String::from("team,score\n");
    use rand::Rng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(71);
    for _ in 0..30_000 {
        let (team, mu) = [("red", 25.0), ("green", 50.0), ("blue", 75.0)][rng.gen_range(0..3)];
        let score = if rng.gen_bool(mu / 100.0) { 100 } else { 0 };
        csv.push_str(&format!("{team},{score}\n"));
    }
    let table = read_csv(&csv, &CsvOptions::default()).unwrap();

    // Round-trip through the binary format.
    let mut buf = Vec::new();
    write_table(&table, &mut buf).unwrap();
    let table = read_table(buf.as_slice()).unwrap();
    assert_eq!(table.row_count(), 30_000);

    let engine = NeedleTail::new(table, &["team"]).unwrap();
    let mut run_rng = rand::rngs::StdRng::seed_from_u64(72);
    let answer = VizQuery::new(&engine)
        .group_by("team")
        .avg("score")
        .bound(100.0)
        .resolution_pct(2.0)
        .execute(&mut run_rng)
        .unwrap();
    assert_eq!(answer.ranked_labels(), vec!["red", "green", "blue"]);
    assert!(answer.to_bar_chart(30).lines().count() == 3);
}

/// The composite group-by produces the same cells as manual predicates,
/// and IFOCUS orders them correctly.
#[test]
fn composite_group_by_matches_manual_cells() {
    use rapidviz::needletail::{ColumnDef, DataType, Schema, TableBuilder, Value};
    let mut b = TableBuilder::new(Schema::new(vec![
        ColumnDef::new("x", DataType::Str),
        ColumnDef::new("z", DataType::Int),
        ColumnDef::new("y", DataType::Float),
    ]));
    use rand::Rng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(73);
    for _ in 0..40_000 {
        let x = ["p", "q"][rng.gen_range(0..2)];
        let z = rng.gen_range(0..2i64);
        let mu = match (x, z) {
            ("p", 0) => 15.0,
            ("p", 1) => 40.0,
            ("q", 0) => 65.0,
            _ => 88.0,
        };
        let y = if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 };
        b.push_row(vec![x.into(), Value::Int(z), Value::Float(y)]);
    }
    let engine = NeedleTail::new(b.finish(), &["x", "z"]).unwrap();

    // Joint-index cells.
    let joint = engine
        .group_handles_multi(&["x", "z"], "y", &Predicate::True)
        .unwrap();
    // Manual cross product via predicates on z.
    let mut manual = Vec::new();
    for z in 0..2i64 {
        manual.extend(
            engine
                .group_handles("x", "y", &Predicate::eq("z", Value::Int(z)))
                .unwrap(),
        );
    }
    assert_eq!(joint.len(), manual.len());
    let mut joint_sizes: Vec<u64> = joint.iter().map(|h| h.len()).collect();
    let mut manual_sizes: Vec<u64> = manual.iter().map(|h| h.len()).collect();
    joint_sizes.sort_unstable();
    manual_sizes.sort_unstable();
    assert_eq!(joint_sizes, manual_sizes);

    // Order the joint cells with IFOCUS against scan ground truth.
    let mut groups: Vec<rapidviz::NeedletailGroup> = joint
        .into_iter()
        .map(rapidviz::NeedletailGroup::with_true_mean)
        .collect();
    let truths: Vec<f64> = groups
        .iter()
        .map(|g| rapidviz::core::GroupSource::true_mean(g).unwrap())
        .collect();
    let mut run_rng = rand::rngs::StdRng::seed_from_u64(74);
    let result = IFocus::new(AlgoConfig::new(100.0, 0.05).with_resolution(1.0))
        .run(&mut groups, &mut run_rng);
    assert!(is_correctly_ordered_with_resolution(
        &result.estimates,
        &truths,
        1.0
    ));
}

/// The simulated block device prices the scan-vs-sample economics the way
/// Figure 4 needs: scanning costs every page, sampling costs one page per
/// draw, and the cost model turns both into comparable seconds.
#[test]
fn simulated_disk_scan_vs_sample_economics() {
    let values: Vec<f64> = (0..2_000_000).map(|i| f64::from(i % 97)).collect();
    let disk = SimulatedDisk::with_paper_pages(&values);
    let model = DiskModel::paper_default();

    // Full scan touches ceil(16MB / 1MB) pages.
    let mut checksum = 0.0;
    disk.scan(|v| checksum += v);
    assert!(checksum > 0.0);
    let (seq, _) = disk.transfers();
    assert_eq!(seq, 16);
    let scan_secs = disk.cost(&model).io_seconds;
    disk.reset_transfers();

    // 1000 random fetches: three orders of magnitude fewer bytes... but
    // each pays the random-read cost.
    for i in 0..1000u64 {
        let _ = disk.fetch((i * 1999) % 2_000_000);
    }
    let sample_secs = disk.cost(&model).io_seconds;
    assert!(
        sample_secs < scan_secs,
        "1000 samples ({sample_secs}s) should beat a 16-page scan ({scan_secs}s)"
    );
}

/// Batched rounds through the engine still respect the guarantee.
#[test]
fn batched_engine_run() {
    let model = FlightModel::new(75);
    let mut rng = rand::rngs::StdRng::seed_from_u64(76);
    let table = model.to_table(120_000, &mut rng);
    let engine = NeedleTail::new(table, &["name"]).unwrap();
    let mut groups = query_groups(&engine, "name", "elapsed", &Predicate::True).unwrap();
    let truths: Vec<f64> = groups
        .iter()
        .map(|g| rapidviz::core::GroupSource::true_mean(g).unwrap())
        .collect();
    let config = AlgoConfig::new(720.0, 0.05)
        .with_resolution(7.2)
        .with_samples_per_round(32);
    let mut run_rng = rand::rngs::StdRng::seed_from_u64(77);
    let result = IFocus::new(config).run(&mut groups, &mut run_rng);
    assert!(is_correctly_ordered_with_resolution(
        &result.estimates,
        &truths,
        7.2
    ));
}

/// In-predicate through the whole stack.
#[test]
fn in_predicate_pipeline() {
    let model = FlightModel::new(78);
    let mut rng = rand::rngs::StdRng::seed_from_u64(79);
    let table = model.to_table(60_000, &mut rng);
    let engine = NeedleTail::new(table, &["name"]).unwrap();
    let pred = Predicate::is_in("name", ["AA", "DL", "UA"]);
    let groups = query_groups(&engine, "name", "arr_delay", &pred).unwrap();
    let labels: Vec<String> = groups
        .iter()
        .map(rapidviz::core::GroupSource::label)
        .collect();
    assert_eq!(labels, vec!["AA", "DL", "UA"]);
}
