//! Property-based tests across crate boundaries: random tables through the
//! engine, random group configurations through the algorithms.

use proptest::prelude::*;
use rand::SeedableRng;
use rapidviz::core::{is_correctly_ordered, AlgoConfig, GroupSource, IFocus};
use rapidviz::datagen::VecGroup;
use rapidviz::needletail::{
    ColumnDef, DataType, NeedleTail, Predicate, Schema, TableBuilder, Value,
};
use rapidviz::query_groups;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine scan aggregates equal a naive row-by-row computation for any
    /// random table and random range predicate.
    #[test]
    fn scan_matches_naive(
        rows in proptest::collection::vec((0usize..5, 0.0f64..100.0), 1..300),
        threshold in 0.0f64..100.0,
    ) {
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("g", DataType::Str),
            ColumnDef::new("y", DataType::Float),
        ]));
        for &(g, y) in &rows {
            b.push_row(vec![Value::Str(format!("group{g}")), Value::Float(y)]);
        }
        let engine = NeedleTail::new(b.finish(), &["g"]).unwrap();
        let pred = Predicate::ge("y", threshold);
        let aggs = engine.scan("g", "y", &pred).unwrap();
        // Naive oracle.
        let mut naive: HashMap<String, (u64, f64)> = HashMap::new();
        for &(g, y) in &rows {
            let entry = naive.entry(format!("group{g}")).or_insert((0, 0.0));
            if y >= threshold {
                entry.0 += 1;
                entry.1 += y;
            }
        }
        for agg in aggs {
            let (count, sum) = naive[&agg.group.to_string()];
            prop_assert_eq!(agg.count, count);
            prop_assert!((agg.sum - sum).abs() < 1e-9);
        }
    }

    /// Engine group handles partition the predicate-filtered rows exactly.
    #[test]
    fn group_handles_partition_rows(
        rows in proptest::collection::vec((0usize..4, 0.0f64..100.0), 1..200),
    ) {
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("g", DataType::Str),
            ColumnDef::new("y", DataType::Float),
        ]));
        for &(g, y) in &rows {
            b.push_row(vec![Value::Str(format!("group{g}")), Value::Float(y)]);
        }
        let engine = NeedleTail::new(b.finish(), &["g"]).unwrap();
        let groups = query_groups(&engine, "g", "y", &Predicate::True).unwrap();
        let total: u64 = groups.iter().map(|g| g.len()).sum();
        prop_assert_eq!(total, rows.len() as u64);
        // Exact means match a naive computation.
        for g in &groups {
            let label = g.label();
            let matching: Vec<f64> = rows
                .iter()
                .filter(|(gi, _)| format!("group{gi}") == label)
                .map(|&(_, y)| y)
                .collect();
            let naive = matching.iter().sum::<f64>() / matching.len() as f64;
            prop_assert!((g.true_mean().unwrap() - naive).abs() < 1e-9);
        }
    }

    /// IFOCUS orders correctly whenever the group means are well separated
    /// (gap >= 15 on a [0, 100] range), for arbitrary group means and
    /// seeds. This is a *stronger* empirical statement than the 1-δ bound.
    #[test]
    fn ifocus_orders_separated_groups(
        base in 5.0f64..20.0,
        gap in 15.0f64..35.0,
        k in 2usize..5,
        seed in 0u64..500,
    ) {
        let mut data_rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut groups: Vec<VecGroup> = (0..k)
            .map(|i| {
                let mu = base + gap * i as f64;
                let values: Vec<f64> = (0..8000)
                    .map(|_| if data_rng.gen_bool((mu / 100.0).min(1.0)) { 100.0 } else { 0.0 })
                    .collect();
                VecGroup::new(format!("g{i}"), values)
            })
            .collect();
        let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
        let algo = IFocus::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xdead_beef);
        let result = algo.run(&mut groups, &mut rng);
        prop_assert!(
            is_correctly_ordered(&result.estimates, &truths),
            "estimates {:?} vs truths {:?}",
            result.estimates,
            truths
        );
    }

    /// Sample accounting invariants hold for any run: per-group samples
    /// never exceed the group size (without replacement), and rounds bound
    /// per-group samples.
    #[test]
    fn sample_accounting_invariants(
        k in 2usize..6,
        n in 100usize..2000,
        seed in 0u64..200,
    ) {
        let mut data_rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut groups: Vec<VecGroup> = (0..k)
            .map(|i| {
                let values: Vec<f64> = (0..n).map(|_| data_rng.gen_range(0.0..100.0)).collect();
                VecGroup::new(format!("g{i}"), values)
            })
            .collect();
        let algo = IFocus::new(AlgoConfig::new(100.0, 0.2));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
        let result = algo.run(&mut groups, &mut rng);
        for &m in &result.samples_per_group {
            prop_assert!(m <= n as u64);
            prop_assert!(m <= result.rounds);
            prop_assert!(m >= 1);
        }
        prop_assert_eq!(result.estimates.len(), k);
        prop_assert_eq!(result.labels.len(), k);
    }
}
