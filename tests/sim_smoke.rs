//! Front door to the deterministic simulation harness (`crates/sim`): a
//! fixed-seed smoke batch runs inside the repo's tier-1 suite, so every
//! `cargo test` exercises seeded episodes — randomized workload + chaos
//! schedule, scheduled run, invariant suite, standalone bit-identical
//! replay — under all three scheduler policies. Failures print a
//! `SIM_SEED=<u64>` line that reproduces the minimized episode; see the
//! `rapidviz-sim` crate docs for the full workflow.

use rapidviz::SchedulePolicy;
use rapidviz_sim::{episode_plan, minimize, run_batch, run_seed, EpisodeOptions};

const POLICIES: [SchedulePolicy; 3] = [
    SchedulePolicy::FairShare,
    SchedulePolicy::DeadlineAware,
    SchedulePolicy::GreedyConvergence,
];

#[test]
fn fixed_seed_smoke_batch_under_every_policy() {
    for policy in POLICIES {
        let report = run_batch(42, 25, policy);
        assert_eq!(report.episodes, 25);
        assert!(report.admitted >= 25);
        assert!(report.quanta > 0);
        assert!(report.replayed_steps > 0);
    }
}

#[test]
fn pinned_seed_spread_stays_green() {
    // A fixed spread of raw seeds (not batch-derived): failures here are
    // regressions, not chance, and each prints its own repro line.
    for seed in [0u64, 1, 7, 42, 1337, 0x00AB_CDEF, u64::MAX] {
        for policy in POLICIES {
            if let Err(failure) = run_seed(seed, policy) {
                let minimized = minimize(&episode_plan(seed, policy), &EpisodeOptions::default());
                panic!("{}", failure.report(&minimized));
            }
        }
    }
}
