//! End-to-end pipelines: datagen → NEEDLETAIL engine → sampling algorithms,
//! validated against the SCAN ground truth.

use rand::SeedableRng;
use rapidviz::core::{
    is_correctly_ordered, is_correctly_ordered_with_resolution, AlgoConfig, GroupSource, IFocus,
    IRefine, RoundRobin,
};
use rapidviz::datagen::{DatasetSpec, FlightModel, WorkloadFamily};
use rapidviz::needletail::{NeedleTail, Predicate};
use rapidviz::query_groups;

fn engine_from_spec(spec: &DatasetSpec, seed: u64) -> NeedleTail {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let table = spec.to_table(&mut rng);
    NeedleTail::new(table, &["g"]).expect("engine builds")
}

#[test]
fn ifocus_on_engine_matches_scan_ordering() {
    let spec = DatasetSpec::generate(WorkloadFamily::Bernoulli, 6, 120_000, 17);
    let engine = engine_from_spec(&spec, 18);
    let mut groups = query_groups(&engine, "g", "y", &Predicate::True).unwrap();
    let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();

    // Ground truth via the engine's scan path.
    let scan = engine.scan("g", "y", &Predicate::True).unwrap();
    for (g, s) in groups.iter().zip(&scan) {
        assert_eq!(g.label(), s.group.to_string());
        assert!((g.true_mean().unwrap() - s.mean().unwrap()).abs() < 1e-9);
    }

    let algo = IFocus::new(AlgoConfig::new(100.0, 0.05));
    let mut rng = rand::rngs::StdRng::seed_from_u64(19);
    let result = algo.run(&mut groups, &mut rng);
    assert!(is_correctly_ordered(&result.estimates, &truths));
    assert!(
        result.total_samples() < spec.total_records(),
        "must not read everything"
    );
}

#[test]
fn all_three_algorithms_agree_with_ground_truth_on_engine() {
    let spec = DatasetSpec::generate(WorkloadFamily::TruncNorm, 5, 100_000, 23);
    let engine = engine_from_spec(&spec, 24);
    let truths: Vec<f64> = query_groups(&engine, "g", "y", &Predicate::True)
        .unwrap()
        .iter()
        .map(|g| g.true_mean().unwrap())
        .collect();

    let config = AlgoConfig::new(100.0, 0.05).with_resolution(0.5);
    let mut rng = rand::rngs::StdRng::seed_from_u64(25);

    let mut g1 = query_groups(&engine, "g", "y", &Predicate::True).unwrap();
    let r1 = IFocus::new(config.clone()).run(&mut g1, &mut rng);
    assert!(is_correctly_ordered_with_resolution(
        &r1.estimates,
        &truths,
        0.5
    ));

    let mut g2 = query_groups(&engine, "g", "y", &Predicate::True).unwrap();
    let r2 = IRefine::new(config.clone()).run(&mut g2, &mut rng);
    assert!(is_correctly_ordered_with_resolution(
        &r2.estimates,
        &truths,
        0.5
    ));

    let mut g3 = query_groups(&engine, "g", "y", &Predicate::True).unwrap();
    let r3 = RoundRobin::new(config).run(&mut g3, &mut rng);
    assert!(is_correctly_ordered_with_resolution(
        &r3.estimates,
        &truths,
        0.5
    ));
}

#[test]
fn selection_predicate_pipeline() {
    // §6.3.3: the WHERE clause changes the eligible rows and therefore the
    // true means; the guarantee must hold for the filtered query.
    let model = FlightModel::new(31);
    let mut rng = rand::rngs::StdRng::seed_from_u64(32);
    let table = model.to_table(150_000, &mut rng);
    let engine = NeedleTail::new(table, &["name"]).unwrap();
    let pred = Predicate::ge("dep_delay", 20.0);

    let mut groups = query_groups(&engine, "name", "arr_delay", &pred).unwrap();
    let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
    // Filtered group sizes must match a row-level count (scan returns
    // groups in first-appearance order, the index in sorted order — compare
    // by label).
    let scan = engine.scan("name", "arr_delay", &pred).unwrap();
    for g in &groups {
        let scan_count = scan
            .iter()
            .find(|a| a.group.to_string() == g.label())
            .map(|a| a.count)
            .unwrap_or(0);
        assert_eq!(g.len(), scan_count, "size mismatch for {}", g.label());
    }

    let algo = IFocus::new(AlgoConfig::new(1440.0, 0.05).with_resolution(14.4));
    let mut run_rng = rand::rngs::StdRng::seed_from_u64(33);
    let result = algo.run(&mut groups, &mut run_rng);
    assert!(is_correctly_ordered_with_resolution(
        &result.estimates,
        &truths,
        14.4
    ));
}

#[test]
fn multi_group_by_cross_product() {
    // §6.3.4: GROUP BY name, bucket expressed as one group per cross-product
    // cell, built from indexes on both attributes.
    use rapidviz::needletail::{ColumnDef, DataType, Schema, TableBuilder, Value};
    let mut b = TableBuilder::new(Schema::new(vec![
        ColumnDef::new("name", DataType::Str),
        ColumnDef::new("bucket", DataType::Int),
        ColumnDef::new("y", DataType::Float),
    ]));
    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    use rand::Rng;
    for _ in 0..60_000 {
        let name = ["A", "B"][rng.gen_range(0..2)];
        let bucket = rng.gen_range(0..3i64);
        // Mean depends on the cell: clearly separated cells.
        let mu = match (name, bucket) {
            ("A", 0) => 10.0,
            ("A", 1) => 30.0,
            ("A", 2) => 50.0,
            ("B", 0) => 65.0,
            ("B", 1) => 80.0,
            _ => 92.0,
        };
        let v = if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 };
        b.push_row(vec![name.into(), Value::Int(bucket), Value::Float(v)]);
    }
    let engine = NeedleTail::new(b.finish(), &["name", "bucket"]).unwrap();

    // One handle per (name, bucket) cell via predicates on the other column.
    let mut groups = Vec::new();
    for bucket in 0..3i64 {
        let pred = Predicate::eq("bucket", Value::Int(bucket));
        let cells = query_groups(&engine, "name", "y", &pred).unwrap();
        groups.extend(cells);
    }
    assert_eq!(groups.len(), 6, "2 names x 3 buckets");
    let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();

    let algo = IFocus::new(AlgoConfig::new(100.0, 0.05));
    let mut run_rng = rand::rngs::StdRng::seed_from_u64(42);
    let result = algo.run(&mut groups, &mut run_rng);
    assert!(is_correctly_ordered(&result.estimates, &truths));
}

#[test]
fn skewed_dataset_pipeline() {
    let spec = DatasetSpec::generate_skewed(WorkloadFamily::Bernoulli, 5, 200_000, 0.8, 51);
    let engine = engine_from_spec(&spec, 52);
    let mut groups = query_groups(&engine, "g", "y", &Predicate::True).unwrap();
    // First group really is dominant.
    assert!(groups[0].len() > 150_000);
    let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
    let algo = IFocus::new(AlgoConfig::new(100.0, 0.05));
    let mut rng = rand::rngs::StdRng::seed_from_u64(53);
    let result = algo.run(&mut groups, &mut rng);
    assert!(is_correctly_ordered(&result.estimates, &truths));
}

#[test]
fn metrics_account_for_algorithm_samples() {
    let spec = DatasetSpec::generate(WorkloadFamily::Bernoulli, 4, 80_000, 61);
    let engine = engine_from_spec(&spec, 62);
    engine.metrics().reset();
    let mut groups = query_groups(&engine, "g", "y", &Predicate::True).unwrap();
    let algo = IFocus::new(AlgoConfig::new(100.0, 0.05));
    let mut rng = rand::rngs::StdRng::seed_from_u64(63);
    let result = algo.run(&mut groups, &mut rng);
    let snap = engine.metrics().snapshot();
    assert_eq!(
        snap.random_samples,
        result.total_samples(),
        "engine-side sample accounting must equal the algorithm's"
    );
}
