//! Statistical validation of the headline claims: the ordering guarantee
//! holds empirically across workload families, and the cost hierarchy
//! (ifocusr <= ifocus <= roundrobin, etc.) matches §5's figures.

use rand::SeedableRng;
use rapidviz::core::{
    is_correctly_ordered, is_correctly_ordered_with_resolution, AlgoConfig, IFocus, RoundRobin,
};
use rapidviz::datagen::{DatasetSpec, WorkloadFamily};

const FAMILIES: [WorkloadFamily; 3] = [
    WorkloadFamily::TruncNorm,
    WorkloadFamily::Mixture,
    WorkloadFamily::Bernoulli,
];

/// The paper reports 100% observed accuracy at δ = 0.05 across all
/// distributions; we demand the same over the seeds we run.
#[test]
fn ifocus_accuracy_is_perfect_across_families() {
    for (fi, family) in FAMILIES.iter().enumerate() {
        for rep in 0..8u64 {
            let spec = DatasetSpec::generate(*family, 8, 1_000_000, 100 + rep * 13 + fi as u64);
            let truths = spec.true_means();
            let mut groups = spec.virtual_groups();
            let config = AlgoConfig::new(100.0, 0.05).with_max_rounds(500_000);
            let mut rng = rand::rngs::StdRng::seed_from_u64(200 + rep);
            let result = IFocus::new(config).run(&mut groups, &mut rng);
            if result.truncated {
                continue; // adversarial near-tie seed; capped, no claim
            }
            assert!(
                is_correctly_ordered(&result.estimates, &truths),
                "family {family:?} rep {rep} mis-ordered"
            );
        }
    }
}

#[test]
fn resolution_accuracy_is_perfect_across_families() {
    for (fi, family) in FAMILIES.iter().enumerate() {
        for rep in 0..8u64 {
            let spec = DatasetSpec::generate(*family, 8, 1_000_000, 300 + rep * 17 + fi as u64);
            let truths = spec.true_means();
            let mut groups = spec.virtual_groups();
            let config = AlgoConfig::new(100.0, 0.05).with_resolution(1.0);
            let mut rng = rand::rngs::StdRng::seed_from_u64(400 + rep);
            let result = IFocus::new(config).run(&mut groups, &mut rng);
            assert!(!result.truncated);
            assert!(
                is_correctly_ordered_with_resolution(&result.estimates, &truths, 1.0),
                "family {family:?} rep {rep} violated the relaxed ordering"
            );
        }
    }
}

/// Figure 3a's hierarchy: on the same datasets, the resolution variant
/// samples no more than the exact variant, and IFOCUS no more than
/// ROUNDROBIN.
#[test]
fn cost_hierarchy_matches_figure_3a() {
    let mut ifocus_wins = 0u32;
    let trials = 6u64;
    for rep in 0..trials {
        let spec = DatasetSpec::generate(WorkloadFamily::Mixture, 10, 10_000_000, 500 + rep * 7);
        let base = AlgoConfig::new(100.0, 0.05).with_max_rounds(300_000);

        let mut g = spec.virtual_groups();
        let mut rng = rand::rngs::StdRng::seed_from_u64(600 + rep);
        let r_if = IFocus::new(base.clone()).run(&mut g, &mut rng);

        let mut g = spec.virtual_groups();
        let mut rng = rand::rngs::StdRng::seed_from_u64(600 + rep);
        let r_ifr = IFocus::new(base.clone().with_resolution(1.0)).run(&mut g, &mut rng);

        let mut g = spec.virtual_groups();
        let mut rng = rand::rngs::StdRng::seed_from_u64(600 + rep);
        let r_rr = RoundRobin::new(base).run(&mut g, &mut rng);

        assert!(
            r_ifr.total_samples() <= r_if.total_samples(),
            "rep {rep}: resolution variant sampled more"
        );
        assert!(
            r_if.total_samples() <= r_rr.total_samples(),
            "rep {rep}: ifocus sampled more than roundrobin"
        );
        if r_if.total_samples() * 2 <= r_rr.total_samples() {
            ifocus_wins += 1;
        }
    }
    // The headline: the gap is usually large, not marginal.
    assert!(
        ifocus_wins >= trials as u32 / 2,
        "ifocus should usually beat roundrobin by >= 2x (won {ifocus_wins}/{trials})"
    );
}

/// The -R variants' absolute sample counts are flat in dataset size once
/// the resolution cut-off dominates (Figure 3a/4's flat curves).
#[test]
fn resolution_sample_count_is_size_invariant() {
    let mut totals = Vec::new();
    for &size in &[100_000_000u64, 1_000_000_000, 10_000_000_000] {
        let spec = DatasetSpec::generate(WorkloadFamily::Mixture, 10, size, 700);
        let mut groups = spec.virtual_groups();
        let config = AlgoConfig::new(100.0, 0.05).with_resolution(1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(701);
        let result = IFocus::new(config).run(&mut groups, &mut rng);
        totals.push(result.total_samples() as f64);
    }
    let max = totals.iter().cloned().fold(0.0f64, f64::max);
    let min = totals.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max / min < 1.5,
        "resolution-capped sample counts should be ~constant across sizes: {totals:?}"
    );
}

/// δ barely moves the needle (Figure 3c): sampling at δ = 0.8 is within a
/// small factor of sampling at δ = 0.05.
#[test]
fn delta_has_mild_effect() {
    let spec = DatasetSpec::generate(WorkloadFamily::Mixture, 10, 10_000_000, 800);
    let mut totals = Vec::new();
    for &delta in &[0.05f64, 0.8] {
        let mut groups = spec.virtual_groups();
        let config = AlgoConfig::new(100.0, delta).with_resolution(1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(801);
        totals.push(
            IFocus::new(config)
                .run(&mut groups, &mut rng)
                .total_samples() as f64,
        );
    }
    assert!(totals[1] < totals[0], "larger delta must not cost more");
    assert!(
        totals[0] / totals[1] < 3.0,
        "delta effect should be mild: {totals:?}"
    );
}

/// The hard family's cost scales like 1/γ² (Theorem 3.6's η dependence).
#[test]
fn hard_gamma_quadratic_scaling() {
    let mut costs = Vec::new();
    for &gamma in &[4.0f64, 2.0] {
        let spec = DatasetSpec::generate(WorkloadFamily::Hard { gamma }, 10, 100_000_000, 900);
        let mut groups = spec.virtual_groups();
        let config = AlgoConfig::new(100.0, 0.05).with_max_rounds(2_000_000);
        let mut rng = rand::rngs::StdRng::seed_from_u64(901);
        let result = IFocus::new(config).run(&mut groups, &mut rng);
        assert!(!result.truncated);
        costs.push(result.total_samples() as f64);
    }
    let ratio = costs[1] / costs[0];
    assert!(
        (2.0..8.0).contains(&ratio),
        "halving gamma should roughly quadruple cost, got {ratio} ({costs:?})"
    );
}
