//! Every §6 extension exercised end-to-end.

use rand::{Rng, SeedableRng};
use rapidviz::core::extensions::sum::SizedGroupSource;
use rapidviz::core::extensions::{
    ifocus_count, IFocusMistakes, IFocusMultiAggregate, IFocusPartial, IFocusSum1, IFocusSum2,
    IFocusTopT, IFocusTrends, IFocusValues, NoIndexSampler, VecPairGroup, VecSizedGroup, VecStream,
};
use rapidviz::core::{
    fraction_correct_pairs, is_top_t_correct, is_trend_correct, AlgoConfig, GroupSource,
};
use rapidviz::datagen::VecGroup;

fn two_point_groups(means: &[f64], n: usize, seed: u64) -> Vec<VecGroup> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    means
        .iter()
        .enumerate()
        .map(|(i, &mu)| {
            let values: Vec<f64> = (0..n)
                .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
                .collect();
            VecGroup::new(format!("g{i}"), values)
        })
        .collect()
}

fn truths(groups: &[VecGroup]) -> Vec<f64> {
    groups.iter().map(|g| g.true_mean().unwrap()).collect()
}

#[test]
fn trends_extension() {
    let means = [30.0, 55.0, 40.0, 70.0, 20.0, 65.0];
    let mut groups = two_point_groups(&means, 80_000, 1000);
    let t = truths(&groups);
    let algo = IFocusTrends::new(AlgoConfig::new(100.0, 0.05));
    let mut rng = rand::rngs::StdRng::seed_from_u64(1001);
    let result = algo.run(&mut groups, &mut rng);
    assert!(is_trend_correct(&result.estimates, &t, 0.0));
}

#[test]
fn topt_extension() {
    let means = [10.0, 85.0, 35.0, 60.0, 90.0, 20.0, 70.0, 45.0];
    let mut groups = two_point_groups(&means, 60_000, 1010);
    let t = truths(&groups);
    let algo = IFocusTopT::new(AlgoConfig::new(100.0, 0.05), 3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1011);
    let result = algo.run(&mut groups, &mut rng);
    assert!(is_top_t_correct(&result.estimates, &t, 3, 0.0));
    let top = algo.top_indices(&result);
    assert_eq!(top, vec![4, 1, 6], "90, 85, 70");
}

#[test]
fn mistakes_extension() {
    let means = [20.0, 45.0, 46.0, 75.0, 90.0];
    let mut groups = two_point_groups(&means, 150_000, 1020);
    let t = truths(&groups);
    let algo = IFocusMistakes::new(AlgoConfig::new(100.0, 0.05), 0.15);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1021);
    let result = algo.run(&mut groups, &mut rng);
    assert!(fraction_correct_pairs(&result.estimates, &t) >= 0.85);
}

#[test]
fn values_extension() {
    let means = [25.0, 55.0, 85.0];
    let d = 2.5;
    let mut groups = two_point_groups(&means, 150_000, 1030);
    let t = truths(&groups);
    let algo = IFocusValues::new(AlgoConfig::new(100.0, 0.05), d);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1031);
    let result = algo.run(&mut groups, &mut rng);
    for (est, tr) in result.estimates.iter().zip(&t) {
        assert!(
            (est - tr).abs() <= d,
            "value accuracy violated: {est} vs {tr}"
        );
    }
}

#[test]
fn partial_extension_streams_in_order() {
    let means = [15.0, 40.0, 41.0, 80.0];
    let mut groups = two_point_groups(&means, 150_000, 1040);
    let algo = IFocusPartial::new(AlgoConfig::new(100.0, 0.05));
    let mut rng = rand::rngs::StdRng::seed_from_u64(1041);
    let mut emitted = Vec::new();
    let _ = algo.run(&mut groups, &mut rng, |e| emitted.push(e.group));
    assert_eq!(emitted.len(), 4);
    // The contentious pair (1, 2) certifies after the easy groups.
    let pos = |g: usize| emitted.iter().position(|&x| x == g).unwrap();
    assert!(pos(0) < pos(1).max(pos(2)) || pos(3) < pos(1).max(pos(2)));
}

#[test]
fn sum_known_sizes_extension() {
    // Ordering by SUM where sizes invert the mean ordering.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1050);
    let big: Vec<f64> = (0..80_000)
        .map(|_| if rng.gen_bool(0.3) { 100.0 } else { 0.0 })
        .collect();
    let small: Vec<f64> = (0..4_000)
        .map(|_| if rng.gen_bool(0.9) { 100.0 } else { 0.0 })
        .collect();
    let mut groups = vec![VecGroup::new("big", big), VecGroup::new("small", small)];
    let true_sums: Vec<f64> = groups
        .iter()
        .map(|g| g.true_mean().unwrap() * g.len() as f64)
        .collect();
    assert!(true_sums[0] > true_sums[1]);
    let algo = IFocusSum1::new(AlgoConfig::new(100.0, 0.05));
    let mut run_rng = rand::rngs::StdRng::seed_from_u64(1051);
    let result = algo.run(&mut groups, &mut run_rng);
    assert!(result.estimates[0] > result.estimates[1]);
}

#[test]
fn sum_unknown_sizes_extension() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1060);
    let mut mk = |mean: f64| -> Vec<f64> {
        (0..20_000)
            .map(|_| {
                if rng.gen_bool(mean / 100.0) {
                    100.0
                } else {
                    0.0
                }
            })
            .collect()
    };
    let mut groups = vec![
        VecSizedGroup::new("a", mk(40.0), 0.7), // σ ≈ 28
        VecSizedGroup::new("b", mk(60.0), 0.2), // σ ≈ 12
        VecSizedGroup::new("c", mk(30.0), 0.1), // σ ≈ 3
    ];
    let t: Vec<f64> = groups
        .iter()
        .map(|g| g.true_normalized_sum().unwrap())
        .collect();
    let algo = IFocusSum2::new(AlgoConfig::new(100.0, 0.05).with_resolution(2.0));
    let mut run_rng = rand::rngs::StdRng::seed_from_u64(1061);
    let result = algo.run(&mut groups, &mut run_rng);
    assert!(rapidviz::core::is_correctly_ordered_with_resolution(
        &result.estimates,
        &t,
        2.0
    ));
}

#[test]
fn count_extension() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1070);
    let filler: Vec<f64> = (0..1000).map(|_| rng.gen_range(0.0..100.0)).collect();
    let mut groups = vec![
        VecSizedGroup::new("major", filler.clone(), 0.6),
        VecSizedGroup::new("minor", filler.clone(), 0.25),
        VecSizedGroup::new("rare", filler, 0.15),
    ];
    let config = AlgoConfig::new(100.0, 0.05).with_resolution(0.04);
    let mut run_rng = rand::rngs::StdRng::seed_from_u64(1071);
    let result = ifocus_count(&config, &mut groups, &mut run_rng);
    assert!(result.estimates[0] > result.estimates[1]);
    assert!(result.estimates[1] > result.estimates[2]);
    assert!((result.estimates[0] - 0.6).abs() < 0.06);
}

#[test]
fn multi_aggregate_extension() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1080);
    let specs = [(25.0, 70.0), (55.0, 20.0), (85.0, 45.0)];
    let mut groups: Vec<VecPairGroup> = specs
        .iter()
        .enumerate()
        .map(|(i, &(my, mz))| {
            let pairs: Vec<(f64, f64)> = (0..60_000)
                .map(|_| {
                    (
                        if rng.gen_bool(my / 100.0) { 100.0 } else { 0.0 },
                        if rng.gen_bool(mz / 100.0) { 100.0 } else { 0.0 },
                    )
                })
                .collect();
            VecPairGroup::new(format!("g{i}"), pairs)
        })
        .collect();
    let algo = IFocusMultiAggregate::new(AlgoConfig::new(100.0, 0.05));
    let mut run_rng = rand::rngs::StdRng::seed_from_u64(1081);
    let result = algo.run(&mut groups, &mut run_rng);
    // Y ordering: g0 < g1 < g2; Z ordering: g1 < g2 < g0.
    assert!(result.y_estimates[0] < result.y_estimates[1]);
    assert!(result.y_estimates[1] < result.y_estimates[2]);
    assert!(result.z_estimates[1] < result.z_estimates[2]);
    assert!(result.z_estimates[2] < result.z_estimates[0]);
}

#[test]
fn noindex_extension() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1090);
    let mut mk = |mean: f64, n: usize| -> Vec<f64> {
        (0..n)
            .map(|_| {
                if rng.gen_bool(mean / 100.0) {
                    100.0
                } else {
                    0.0
                }
            })
            .collect()
    };
    let mut stream = VecStream::new(vec![
        ("x".into(), mk(20.0, 40_000)),
        ("y".into(), mk(55.0, 40_000)),
        ("z".into(), mk(85.0, 40_000)),
    ]);
    let t = stream.true_means();
    let algo = NoIndexSampler::new(AlgoConfig::new(100.0, 0.05));
    let mut run_rng = rand::rngs::StdRng::seed_from_u64(1091);
    let result = algo.run(&mut stream, &mut run_rng);
    assert!(rapidviz::core::is_correctly_ordered(&result.estimates, &t));
}
