//! Deadline-skew regressions under a simulated clock: a wall-clock budget
//! slipping past between rounds must produce **exactly one** terminal
//! `BudgetExhausted` update per session — never zero, never two — on both
//! the direct-session and the scheduler path, with repeated `step()` calls
//! re-reporting the frozen terminal and the `Iterator` view fusing after
//! delivering it once (even when `step()` and iteration are mixed).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rapidviz::needletail::{ColumnDef, DataType, NeedleTail, Schema, TableBuilder};
use rapidviz::{
    Clock, MultiQueryScheduler, SchedulePolicy, SchedulerEvent, SimulatedClock, StepOutcome,
    VizQuery,
};
use std::sync::Arc;
use std::time::Duration;

/// Two groups with near-tied means and wide noise: the ordering takes many
/// rounds to certify, leaving plenty of room for a deadline to trip mid-run.
fn slow_engine() -> NeedleTail {
    let mut b = TableBuilder::new(Schema::new(vec![
        ColumnDef::new("g", DataType::Str),
        ColumnDef::new("v", DataType::Float),
    ]));
    let mut rng = StdRng::seed_from_u64(1);
    for i in 0..4000 {
        let (g, mu) = if i % 2 == 0 { ("a", 50.0) } else { ("b", 52.0) };
        let v: f64 = mu + rng.gen_range(-20.0..20.0);
        b.push_row(vec![g.into(), v.into()]);
    }
    NeedleTail::new(b.finish(), &["g"]).unwrap()
}

#[test]
fn deadline_slipping_between_rounds_yields_exactly_one_terminal() {
    let engine = slow_engine();
    let clock = SimulatedClock::new();
    let mut session = VizQuery::new(&engine)
        .group_by("g")
        .avg("v")
        .bound(100.0)
        .clock(Arc::new(clock.clone()))
        .deadline(clock.now() + Duration::from_millis(50))
        .start(StdRng::seed_from_u64(7))
        .unwrap();

    // Plenty of runway before the deadline: rounds keep running.
    for _ in 0..5 {
        assert!(session.step().outcome.is_running());
    }
    let samples_before = session.total_samples();

    // The deadline slips past between two quanta.
    clock.advance(Duration::from_millis(60));
    let terminal = session.step();
    assert_eq!(terminal.outcome, StepOutcome::BudgetExhausted);
    assert_eq!(
        terminal.total_samples, samples_before,
        "the budget-terminal step must not draw"
    );
    assert!(terminal.snapshot.truncated);

    // Poll-style re-reports are frozen, not fresh terminals.
    let again = session.step();
    assert_eq!(again.outcome, StepOutcome::BudgetExhausted);
    assert_eq!(again.total_samples, samples_before);

    // The Iterator view must not deliver the terminal a second time, even
    // though it was reached via explicit step() calls.
    assert!(session.next().is_none());

    let answer = session.finish();
    assert_eq!(answer.outcome, StepOutcome::BudgetExhausted);
    assert!(answer.result.truncated);
}

#[test]
fn iterator_driven_session_delivers_terminal_exactly_once() {
    let engine = slow_engine();
    let clock = SimulatedClock::new();
    let mut session = VizQuery::new(&engine)
        .group_by("g")
        .avg("v")
        .bound(100.0)
        .clock(Arc::new(clock.clone()))
        .timeout(Duration::from_millis(30))
        .start(StdRng::seed_from_u64(9))
        .unwrap();

    let mut rounds = 0u64;
    let mut terminals = 0u64;
    for update in session.by_ref() {
        rounds += 1;
        if !update.outcome.is_running() {
            terminals += 1;
            assert_eq!(update.outcome, StepOutcome::BudgetExhausted);
        }
        if rounds == 4 {
            // The timeout (anchored at start) expires mid-iteration.
            clock.advance(Duration::from_millis(31));
        }
        assert!(rounds < 100_000, "session failed to terminate");
    }
    assert_eq!(
        terminals, 1,
        "exactly one terminal update, never zero or two"
    );
    assert!(session.next().is_none(), "iterator stays fused");
}

#[test]
fn already_expired_deadline_terminates_on_first_step_without_drawing() {
    let engine = slow_engine();
    let clock = SimulatedClock::new();
    clock.advance(Duration::from_millis(10));
    let mut session = VizQuery::new(&engine)
        .group_by("g")
        .avg("v")
        .bound(100.0)
        .clock(Arc::new(clock.clone()))
        .deadline(clock.now()) // now >= deadline from the start
        .start(StdRng::seed_from_u64(11))
        .unwrap();
    let bootstrap = session.total_samples();

    let update = session.step();
    assert_eq!(update.outcome, StepOutcome::BudgetExhausted);
    assert_eq!(
        update.total_samples, bootstrap,
        "only the bootstrap draws; the expired session adds nothing"
    );
    assert!(session.next().is_none());
}

#[test]
fn simulated_timeout_only_trips_once_its_budget_is_spent() {
    let engine = slow_engine();
    let clock = SimulatedClock::new();
    let mut session = VizQuery::new(&engine)
        .group_by("g")
        .avg("v")
        .bound(100.0)
        .clock(Arc::new(clock.clone()))
        .timeout(Duration::from_millis(30))
        .start(StdRng::seed_from_u64(13))
        .unwrap();

    clock.advance(Duration::from_millis(29));
    assert!(
        session.step().outcome.is_running(),
        "one simulated millisecond of budget left"
    );
    clock.advance(Duration::from_millis(2));
    assert_eq!(session.step().outcome, StepOutcome::BudgetExhausted);
}

#[test]
fn scheduler_delivers_exactly_one_terminal_round_on_deadline_skew() {
    let engine = slow_engine();
    let clock = SimulatedClock::new();
    let urgent = VizQuery::new(&engine)
        .group_by("g")
        .avg("v")
        .bound(100.0)
        .clock(Arc::new(clock.clone()))
        .deadline(clock.now() + Duration::from_millis(40))
        .start(StdRng::seed_from_u64(21))
        .unwrap();
    let background = VizQuery::new(&engine)
        .group_by("g")
        .avg("v")
        .bound(100.0)
        .max_samples(200)
        .start(StdRng::seed_from_u64(22))
        .unwrap();

    let mut sched = MultiQueryScheduler::new(SchedulePolicy::DeadlineAware);
    let urgent_id = sched.admit(urgent);
    let _background_id = sched.admit(background);

    let mut polls = 0u64;
    let mut urgent_terminals = 0u64;
    loop {
        polls += 1;
        assert!(polls < 100_000, "scheduler failed to drain");
        if polls == 10 {
            // The deadline slips past between quanta, mid-workload.
            clock.advance(Duration::from_millis(50));
        }
        match sched.poll() {
            SchedulerEvent::Round { id, update } if id == urgent_id => {
                if update.outcome.is_running() {
                    assert_eq!(
                        urgent_terminals, 0,
                        "no running round may follow the terminal"
                    );
                } else {
                    assert_eq!(update.outcome, StepOutcome::BudgetExhausted);
                    urgent_terminals += 1;
                }
            }
            SchedulerEvent::Round { .. } | SchedulerEvent::MemoryEvicted { .. } => {}
            SchedulerEvent::GlobalBudgetExhausted { .. } => unreachable!("no global budget set"),
            SchedulerEvent::Drained => break,
        }
    }
    assert_eq!(
        urgent_terminals, 1,
        "deadline skew must yield exactly one terminal BudgetExhausted round"
    );
    let answer = sched.finish(urgent_id).unwrap();
    assert_eq!(answer.outcome, StepOutcome::BudgetExhausted);
    assert!(answer.result.truncated);
}
