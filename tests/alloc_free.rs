//! Steady-state allocation accounting for the batched sampling pipeline.
//!
//! The PR's acceptance criterion: once the per-sampler scratch arena and
//! the caller's output buffers have warmed up, drawing further batches must
//! perform **zero heap allocation** — the memory-bottleneck regime the
//! PIM-analytics line of work identifies is dominated by exactly this kind
//! of per-batch churn. A counting global allocator (installed for this test
//! binary only) verifies it directly.

// The counting GlobalAlloc below is the one test-only exception to the
// workspace-wide `unsafe_code = "deny"`; rapidviz-lint's unsafe budget
// exempts test targets, and this attribute does the same for rustc.
#![allow(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rapidviz::core::extensions::{IFocusSum2, VecSizedGroup};
use rapidviz::core::group::VecGroup;
use rapidviz::core::{AlgoConfig, AlgorithmStepper, IFocus, SamplingMode, StepOutcome};
use rapidviz::needletail::sampler::RADIX_MIN_BATCH;
use rapidviz::needletail::{
    Bitmap, BitmapSampler, ColumnDef, DataType, NeedleTail, Predicate, Schema,
    SizeEstimatingSampler, TableBuilder,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// System allocator wrapper that counts every allocation (and
/// reallocation; frees are not counted — the claim under test is about
/// acquiring memory, not returning it) **per thread**: libtest runs the
/// tests in this binary concurrently, and a process-global counter would
/// see every sibling test's warm-up allocations inside another test's
/// measurement window. Alongside the count, requested **bytes** are
/// tracked, so tests can additionally assert that a path performs no
/// *table-sized* allocation (an allocation count alone cannot tell a
/// 16-byte label clone from a megabyte bitmap clone).
struct CountingAllocator;

thread_local! {
    // Const-initialized so the first access from inside `alloc` cannot
    // itself allocate (lazy TLS initializers may).
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    static THREAD_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Bumps this thread's counters; silently skipped during TLS teardown,
/// where the slots are no longer accessible (no measurement runs there).
fn count_alloc(bytes: usize) {
    let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
    let _ = THREAD_ALLOC_BYTES.try_with(|c| c.set(c.get() + bytes as u64));
}

// SAFETY-FREE: pure delegation to `System` plus thread-local bumps.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `f` and returns how many allocations this thread performed in it.
fn allocations_during(mut f: impl FnMut()) -> u64 {
    let before = THREAD_ALLOCATIONS.with(Cell::get);
    f();
    THREAD_ALLOCATIONS.with(Cell::get) - before
}

/// Runs `f` and returns how many bytes this thread requested in it.
fn alloc_bytes_during(mut f: impl FnMut()) -> u64 {
    let before = THREAD_ALLOC_BYTES.with(Cell::get);
    f();
    THREAD_ALLOC_BYTES.with(Cell::get) - before
}

fn mixed_bitmap() -> Bitmap {
    let mut positions: Vec<u64> = (10_000..30_000).collect();
    positions.extend((30_000..200_000).step_by(9).map(|p| p as u64));
    Bitmap::from_sorted_positions(&positions, 200_000)
}

#[test]
fn with_replacement_batches_are_allocation_free_at_steady_state() {
    let mut sampler = BitmapSampler::new(mixed_bitmap());
    let mut rng = StdRng::seed_from_u64(1);
    let mut out = Vec::new();
    // Warm-up: grows the scratch arena and the output buffer.
    for _ in 0..3 {
        out.clear();
        sampler.sample_batch_with_replacement(512, &mut rng, &mut out);
    }
    let allocs = allocations_during(|| {
        for _ in 0..50 {
            out.clear();
            sampler.sample_batch_with_replacement(512, &mut rng, &mut out);
        }
    });
    assert_eq!(allocs, 0, "steady-state WR batch must not allocate");
}

#[test]
fn radix_sized_batches_are_allocation_free_at_steady_state() {
    let mut sampler = BitmapSampler::new(mixed_bitmap());
    let mut rng = StdRng::seed_from_u64(2);
    let mut out = Vec::new();
    for _ in 0..3 {
        out.clear();
        sampler.sample_batch_with_replacement(RADIX_MIN_BATCH, &mut rng, &mut out);
    }
    let allocs = allocations_during(|| {
        for _ in 0..20 {
            out.clear();
            sampler.sample_batch_with_replacement(RADIX_MIN_BATCH, &mut rng, &mut out);
        }
    });
    assert_eq!(allocs, 0, "radix-sort resolve path must not allocate");
}

#[test]
fn size_estimating_batches_are_allocation_free_at_steady_state() {
    let mut sampler = SizeEstimatingSampler::new(mixed_bitmap(), 200_000);
    let mut rng = StdRng::seed_from_u64(3);
    let mut out = Vec::new();
    for _ in 0..3 {
        out.clear();
        sampler.sample_batch_with_size_estimate(512, &mut rng, &mut out);
    }
    let allocs = allocations_during(|| {
        for _ in 0..50 {
            out.clear();
            sampler.sample_batch_with_size_estimate(512, &mut rng, &mut out);
        }
    });
    assert_eq!(allocs, 0, "unknown-size SUM batch path must not allocate");
}

#[test]
fn without_replacement_batches_only_allocate_for_swap_growth() {
    let mut sampler = BitmapSampler::new(mixed_bitmap());
    let mut rng = StdRng::seed_from_u64(4);
    let mut out = Vec::new();
    // A large first batch forces the virtual Fisher–Yates swap map to
    // reserve far beyond what the following small batches can fill, so the
    // steady-state window below sees a fully warmed arena AND map.
    out.clear();
    sampler.sample_batch_without_replacement(6_000, &mut rng, &mut out);
    let allocs = allocations_during(|| {
        for _ in 0..3 {
            out.clear();
            sampler.sample_batch_without_replacement(512, &mut rng, &mut out);
        }
    });
    assert_eq!(
        allocs, 0,
        "WOR batches must not allocate while the swap map has headroom"
    );
}

#[test]
fn ifocus_stepper_rounds_are_allocation_free_at_steady_state() {
    // A full IFOCUS round — batched draws through the per-state scratch,
    // ε recomputation, and the deactivation fixpoint in the reusable
    // FixpointScratch arena (members, interval set, removal list) — must
    // not touch the heap once warm. Near-tied means keep both groups
    // active for far more rounds than the measurement window; sampling
    // with replacement keeps the VecGroup draw itself state-free.
    let mut rng = StdRng::seed_from_u64(10);
    let values = |mu: f64, rng: &mut StdRng| -> Vec<f64> {
        (0..20_000)
            .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
            .collect()
    };
    let mut groups = vec![
        VecGroup::new("a", values(45.0, &mut rng)),
        VecGroup::new("b", values(45.3, &mut rng)),
    ];
    let config = AlgoConfig::new(100.0, 0.05).with_mode(SamplingMode::WithReplacement);
    let mut run_rng = StdRng::seed_from_u64(11);
    let mut stepper = IFocus::new(config).start(&mut groups, &mut run_rng);
    // Warm-up: grows the draw scratch, round-index buffer, and fixpoint
    // arena to their steady sizes.
    for _ in 0..5 {
        assert_eq!(
            stepper.step(&mut groups, &mut run_rng),
            StepOutcome::Running
        );
    }
    let allocs = allocations_during(|| {
        for _ in 0..50 {
            assert_eq!(
                stepper.step(&mut groups, &mut run_rng),
                StepOutcome::Running,
                "near-tie must outlast the measurement window"
            );
        }
    });
    assert_eq!(allocs, 0, "steady-state IFOCUS step must not allocate");
}

#[test]
fn sum2_stepper_rounds_are_allocation_free_at_steady_state() {
    // Same claim for the Algorithm-5 stepper: the batched (x, z) draw into
    // the reusable pair buffer plus its deactivation fixpoint (formerly
    // fresh `members`/`to_remove` vectors and a fresh IntervalSet per
    // iteration — the open ROADMAP item) must be allocation-free once the
    // scratch arena has warmed up.
    let mut rng = StdRng::seed_from_u64(12);
    let values = |mu: f64, rng: &mut StdRng| -> Vec<f64> {
        (0..10_000)
            .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
            .collect()
    };
    let mut groups = vec![
        VecSizedGroup::new("a", values(50.0, &mut rng), 0.40),
        VecSizedGroup::new("b", values(50.0, &mut rng), 0.41),
    ];
    let config = AlgoConfig::new(100.0, 0.05);
    let mut run_rng = StdRng::seed_from_u64(13);
    let mut stepper = IFocusSum2::new(config).start(&mut groups, &mut run_rng);
    for _ in 0..5 {
        assert_eq!(
            stepper.step(&mut groups, &mut run_rng),
            StepOutcome::Running
        );
    }
    let allocs = allocations_during(|| {
        for _ in 0..50 {
            assert_eq!(
                stepper.step(&mut groups, &mut run_rng),
                StepOutcome::Running,
                "near-tied fractions must outlast the measurement window"
            );
        }
    });
    assert_eq!(allocs, 0, "steady-state SUM2 step must not allocate");
}

#[test]
fn warm_plan_calls_allocate_no_table_sized_memory() {
    // The PR 5 satellite claim: planning a repeat query must not clone
    // table-sized bitmaps. `Predicate::True` handles alias the index's
    // own bitmaps behind `Arc`, and filtered repeats hit the plan cache,
    // so a warm `group_handles` call allocates only per-handle slivers
    // (labels, sampler state, the output Vec) — a few hundred bytes —
    // while one dense bitmap clone of this 200k-row table would be ≥25 KB
    // on its own. Byte accounting (not allocation counting) is what can
    // tell those apart.
    let mut b = TableBuilder::new(Schema::new(vec![
        ColumnDef::new("g", DataType::Str),
        ColumnDef::new("year", DataType::Float),
        ColumnDef::new("v", DataType::Float),
    ]));
    for i in 0..200_000u32 {
        let name = match i % 3 {
            0 => "a",
            1 => "b",
            _ => "c",
        };
        b.push_row(vec![
            name.into(),
            f64::from(2000 + i % 4).into(),
            f64::from(i % 97).into(),
        ]);
    }
    let engine = NeedleTail::new(b.finish(), &["g", "year"]).unwrap();
    let filter = Predicate::eq("year", 2001.0).and(Predicate::ge("v", 50.0));
    // Warm-up: populate the predicate and plan caches.
    for _ in 0..2 {
        let _ = engine.group_handles("g", "v", &Predicate::True).unwrap();
        let _ = engine.group_handles("g", "v", &filter).unwrap();
    }
    let calls = 10u64;
    let per_call_budget = 4096u64;
    for (label, predicate) in [("True", Predicate::True), ("filtered", filter)] {
        let bytes = alloc_bytes_during(|| {
            for _ in 0..calls {
                let handles = engine.group_handles("g", "v", &predicate).unwrap();
                assert_eq!(handles.len(), 3);
                std::hint::black_box(&handles);
            }
        });
        assert!(
            bytes < calls * per_call_budget,
            "{label}: warm planning allocated {bytes} bytes over {calls} calls \
             (> {per_call_budget}/call) — something is cloning table-scale state"
        );
    }
}

#[test]
fn engine_group_handle_batches_are_allocation_free_at_steady_state() {
    let mut b = TableBuilder::new(Schema::new(vec![
        ColumnDef::new("g", DataType::Str),
        ColumnDef::new("v", DataType::Float),
    ]));
    for i in 0..40_000u32 {
        let name = if i % 3 == 0 { "a" } else { "b" };
        b.push_row(vec![name.into(), f64::from(i % 97).into()]);
    }
    let engine = NeedleTail::new(b.finish(), &["g"]).unwrap();
    let mut handles = engine.group_handles("g", "v", &Predicate::True).unwrap();
    let handle = &mut handles[0];
    let mut rng = StdRng::seed_from_u64(5);
    let mut out = Vec::new();
    for _ in 0..3 {
        out.clear();
        handle.sample_batch_with_replacement(256, &mut rng, &mut out);
    }
    let allocs = allocations_during(|| {
        for _ in 0..50 {
            out.clear();
            handle.sample_batch_with_replacement(256, &mut rng, &mut out);
        }
    });
    assert_eq!(allocs, 0, "engine batch path must not allocate");
}
