//! End-to-end regression tests for the zero-copy plan cache (PR 5): a
//! query planned from warm caches (shared predicate bitmap + cached group
//! plan) must produce **byte-identical** fixed-seed answers to the same
//! query planned cold — same RNG stream, same draw order, same estimates
//! down to the last bit (compared via `f64::to_bits`). If the cache ever
//! changed group order, eligible counts, or the select() mapping, these
//! tests fail loudly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rapidviz::needletail::{ColumnDef, DataType, NeedleTail, Predicate, Schema, TableBuilder};
use rapidviz::{MultiQueryScheduler, QueryAnswer, SchedulePolicy, VizQuery};

fn engine() -> NeedleTail {
    let mut b = TableBuilder::new(Schema::new(vec![
        ColumnDef::new("name", DataType::Str),
        ColumnDef::new("origin", DataType::Str),
        ColumnDef::new("delay", DataType::Float),
    ]));
    let mut rng = StdRng::seed_from_u64(500);
    for _ in 0..30_000 {
        let (name, mu) = [("AA", 60.0), ("JB", 20.0), ("UA", 85.0)][rng.gen_range(0..3)];
        let origin = ["BOS", "SFO", "LAX"][rng.gen_range(0..3)];
        let delay = if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 };
        b.push_row(vec![name.into(), origin.into(), delay.into()]);
    }
    NeedleTail::new(b.finish(), &["name", "origin"]).unwrap()
}

fn estimate_bits(answer: &QueryAnswer) -> Vec<(String, u64)> {
    answer
        .result
        .labels
        .iter()
        .cloned()
        .zip(answer.result.estimates.iter().map(|e| e.to_bits()))
        .collect()
}

#[test]
fn warm_plan_execute_is_bit_identical_to_cold() {
    let shared = engine();
    let query = |e: &NeedleTail| {
        VizQuery::new(e)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .resolution_pct(1.0)
            .filter(Predicate::eq("origin", "BOS").and(Predicate::le("delay", 100.0)))
            .execute(&mut StdRng::seed_from_u64(42))
            .unwrap()
    };
    let cold = query(&shared); // first call: caches empty
    let warm = query(&shared); // second call: predicate + plan cache hits
    let recold = query(&engine()); // fresh engine: cold again
    assert_eq!(cold.ranked_labels(), vec!["JB", "AA", "UA"]);
    assert_eq!(estimate_bits(&cold), estimate_bits(&warm));
    assert_eq!(estimate_bits(&cold), estimate_bits(&recold));
    assert_eq!(cold.result.total_samples(), warm.result.total_samples());
}

#[test]
fn warm_plan_multi_attribute_session_is_bit_identical_to_cold() {
    let shared = engine();
    let run = |e: &NeedleTail| {
        let mut session = VizQuery::new(e)
            .group_by("name")
            .group_by("origin")
            .avg("delay")
            .bound(100.0)
            .resolution_pct(2.0)
            .filter(Predicate::eq("origin", "BOS").or(Predicate::eq("origin", "SFO")))
            .start(StdRng::seed_from_u64(7))
            .unwrap();
        while session.step().outcome.is_running() {}
        session.finish()
    };
    let cold = run(&shared);
    let warm = run(&shared);
    assert_eq!(
        cold.result.labels.len(),
        6,
        "LAX cells are emptied by the filter"
    );
    assert_eq!(estimate_bits(&cold), estimate_bits(&warm));
}

#[test]
fn scheduler_fanout_over_shared_predicate_matches_standalone() {
    // The motivating workload: a four-tile dashboard sharing one WHERE
    // clause. The second/third/fourth admissions plan entirely from cache;
    // every tile's answer must still be byte-identical to the same session
    // run standalone against a fresh (cold) engine.
    let filter = Predicate::eq("origin", "SFO");
    let make = |e: &NeedleTail, seed: u64| {
        VizQuery::new(e)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .resolution_pct(1.0)
            .filter(filter.clone())
            .start(StdRng::seed_from_u64(seed))
            .unwrap()
    };

    let warm_engine = engine();
    let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare);
    let ids: Vec<_> = (0..4)
        .map(|i| sched.admit(make(&warm_engine, 100 + i)))
        .collect();
    sched.run(|_| {});
    let mut scheduled: Vec<(rapidviz::QueryId, QueryAnswer)> = sched.finish_all();

    let cold_engine = engine();
    for (i, id) in ids.iter().enumerate() {
        let mut standalone = make(&cold_engine, 100 + i as u64);
        while standalone.step().outcome.is_running() {}
        let reference = standalone.finish();
        let (sched_id, scheduled_answer) = scheduled.remove(0);
        assert_eq!(sched_id, *id);
        assert_eq!(
            estimate_bits(&reference),
            estimate_bits(&scheduled_answer),
            "tile {i} must be unperturbed by cache sharing and scheduling"
        );
    }
}

#[test]
fn clearing_caches_mid_stream_does_not_perturb_results() {
    let shared = engine();
    let query = |e: &NeedleTail, seed: u64| {
        VizQuery::new(e)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .resolution_pct(1.0)
            .filter(Predicate::eq("origin", "LAX"))
            .execute(&mut StdRng::seed_from_u64(seed))
            .unwrap()
    };
    let warm = query(&shared, 9); // populate
    let warm2 = query(&shared, 9); // cache hit
    shared.clear_plan_caches();
    let recold = query(&shared, 9); // rebuilt from scratch
    assert_eq!(estimate_bits(&warm), estimate_bits(&warm2));
    assert_eq!(estimate_bits(&warm), estimate_bits(&recold));
}

#[test]
fn planning_stats_distinguish_cold_from_warm_sessions() {
    let shared = engine();
    let start = |e: &NeedleTail, seed: u64| {
        VizQuery::new(e)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .filter(Predicate::eq("origin", "BOS"))
            .max_samples(2_000)
            .start(StdRng::seed_from_u64(seed))
            .unwrap()
    };

    // Cold: the predicate bitmap and the group plan are both built from
    // scratch — misses, no full warmth.
    let cold = start(&shared, 1).planning_stats();
    assert!(cold.plan_misses >= 1, "cold plan should miss: {cold:?}");
    assert!(!cold.fully_warm());

    // Warm repeat: every planning structure comes out of the caches.
    let warm = start(&shared, 2).planning_stats();
    assert!(warm.plan_hits >= 1, "warm repeat should hit: {warm:?}");
    assert_eq!(warm.plan_misses, 0, "{warm:?}");
    assert_eq!(warm.predicate_misses, 0, "{warm:?}");
    assert!(warm.fully_warm(), "{warm:?}");

    // The same stats surface through the scheduler's per-session view.
    let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare);
    let id = sched.admit(start(&shared, 3));
    let stats = sched.stats(id).unwrap();
    assert!(stats.planning.fully_warm(), "{:?}", stats.planning);

    // Clearing the caches makes the next session plan cold again.
    shared.clear_plan_caches();
    let recold = start(&shared, 4).planning_stats();
    assert!(recold.plan_misses >= 1, "{recold:?}");
    assert!(!recold.fully_warm());
}
