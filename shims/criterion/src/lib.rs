//! Offline shim implementing the subset of the `criterion` API this
//! workspace's benches use.
//!
//! The build environment cannot reach crates.io, so benches link against
//! this minimal harness instead of the real statistics engine. It measures
//! wall-clock time with `std::time::Instant`, auto-calibrates an iteration
//! count to fill the configured measurement window, and prints
//! `name  time: [median ...]`-style lines. Supported:
//!
//! * [`Criterion`] with `warm_up_time` / `measurement_time`,
//!   `benchmark_group`, and direct `bench_function`;
//! * [`BenchmarkGroup`] with `sample_size`, `bench_function`,
//!   `bench_with_input`, `finish`;
//! * [`Bencher::iter`] and [`Bencher::iter_batched`] with [`BatchSize`];
//! * [`BenchmarkId`], [`black_box`], `criterion_group!`, `criterion_main!`.
//!
//! CLI behaviour: a single positional argument filters benchmarks by
//! substring; `--test` (what `cargo test` passes to bench targets) or
//! `--quick` runs every benchmark exactly once for a fast smoke pass.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (shim: ignored beyond API).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_id/parameter`.
    pub fn new(function_id: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark id string (accepts `&str`, `String`,
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Per-run timing settings plus the parsed CLI filter.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    filter: Option<String>,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut quick = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" | "--quick" => quick = true,
                "--bench" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_owned()),
            }
        }
        if std::env::var_os("CRITERION_QUICK").is_some() {
            quick = true;
        }
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            filter,
            quick,
        }
    }
}

impl Criterion {
    /// Sets the warm-up window.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.run_one(&id, &mut f);
        self
    }

    fn run_one<F>(&self, id: &str, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            warm_up: if self.quick {
                Duration::ZERO
            } else {
                self.warm_up
            },
            measurement: self.measurement,
            quick: self.quick,
            ns_per_iter: None,
        };
        f(&mut b);
        match b.ns_per_iter {
            Some(ns) => println!("{id:<50} time: [{}]", format_ns(ns)),
            None => println!("{id:<50} (no measurement recorded)"),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a closure under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Benchmarks a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion
            .run_one(&full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Runs and times the benchmarked routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    quick: bool,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `routine`, auto-scaling the iteration count to the measurement
    /// window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.quick {
            black_box(routine());
            self.ns_per_iter = Some(0.0);
            return;
        }
        // Warm-up + calibration: how long does one call take?
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        loop {
            black_box(routine());
            calib_iters += 1;
            if calib_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        let target = (self.measurement.as_secs_f64() / per_iter.max(1e-9)) as u64;
        let iters = target.clamp(1, 1_000_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.ns_per_iter = Some(total.as_secs_f64() * 1e9 / iters as f64);
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time
    /// from the reported figure.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.quick {
            let input = setup();
            black_box(routine(input));
            self.ns_per_iter = Some(0.0);
            return;
        }
        // Calibrate.
        let mut calib_iters = 0u64;
        let mut spent = Duration::ZERO;
        while spent < self.warm_up {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            spent += t.elapsed();
            calib_iters += 1;
        }
        let per_iter = spent.as_secs_f64() / calib_iters as f64;
        let target = (self.measurement.as_secs_f64() / per_iter.max(1e-9)) as u64;
        let iters = target.clamp(1, 1_000_000_000);
        let mut measured = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            measured += t.elapsed();
        }
        self.ns_per_iter = Some(measured.as_secs_f64() * 1e9 / iters as f64);
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).into_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).into_id(), "7");
    }

    #[test]
    fn quick_mode_runs_once() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(1),
            filter: None,
            quick: true,
        };
        let mut calls = 0u32;
        c.bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(1),
            filter: Some("nomatch".into()),
            quick: true,
        };
        let mut calls = 0u32;
        c.bench_function("other", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 0);
    }
}
