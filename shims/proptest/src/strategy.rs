//! The [`Strategy`] trait and the built-in strategy types.
//!
//! A strategy here is simply "a way to sample a random value" — no shrink
//! trees. `sample_value` takes `&self` so range expressions (which are
//! `Copy`-less iterators in std) can still be written inline; all built-in
//! strategies clone what they need.

use crate::test_runner::TestRng;
use rand::Rng;

/// A source of random values for property tests.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Samples one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample_value(rng)
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Wraps a sampling closure as a strategy (used by `prop_compose!`).
pub struct FnStrategy<F>(pub F);

impl<F, T> Strategy for FnStrategy<F>
where
    F: Fn(&mut TestRng) -> T,
{
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ ));* $(;)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
