//! Offline shim implementing the subset of the `proptest` API this
//! workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal property-testing harness with the same surface syntax:
//!
//! * the [`proptest!`] and [`prop_compose!`] macros (including the
//!   two-stage dependent-strategy form and `#![proptest_config(..)]`);
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * strategies: ranges over ints/floats, tuples, [`Just`],
//!   `prop_map`, [`collection::vec`], [`collection::btree_set`], and
//!   `num::<ty>::ANY`.
//!
//! Differences from real proptest: cases are generated from a deterministic
//! per-test seed (no `PROPTEST_` env handling) and **failures do not
//! shrink** — the failing input is reported as-is in the panic message.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod collection;
pub mod num;

pub use strategy::{FnStrategy, Just, Strategy};
pub use test_runner::TestRng;

/// Runner configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Stable 64-bit FNV-1a hash of a string (per-test seed derivation).
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{FnStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest, ProptestConfig,
    };
}

/// Asserts a condition inside a property, reporting the case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_internal!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_internal!{ [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_internal {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..u64::from(__cfg.cases) {
                let mut __rng = $crate::TestRng::deterministic(__seed, __case);
                $(let $pat = $crate::Strategy::sample_value(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_internal!{ [$cfg] $($rest)* }
    };
}

/// Declares a named strategy-composing function. Supports the one- and
/// two-stage forms:
///
/// ```ignore
/// prop_compose! {
///     fn arb(max: u64)
///         (len in 1..max)
///         (xs in collection::vec(0..len, 0..8), len in Just(len))
///         -> (Vec<u64>, u64)
///     { (xs, len) }
/// }
/// ```
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
            ($($p1:pat in $s1:expr),+ $(,)?)
            -> $ret:ty
        $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy(move |__rng: &mut $crate::TestRng| {
                $(let $p1 = $crate::Strategy::sample_value(&($s1), __rng);)+
                $body
            })
        }
    };
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
            ($($p1:pat in $s1:expr),+ $(,)?)
            ($($p2:pat in $s2:expr),+ $(,)?)
            -> $ret:ty
        $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy(move |__rng: &mut $crate::TestRng| {
                $(let $p1 = $crate::Strategy::sample_value(&($s1), __rng);)+
                $(let $p2 = $crate::Strategy::sample_value(&($s2), __rng);)+
                $body
            })
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 0u64..100, y in -5i32..5, z in 0.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn tuples_and_map(
            iv in (0.0f64..10.0, 0.0f64..5.0).prop_map(|(lo, w)| (lo, lo + w)),
        ) {
            prop_assert!(iv.1 >= iv.0);
        }

        #[test]
        fn vec_sizes(v in collection::vec(0u8..10, 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn btree_set_unique(s in collection::btree_set(0u64..1000, 1..32)) {
            prop_assert!(!s.is_empty() && s.len() < 32);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_accepted(x in 0u8..2) {
            prop_assert!(x < 2);
        }
    }

    prop_compose! {
        fn arb_pair(max: u64)
            (len in 1..max)
            (xs in collection::vec(0..len, 0..8), len in Just(len))
            -> (Vec<u64>, u64)
        {
            (xs, len)
        }
    }

    proptest! {
        #[test]
        fn compose_dependent((xs, len) in arb_pair(500)) {
            prop_assert!(len >= 1 && len < 500);
            prop_assert!(xs.iter().all(|&x| x < len));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic(9, 3);
        let mut b = crate::TestRng::deterministic(9, 3);
        let s = 0u64..1_000_000;
        assert_eq!(
            crate::Strategy::sample_value(&s, &mut a),
            crate::Strategy::sample_value(&(0u64..1_000_000), &mut b)
        );
    }
}
