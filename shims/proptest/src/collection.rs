//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;

/// A size specification: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..self.hi)
    }
}

/// Strategy producing `Vec`s of values from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample_value(rng)).collect()
    }
}

/// Strategy producing `BTreeSet`s of values from `element`.
///
/// The target size is drawn from `size`; if the element domain is too small
/// to reach it, the set saturates at whatever distinct values a bounded
/// number of attempts produced (mirroring proptest's best-effort semantics).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        let budget = target * 16 + 64;
        while out.len() < target && attempts < budget {
            out.insert(self.element.sample_value(rng));
            attempts += 1;
        }
        out
    }
}
