//! Deterministic RNG driving case generation.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The case-generation RNG: a [`StdRng`] seeded from the test's name hash
/// and case index so every run of the suite explores the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for case `case` of the test whose name hashes to `seed`.
    #[must_use]
    pub fn deterministic(seed: u64, case: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
