//! Whole-domain numeric strategies (`proptest::num::<ty>::ANY`).

macro_rules! any_int {
    ($($m:ident, $t:ty);* $(;)?) => {$(
        /// `ANY` strategy for the named integer type.
        pub mod $m {
            use crate::strategy::Strategy;
            use crate::test_runner::TestRng;
            use rand::RngCore;

            /// Uniform over the whole domain.
            #[derive(Debug, Clone, Copy)]
            pub struct Any;

            /// Uniform over the whole domain.
            pub const ANY: Any = Any;

            impl Strategy for Any {
                type Value = $t;

                #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

any_int! {
    u8, u8; u16, u16; u32, u32; u64, u64; usize, usize;
    i8, i8; i16, i16; i32, i32; i64, i64; isize, isize;
}
