//! Offline shim implementing the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, dependency-free stand-in instead of the real
//! crate. Only what the repo actually calls is provided:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range` (half-open and inclusive integer
//!   and float ranges), `gen_bool`, and `fill_bytes`;
//! * [`SeedableRng`] with `from_seed` and `seed_from_u64`;
//! * [`rngs::StdRng`] — here a xoshiro256** generator seeded via SplitMix64
//!   (deterministic, high-quality, but **not** the ChaCha12 stream of the
//!   real `StdRng`; seeds are only meaningful within this workspace);
//! * [`seq::SliceRandom`] with `shuffle` and `choose`.
//!
//! The statistical quality (equidistribution, period 2^256 − 1) is more than
//! sufficient for the sampling algorithms and tests in this repository.

#![forbid(unsafe_code)]

/// The core abstraction: a source of random `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly sampleable from a range (drives `gen_range` inference:
/// one generic [`SampleRange`] impl per range shape, like real rand).
pub trait SampleUniform: PartialOrd + Sized {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift with rejection
/// (exactly unbiased).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        let lo = m as u64;
        if lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
        // Reject to remove modulo bias (rare: p < bound / 2^64).
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                let v = uniform_u64(rng, span);
                (lo as i128 + v as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Full u64/i64 domain: a raw word is already uniform.
                    return rng.next_u64() as $t;
                }
                let v = uniform_u64(rng, span as u64);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty, $mantissa:expr);*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> (64 - $mantissa)) as $t
                    / (1u64 << $mantissa) as $t;
                let v = lo + unit * (hi - lo);
                // Guard against rounding up to the exclusive bound.
                if v < hi { v } else { lo }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> (64 - $mantissa)) as $t
                    / ((1u64 << $mantissa) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_uniform!(f64, 53; f32, 24);

/// Ergonomic extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let word = sm.next().to_le_bytes();
            let take = (bytes.len() - i).min(8);
            bytes[i..i + take].copy_from_slice(&word[..take]);
            i += take;
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used only for seed expansion.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256**.
    ///
    /// NOT the ChaCha12 generator of the real `rand::rngs::StdRng`; streams
    /// are deterministic per seed but only comparable within this workspace.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state words. Together with
        /// [`StdRng::from_state`] this makes the generator checkpointable:
        /// a restored generator continues the exact stream the saved one
        /// would have produced.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from previously captured
        /// [`state`](StdRng::state) words. An all-zero state (a xoshiro
        /// fixed point, never produced by a seeded generator) is nudged to
        /// the same canonical constants `from_seed` uses.
        #[must_use]
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Self { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffle / choose over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y: i64 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0..100u64);
        assert!(v < 100);
        assert!(dyn_rng.choose_helper());
    }

    trait ChooseHelper {
        fn choose_helper(&mut self) -> bool;
    }

    impl ChooseHelper for &mut dyn RngCore {
        fn choose_helper(&mut self) -> bool {
            let v: u8 = self.gen_range(0..2);
            v < 2
        }
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(7);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn from_state_nudges_all_zero() {
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
