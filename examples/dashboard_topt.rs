//! Top-t dashboards (§6.1.2): with 40 product lines on a revenue
//! dashboard, the analyst looks at the top 5 — certify and order exactly
//! those, skipping the sampling the other 35 comparisons would need.
//!
//! Also demonstrates the allowed-mistakes variant (§6.1.3) on the same
//! data.
//!
//! ```text
//! cargo run --release --example dashboard_topt
//! ```

use rand::{Rng, SeedableRng};
use rapidviz::core::extensions::{IFocusMistakes, IFocusTopT};
use rapidviz::core::{is_top_t_correct, AlgoConfig, GroupSource, IFocus};
use rapidviz::datagen::VecGroup;

fn make_groups(seed: u64) -> Vec<VecGroup> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..40)
        .map(|i| {
            let mu: f64 = rng.gen_range(5.0..95.0);
            let values: Vec<f64> = (0..100_000)
                .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
                .collect();
            VecGroup::new(format!("product-{i:02}"), values)
        })
        .collect()
}

fn main() {
    let mut groups = make_groups(3);
    let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
    let total: u64 = groups.iter().map(GroupSource::len).sum();

    // Certify the top 5 of 40.
    let algo = IFocusTopT::new(AlgoConfig::new(100.0, 0.05).with_resolution(0.5), 5);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let result = algo.run(&mut groups, &mut rng);
    println!("top-5 of 40 product lines (certified w.p. >= 0.95):");
    for &i in &algo.top_indices(&result) {
        println!(
            "  {:<12} est {:>5.1}  (true {:>5.1})",
            result.labels[i], result.estimates[i], truths[i]
        );
    }
    println!(
        "correct: {}; cost: {} samples ({:.2}% of data)",
        is_top_t_correct(&result.estimates, &truths, 5, 0.5),
        result.total_samples(),
        100.0 * result.fraction_sampled(total)
    );

    // Baseline: certifying the FULL ordering of all 40 groups costs more.
    let mut groups_full = make_groups(3);
    let full = IFocus::new(AlgoConfig::new(100.0, 0.05).with_resolution(0.5));
    let mut rng_full = rand::rngs::StdRng::seed_from_u64(4);
    let result_full = full.run(&mut groups_full, &mut rng_full);
    println!(
        "full 40-group ordering for comparison: {} samples ({:.1}x the top-5 cost)",
        result_full.total_samples(),
        result_full.total_samples() as f64 / result.total_samples() as f64
    );

    // Allowed mistakes: tolerate mis-ordering 2% of pairs, finish earlier.
    let mut groups_gamma = make_groups(3);
    let lenient = IFocusMistakes::new(AlgoConfig::new(100.0, 0.05).with_resolution(0.5), 0.02);
    let mut rng_gamma = rand::rngs::StdRng::seed_from_u64(4);
    let result_gamma = lenient.run(&mut groups_gamma, &mut rng_gamma);
    println!(
        "allowing 2% pair mistakes: {} samples ({:.1}% of data)",
        result_gamma.total_samples(),
        100.0 * result_gamma.fraction_sampled(total)
    );
}
