//! SUM and COUNT with ordering guarantees (§6.3.1–§6.3.2).
//!
//! Ranking product lines by *total revenue* (SUM) gives a different — and
//! differently hard — ordering than ranking by average sale: a bargain
//! line with huge volume can out-total a luxury line. This example runs
//! Algorithm 4 (known group sizes), Algorithm 5 (unknown sizes, using
//! paired size estimates), and the COUNT variant.
//!
//! ```text
//! cargo run --release --example sum_aggregates
//! ```

use rand::{Rng, SeedableRng};
use rapidviz::core::extensions::{ifocus_count, IFocusSum1, IFocusSum2, VecSizedGroup};
use rapidviz::core::viz::bar_chart;
use rapidviz::core::{AlgoConfig, IFocus};
use rapidviz::datagen::VecGroup;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    // (label, mean sale value, number of sales)
    let spec: [(&str, f64, usize); 4] = [
        ("bargain", 12.0, 400_000),
        ("standard", 35.0, 120_000),
        ("premium", 60.0, 40_000),
        ("luxury", 95.0, 8_000),
    ];
    let mut groups: Vec<VecGroup> = spec
        .iter()
        .map(|&(label, mu, n)| {
            let values: Vec<f64> = (0..n)
                .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
                .collect();
            VecGroup::new(label, values)
        })
        .collect();

    // Ordering by AVG: bargain < standard < premium < luxury.
    let mut avg_groups = groups.clone();
    let avg = IFocus::new(AlgoConfig::new(100.0, 0.05))
        .run(&mut avg_groups, &mut rand::rngs::StdRng::seed_from_u64(32));
    println!("ordered by AVG(sale):");
    let labels: Vec<&str> = avg.labels.iter().map(String::as_str).collect();
    print!("{}", bar_chart(&labels, &avg.estimates, 40));

    // Ordering by SUM (Algorithm 4, sizes known): volume flips the ranking.
    let sum = IFocusSum1::new(AlgoConfig::new(100.0, 0.05))
        .run(&mut groups, &mut rand::rngs::StdRng::seed_from_u64(33));
    println!("\nordered by SUM(sale) — Algorithm 4 (known group sizes):");
    for i in sum.order_by_estimate().into_iter().rev() {
        println!(
            "  {:<10} ≈ {:>12.0}   ({} samples)",
            sum.labels[i], sum.estimates[i], sum.samples_per_group[i]
        );
    }
    assert_eq!(
        sum.order_by_estimate().last(),
        Some(&0),
        "bargain should win on total"
    );

    // Algorithm 5: sizes unknown — the engine supplies (x, z) pairs.
    let total: usize = spec.iter().map(|s| s.2).sum();
    let mut sized: Vec<VecSizedGroup> = spec
        .iter()
        .map(|&(label, mu, n)| {
            let values: Vec<f64> = (0..20_000)
                .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
                .collect();
            VecSizedGroup::new(label, values, n as f64 / total as f64)
        })
        .collect();
    let sum2 = IFocusSum2::new(AlgoConfig::new(100.0, 0.05).with_resolution(1.0))
        .run(&mut sized, &mut rand::rngs::StdRng::seed_from_u64(34));
    println!("\nnormalized sums — Algorithm 5 (sizes estimated on the fly):");
    for i in sum2.order_by_estimate().into_iter().rev() {
        println!("  {:<10} ≈ {:>7.3}", sum2.labels[i], sum2.estimates[i]);
    }

    // COUNT: rank lines by sales volume alone.
    let counts = ifocus_count(
        &AlgoConfig::new(100.0, 0.05).with_resolution(0.02),
        &mut sized,
        &mut rand::rngs::StdRng::seed_from_u64(35),
    );
    println!("\nnormalized COUNTs:");
    for i in counts.order_by_estimate().into_iter().rev() {
        println!("  {:<10} ≈ {:>6.3}", counts.labels[i], counts.estimates[i]);
    }
}
