//! Ad-hoc exploration of a CSV file: ingest → index → guaranteed-ordering
//! bar chart, with persistence to NEEDLETAIL's binary format.
//!
//! ```text
//! cargo run --release --example csv_explore [path/to/file.csv group_col measure_col]
//! ```
//!
//! Without arguments it generates a synthetic flight CSV in a temp
//! directory and explores that.

use rand::SeedableRng;
use rapidviz::core::viz::bar_chart;
use rapidviz::core::{AlgoConfig, IFocus};
use rapidviz::datagen::FlightModel;
use rapidviz::needletail::{read_csv, read_table, write_table, CsvOptions, NeedleTail, Predicate};
use rapidviz::query_groups;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (csv_text, group_col, measure_col) = match args.as_slice() {
        [path, g, m] => (
            std::fs::read_to_string(path).expect("readable csv"),
            g.clone(),
            m.clone(),
        ),
        _ => (synthetic_csv(), "name".to_owned(), "arr_delay".to_owned()),
    };

    let table = read_csv(&csv_text, &CsvOptions::default()).expect("valid csv");
    println!(
        "loaded {} rows x {} columns",
        table.row_count(),
        table.schema().arity()
    );

    // Persist and reload through the binary format (checksummed).
    let path = std::env::temp_dir().join("rapidviz_example.ntbl");
    let file = std::fs::File::create(&path).expect("writable temp file");
    write_table(&table, file).expect("serializes");
    let file = std::fs::File::open(&path).expect("readable temp file");
    let table = read_table(std::io::BufReader::new(file)).expect("deserializes");
    println!("round-tripped through {}", path.display());

    let engine = NeedleTail::new(table, &[group_col.as_str()]).expect("engine builds");
    let mut groups =
        query_groups(&engine, &group_col, &measure_col, &Predicate::True).expect("query plans");
    let c = groups
        .iter()
        .map(|g| g.handle().exact_mean().unwrap_or(0.0))
        .fold(0.0f64, f64::max)
        * 4.0
        + 1.0;

    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let result =
        IFocus::new(AlgoConfig::new(c, 0.05).with_resolution(c / 100.0)).run(&mut groups, &mut rng);

    println!(
        "\nAVG({measure_col}) BY {group_col} — ordering guaranteed w.p. >= 0.95, \
         {} samples:",
        result.total_samples()
    );
    let order = result.order_by_estimate();
    let labels: Vec<&str> = order.iter().map(|&i| result.labels[i].as_str()).collect();
    let values: Vec<f64> = order.iter().map(|&i| result.estimates[i]).collect();
    print!("{}", bar_chart(&labels, &values, 40));
    let _ = std::fs::remove_file(&path);
}

fn synthetic_csv() -> String {
    let model = FlightModel::new(9);
    let mut rng = rand::rngs::StdRng::seed_from_u64(10);
    let table = model.to_table(60_000, &mut rng);
    // Render the table back to CSV text (simple unquoted fields).
    let mut out = String::from("name,elapsed,arr_delay,dep_delay\n");
    for row in 0..table.row_count() {
        for c in 0..4 {
            if c > 0 {
                out.push(',');
            }
            out.push_str(&table.value(row, c).to_string());
        }
        out.push('\n');
    }
    out
}
