//! The five-line path: `VizQuery` from ingestion to guaranteed bar chart,
//! including a filtered query (§6.3.3) and a two-attribute group-by
//! (§6.3.4) through the composite index.
//!
//! ```text
//! cargo run --release --example query_api
//! ```

use rand::SeedableRng;
use rapidviz::datagen::FlightModel;
use rapidviz::needletail::{NeedleTail, Predicate};
use rapidviz::VizQuery;

fn main() {
    // A 300k-row flight table with the airline column indexed.
    let model = FlightModel::new(13);
    let mut rng = rand::rngs::StdRng::seed_from_u64(14);
    let table = model.to_table(300_000, &mut rng);
    let engine = NeedleTail::new(table, &["name"]).expect("engine builds");
    let mut run_rng = rand::rngs::StdRng::seed_from_u64(15);

    // 1. Plain: average arrival delay by airline.
    let answer = VizQuery::new(&engine)
        .group_by("name")
        .avg("arr_delay")
        .bound(1440.0)
        .resolution_pct(1.0)
        .execute(&mut run_rng)
        .expect("query runs");
    println!(
        "AVG(arr_delay) BY name  — sampled {:.2}% of eligible rows:",
        100.0 * answer.fraction_sampled()
    );
    print!("{}", answer.to_bar_chart(40));

    // 2. Filtered to the major carriers only (IN predicate).
    let answer = VizQuery::new(&engine)
        .group_by("name")
        .avg("dep_delay")
        .bound(1440.0)
        .resolution_pct(1.0)
        .filter(Predicate::is_in("name", ["AA", "DL", "UA", "WN"]))
        .execute(&mut run_rng)
        .expect("query runs");
    println!("\nAVG(dep_delay) for the big four:");
    print!("{}", answer.to_bar_chart(40));

    // 3. Two-attribute group-by via the joint index (§6.3.4): airline x
    //    departure-window, cells labeled "name|window".
    use rapidviz::needletail::{ColumnDef, DataType, Schema, TableBuilder, Value};
    let mut b = TableBuilder::new(Schema::new(vec![
        ColumnDef::new("name", DataType::Str),
        ColumnDef::new("window", DataType::Str),
        ColumnDef::new("delay", DataType::Float),
    ]));
    use rand::Rng;
    let mut data_rng = rand::rngs::StdRng::seed_from_u64(16);
    for _ in 0..120_000 {
        let name = ["AA", "B6"][data_rng.gen_range(0..2)];
        let window = ["morning", "evening"][data_rng.gen_range(0..2)];
        // Evenings run later, B6 more so.
        let base = match (name, window) {
            ("AA", "morning") => 10.0,
            ("AA", "evening") => 35.0,
            ("B6", "morning") => 20.0,
            _ => 55.0,
        };
        let delay = if data_rng.gen_bool(base / 100.0) {
            100.0
        } else {
            0.0
        };
        b.push_row(vec![name.into(), window.into(), Value::Float(delay)]);
    }
    let engine2 = NeedleTail::new(b.finish(), &["name", "window"]).expect("engine builds");
    let answer = VizQuery::new(&engine2)
        .group_by("name")
        .group_by("window")
        .avg("delay")
        .bound(100.0)
        .execute(&mut run_rng)
        .expect("query runs");
    println!("\nAVG(delay) BY name, window (composite group-by):");
    for (label, est) in answer.result.ranked() {
        println!("  {label:<12} {est:.1}");
    }
}
