//! The `VizQuery` front door, blocking and streaming: a classic blocking
//! call (kept for contrast), a resumable session that renders progressively,
//! a budget-capped session that trades precision for latency, and the
//! `COUNT` aggregate over the size-estimating samplers.
//!
//! ```text
//! cargo run --release --example query_api
//! ```

use rand::SeedableRng;
use rapidviz::datagen::FlightModel;
use rapidviz::needletail::{NeedleTail, Predicate};
use rapidviz::{StepOutcome, VizQuery};
use std::time::Duration;

fn main() {
    // A 300k-row flight table with the airline column indexed.
    let model = FlightModel::new(13);
    let mut rng = rand::rngs::StdRng::seed_from_u64(14);
    let table = model.to_table(300_000, &mut rng);
    let engine = NeedleTail::new(table, &["name"]).expect("engine builds");
    let mut run_rng = rand::rngs::StdRng::seed_from_u64(15);

    // 1. Blocking (kept for contrast): average arrival delay by airline,
    //    filtered to the major carriers (§6.3.3).
    let answer = VizQuery::new(&engine)
        .group_by("name")
        .avg("arr_delay")
        .bound(1440.0)
        .resolution_pct(1.0)
        .filter(Predicate::is_in("name", ["AA", "DL", "UA", "WN"]))
        .execute(&mut run_rng)
        .expect("query runs");
    println!(
        "blocking AVG(arr_delay) for the big four — sampled {:.2}% of eligible rows:",
        100.0 * answer.fraction_sampled()
    );
    print!("{}", answer.to_bar_chart(40));

    // 2. The same family of query as a *resumable session*: one round per
    //    step(), partial ordering after every round. A dashboard would
    //    redraw on each update; here we log every 4000th round.
    let mut session = VizQuery::new(&engine)
        .group_by("name")
        .avg("dep_delay")
        .bound(1440.0)
        .resolution_pct(1.0)
        .start(rand::rngs::StdRng::seed_from_u64(16))
        .expect("query plans");
    println!("\nstreaming AVG(dep_delay) BY name:");
    let mut rounds = 0u64;
    for update in session.by_ref() {
        rounds += 1;
        if rounds.is_multiple_of(4000) || !update.outcome.is_running() {
            println!(
                "  round {:>5}: {:>2} certified / {} groups, {:.2}% sampled",
                update.round,
                update.snapshot.certified_order().len(),
                update.snapshot.labels.len(),
                100.0 * update.fraction_sampled
            );
        }
    }
    let answer = session.finish();
    assert!(answer.converged());
    print!("{}", answer.to_bar_chart(40));

    // 3. Budget-aware: cap the run at 20k samples (or 150 ms, whichever
    //    trips first) and keep the best-effort ordering — the
    //    precision-for-latency trade a latency-bound dashboard makes.
    let mut session = VizQuery::new(&engine)
        .group_by("name")
        .avg("arr_delay")
        .bound(1440.0)
        .max_samples(20_000)
        .timeout(Duration::from_millis(150))
        .start(rand::rngs::StdRng::seed_from_u64(17))
        .expect("query plans");
    let outcome = loop {
        let update = session.step();
        if !update.outcome.is_running() {
            break update.outcome;
        }
    };
    println!(
        "\nbudgeted AVG(arr_delay): stopped as {outcome:?} after {} samples ({:.2}% of data)",
        session.total_samples(),
        100.0 * session.fraction_sampled()
    );
    let answer = session.finish();
    if outcome == StepOutcome::BudgetExhausted {
        println!("best-effort ordering (no full guarantee):");
    }
    print!("{}", answer.to_bar_chart(40));

    // 4. COUNT with unknown group sizes (§6.3.2): normalized fractions of
    //    the relation per airline, from the size-estimate stream alone.
    let answer = VizQuery::new(&engine)
        .group_by("name")
        .count("arr_delay")
        .resolution_pct(2.0)
        .execute(&mut run_rng)
        .expect("query runs");
    println!("\nCOUNT BY name (normalized fractions, unknown group sizes):");
    for (label, est) in answer.result.ranked().into_iter().rev().take(4) {
        println!("  {label:<4} {est:.3}");
    }
}
