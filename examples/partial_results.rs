//! Partial results (§6.2.2): stream each bar to the "screen" the moment
//! the algorithm is confident about it, so the analyst starts reading the
//! visualization long before the run finishes.
//!
//! ```text
//! cargo run --release --example partial_results
//! ```

use rand::{Rng, SeedableRng};
use rapidviz::core::extensions::IFocusPartial;
use rapidviz::core::{AlgoConfig, GroupSource};
use rapidviz::datagen::VecGroup;

fn main() {
    // Six regions; two of them (east/southeast) nearly tie and will render
    // last.
    let specs = [
        ("north", 22.0),
        ("south", 71.0),
        ("east", 48.0),
        ("southeast", 48.6),
        ("west", 35.0),
        ("central", 60.0),
    ];
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let mut groups: Vec<VecGroup> = specs
        .iter()
        .map(|&(name, mu)| {
            let values: Vec<f64> = (0..400_000)
                .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
                .collect();
            VecGroup::new(name, values)
        })
        .collect();
    let total: u64 = groups.iter().map(GroupSource::len).sum();

    let algo = IFocusPartial::new(AlgoConfig::new(100.0, 0.05));
    let mut run_rng = rand::rngs::StdRng::seed_from_u64(22);
    println!("streaming bars as they certify:");
    let result = algo.run(&mut groups, &mut run_rng, |e| {
        println!(
            "  [{:>9} samples in] {:<10} = {:.2}",
            e.total_samples_so_far, e.label, e.estimate
        );
    });
    println!(
        "done: {} rounds, {} samples total ({:.2}% of data)",
        result.rounds,
        result.total_samples(),
        100.0 * result.fraction_sampled(total)
    );
    println!("note: the contentious east/southeast pair certifies last.");
}
