//! Partial results (§6.2.2) through the **resumable session API**: drive
//! the query one round at a time and print each bar the moment the
//! algorithm is confident about it, so the analyst starts reading the
//! visualization long before the run finishes.
//!
//! ```text
//! cargo run --release --example partial_results
//! ```

use rand::{Rng, SeedableRng};
use rapidviz::needletail::{ColumnDef, DataType, NeedleTail, Schema, TableBuilder, Value};
use rapidviz::{StepOutcome, VizQuery};

fn main() {
    // Six regions; two of them (east/southeast) nearly tie and will render
    // last.
    let specs = [
        ("north", 22.0),
        ("south", 71.0),
        ("east", 48.0),
        ("southeast", 48.6),
        ("west", 35.0),
        ("central", 60.0),
    ];
    let mut b = TableBuilder::new(Schema::new(vec![
        ColumnDef::new("region", DataType::Str),
        ColumnDef::new("score", DataType::Float),
    ]));
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    for &(name, mu) in &specs {
        for _ in 0..400_000 {
            let v = if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 };
            b.push_row(vec![name.into(), Value::Float(v)]);
        }
    }
    let engine = NeedleTail::new(b.finish(), &["region"]).expect("engine builds");

    // A resumable session instead of a blocking call: one round per
    // step(), a RoundUpdate after each.
    let mut session = VizQuery::new(&engine)
        .group_by("region")
        .avg("score")
        .bound(100.0)
        .start(rand::rngs::StdRng::seed_from_u64(22))
        .expect("query plans");

    println!("streaming bars as they certify:");
    let mut last_outcome = StepOutcome::Running;
    for update in session.by_ref() {
        // `newly_certified` lists the groups whose position froze during
        // this round — exactly when a dashboard should draw their bars.
        for &g in &update.newly_certified {
            println!(
                "  [{:>9} samples in] {:<10} = {:.2}",
                update.total_samples, update.snapshot.labels[g], update.snapshot.estimates[g]
            );
        }
        last_outcome = update.outcome;
    }
    assert_eq!(last_outcome, StepOutcome::Converged);

    let answer = session.finish();
    println!(
        "done: {} rounds, {} samples total ({:.2}% of data)",
        answer.result.rounds,
        answer.result.total_samples(),
        100.0 * answer.fraction_sampled()
    );
    println!("note: the contentious east/southeast pair certifies last.");
}
