//! A dashboard over the wire: starts an in-process `rapidviz-serve`
//! server on seeded flight data, connects a wire client, and renders the
//! streamed round updates as a progressively-certifying bar chart — the
//! paper's interaction model, end to end through the TCP protocol.
//!
//! ```text
//! cargo run --release --example serve_dashboard
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rapidviz::core::viz::bar_chart;
use rapidviz::datagen::FlightModel;
use rapidviz::needletail::NeedleTail;
use rapidviz_serve::{Frame, QueryRequest, Server, ServerConfig, WireClient};
use std::time::Duration;

fn main() {
    // A seeded flight table behind a loopback server on an ephemeral port.
    let seed = 42;
    let mut rng = StdRng::seed_from_u64(seed);
    let table = FlightModel::new(seed).to_table(30_000, &mut rng);
    let engine = NeedleTail::new(table, &["name"]).expect("flight engine builds");
    // A deep frame queue so no intermediate round is dropped while this
    // client stops to print — we want to *see* the progressive certification.
    let config = ServerConfig {
        frame_queue: 8192,
        ..ServerConfig::default()
    };
    let handle = Server::start(engine, config).expect("server binds");
    println!("serving flight data on {}\n", handle.local_addr());

    // One dashboard query: average arrival delay per airline, streamed.
    let mut client =
        WireClient::connect(handle.local_addr(), Duration::from_secs(30)).expect("connects");
    let mut request = QueryRequest::avg("name", "arr_delay", 7);
    request.samples_per_round = Some(32);
    request.max_samples = Some(60_000);
    client.send_request(&request).expect("request sent");

    let mut certified = 0usize;
    while let Some(frame) = client.next_frame().expect("frames decode") {
        match frame {
            Frame::Round(round) => {
                certified += round.newly_certified.len();
                if !round.newly_certified.is_empty() {
                    let snap = &round.snapshot;
                    println!(
                        "round {:>4}  {:>6} samples  {:>2}/{} bars certified",
                        round.round,
                        round.total_samples,
                        certified,
                        snap.labels.len(),
                    );
                }
            }
            Frame::Answer(answer) => {
                println!(
                    "\nterminal answer after {} rounds ({:?}):\n",
                    answer.rounds, answer.outcome
                );
                // Display order = certified ordering: ascending estimate.
                let mut idx: Vec<usize> = (0..answer.estimates.len()).collect();
                idx.sort_by(|&a, &b| answer.estimates[a].total_cmp(&answer.estimates[b]));
                let labels: Vec<&str> = idx.iter().map(|&i| answer.labels[i].as_str()).collect();
                let values: Vec<f64> = idx.iter().map(|&i| answer.estimates[i].abs()).collect();
                println!("{}", bar_chart(&labels, &values, 40));
                break;
            }
            Frame::Error { code, message } => {
                eprintln!("server error {code:?}: {message}");
                break;
            }
            Frame::Evicted { bytes } => println!("(session evicted at {bytes} resident bytes)"),
            Frame::Parked { token } => println!("(resumable under token {token:#018x})"),
            Frame::Stats(_) => {}
        }
    }

    let stats = client.stats().expect("stats round-trip");
    println!(
        "\nserver lifetime: {} admitted, {} completed, {} frames sent \
         (plan cache {} hits / {} misses)",
        stats.sessions_admitted,
        stats.sessions_completed,
        stats.frames_sent,
        stats.plan_cache.0,
        stats.plan_cache.1,
    );
    handle.shutdown();
}
