//! Trend lines (§6.1.1): for a monthly metric only *adjacent* months must
//! compare correctly — far cheaper than ordering all pairs when distant
//! months nearly tie.
//!
//! ```text
//! cargo run --release --example trendline
//! ```

use rand::{Rng, SeedableRng};
use rapidviz::core::extensions::IFocusTrends;
use rapidviz::core::{is_trend_correct, AlgoConfig, GroupSource, IFocus};
use rapidviz::datagen::VecGroup;

const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

fn make_groups(seed: u64) -> Vec<VecGroup> {
    // A seasonal curve: many distant month pairs nearly tie (e.g. spring vs
    // autumn shoulders), which full ordering would have to resolve.
    let seasonal = [
        42.0, 48.0, 55.1, 62.0, 70.0, 76.0, 75.8, 70.2, 62.2, 55.0, 48.2, 41.8,
    ];
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    seasonal
        .iter()
        .zip(MONTHS)
        .map(|(&mu, month)| {
            let values: Vec<f64> = (0..150_000)
                .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
                .collect();
            VecGroup::new(month, values)
        })
        .collect()
}

fn main() {
    let mut groups = make_groups(11);
    let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
    let total: u64 = groups.iter().map(GroupSource::len).sum();

    let algo = IFocusTrends::new(AlgoConfig::new(100.0, 0.05));
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let result = algo.run(&mut groups, &mut rng);

    println!("monthly trend (adjacent comparisons guaranteed w.p. >= 0.95):");
    for (i, month) in MONTHS.iter().enumerate() {
        let bar = "*".repeat((result.estimates[i] / 2.0) as usize);
        println!("{month} | {bar} {:.1}", result.estimates[i]);
    }
    println!(
        "trend correct: {}; cost {} samples ({:.2}%)",
        is_trend_correct(&result.estimates, &truths, 0.0),
        result.total_samples(),
        100.0 * result.fraction_sampled(total)
    );

    // What the full all-pairs guarantee would have cost on the same data.
    let mut groups_full = make_groups(11);
    let full = IFocus::new(AlgoConfig::new(100.0, 0.05));
    let mut rng_full = rand::rngs::StdRng::seed_from_u64(12);
    let result_full = full.run(&mut groups_full, &mut rng_full);
    println!(
        "all-pairs ordering would cost {} samples ({:.1}x more)",
        result_full.total_samples(),
        result_full.total_samples() as f64 / result.total_samples() as f64
    );
}
