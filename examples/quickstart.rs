//! Quickstart: order three bars with a guarantee, sampling a fraction of
//! the data.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use rapidviz::core::{AlgoConfig, IFocus};
use rapidviz::datagen::{TwoPoint, ValueDist, VecGroup};

fn main() {
    // Build three groups of 200k bounded values each (means 25, 50, 75).
    let mut data_rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut groups: Vec<VecGroup> = [("bronze", 25.0), ("silver", 50.0), ("gold", 75.0)]
        .iter()
        .map(|&(name, mu)| {
            let dist = TwoPoint::paper(mu);
            let values: Vec<f64> = (0..200_000).map(|_| dist.sample(&mut data_rng)).collect();
            VecGroup::new(name, values)
        })
        .collect();
    let total: u64 = 3 * 200_000;

    // Values live in [0, 100]; demand correct ordering w.p. >= 95%.
    let config = AlgoConfig::new(100.0, 0.05);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let result = IFocus::new(config).run(&mut groups, &mut rng);

    println!("IFOCUS finished after {} rounds", result.rounds);
    println!(
        "sampled {} of {} records ({:.2}%)",
        result.total_samples(),
        total,
        100.0 * result.fraction_sampled(total)
    );
    println!();
    println!("approximate bar chart (ordering guaranteed w.p. >= 0.95):");
    for (label, estimate) in result.ranked() {
        let bar = "#".repeat((estimate / 2.0) as usize);
        println!("{label:>8} | {bar} {estimate:.1}");
    }
}
