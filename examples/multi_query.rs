//! A dashboard fan-out over the **multi-query scheduler**: one page load
//! fires four heterogeneous queries — AVG, a filtered AVG, SUM, and COUNT —
//! against the same engine, and a single [`rapidviz::MultiQueryScheduler`]
//! interleaves their rounds under a fair-share policy so every chart makes
//! progress at once, inside one global sample budget.
//!
//! ```text
//! cargo run --release --example multi_query
//! ```

use rand::{Rng, SeedableRng};
use rapidviz::needletail::{
    ColumnDef, DataType, NeedleTail, Predicate, Schema, TableBuilder, Value,
};
use rapidviz::{MultiQueryScheduler, RunOutcome, SchedulePolicy, SchedulerEvent, VizQuery};

fn main() {
    // A flight-delay table: three carriers over two hubs, 300k rows.
    let mut b = TableBuilder::new(Schema::new(vec![
        ColumnDef::new("carrier", DataType::Str),
        ColumnDef::new("origin", DataType::Str),
        ColumnDef::new("delay", DataType::Float),
    ]));
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    for _ in 0..300_000 {
        // Carrier mix 50/30/20, so the COUNT tile has separable shares.
        let (carrier, mu) = match rng.gen_range(0..10) {
            0..=4 => ("AA", 58.0),
            5..=7 => ("JB", 24.0),
            _ => ("UA", 81.0),
        };
        let origin = ["BOS", "SFO"][rng.gen_range(0..2)];
        let delay = if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 };
        b.push_row(vec![carrier.into(), origin.into(), Value::Float(delay)]);
    }
    let engine = NeedleTail::new(b.finish(), &["carrier", "origin"]).expect("engine builds");

    // The dashboard's four tiles, all resumable sessions with their own
    // seeds. The scheduler's global budget is the page's sampling budget.
    let mut sched =
        MultiQueryScheduler::new(SchedulePolicy::FairShare).with_global_sample_budget(2_000_000);
    let tiles = [
        ("avg delay by carrier", 41u64),
        ("avg delay by carrier (BOS only)", 42),
        ("total delay by carrier", 43),
        ("flight share by carrier", 44),
    ];
    let sessions = [
        VizQuery::new(&engine)
            .group_by("carrier")
            .avg("delay")
            .bound(100.0)
            .resolution_pct(1.0),
        VizQuery::new(&engine)
            .group_by("carrier")
            .avg("delay")
            .bound(100.0)
            .resolution_pct(1.0)
            .filter(Predicate::eq("origin", "BOS")),
        VizQuery::new(&engine)
            .group_by("carrier")
            .sum("delay")
            .bound(100.0)
            .resolution_pct(1.0),
        VizQuery::new(&engine)
            .group_by("carrier")
            .count("delay")
            .resolution_pct(2.0),
    ];
    let mut ids = Vec::new();
    for (query, (title, seed)) in sessions.iter().zip(&tiles) {
        let session = query
            .start(rand::rngs::StdRng::seed_from_u64(*seed))
            .expect("query plans");
        let id = sched.admit(session);
        println!("admitted {id}: {title}");
        ids.push(id);
    }

    // One render loop drains every tile: each event is one round of one
    // query, tagged with its id — print a progress line whenever a tile
    // certifies another bar.
    println!("\ninterleaving rounds (fair share by unresolved bars):");
    let outcome = sched.run(|event| {
        if let SchedulerEvent::Round { id, update } = event {
            for &g in &update.newly_certified {
                let tile = ids.iter().position(|i| i == id).expect("admitted id");
                println!(
                    "  {id} [{:<31}] certified {:<3} after {:>6} samples",
                    tiles[tile].0, update.snapshot.labels[g], update.total_samples
                );
            }
        }
    });
    assert_eq!(outcome, RunOutcome::Drained, "budget was generous enough");

    println!("\nfinal dashboard (samples per tile, then ascending bars):");
    let mut total_samples = 0u64;
    for ((id, answer), (title, _)) in sched.finish_all().into_iter().zip(&tiles) {
        assert!(answer.converged(), "{title} should converge in budget");
        total_samples += answer.result.total_samples();
        println!(
            "  {id} {title}: {} samples ({:.2}% of eligible rows)",
            answer.result.total_samples(),
            100.0 * answer.fraction_sampled()
        );
        for (label, value) in answer.result.ranked() {
            println!("      {label:<4} {value:>10.2}");
        }
    }
    println!("\ntotal: {total_samples} samples for four ordered charts over 300k rows");
}
