//! The paper's motivating query, end to end on the NEEDLETAIL engine:
//!
//! ```sql
//! SELECT NAME, AVG(DELAY) FROM FLT GROUP BY NAME
//! ```
//!
//! plus a §6.3.3 variant with a selection predicate (`WHERE dep_delay >= 30`).
//! Compares the sampled answer, its cost, and the SCAN ground truth.
//!
//! ```text
//! cargo run --release --example flight_delays
//! ```

use rand::SeedableRng;
use rapidviz::core::{is_correctly_ordered, AlgoConfig, GroupSource, IFocus};
use rapidviz::datagen::FlightModel;
use rapidviz::needletail::{DiskModel, NeedleTail, Predicate};
use rapidviz::query_groups;

fn main() {
    // Materialize a 500k-row flight table and index the airline column.
    let model = FlightModel::new(7);
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let table = model.to_table(500_000, &mut rng);
    let rows = table.row_count();
    let bytes = table.total_bytes();
    let engine = NeedleTail::new(table, &["name"]).expect("engine builds");

    // --- Query 1: average arrival delay by airline. -----------------------
    let mut groups =
        query_groups(&engine, "name", "arr_delay", &Predicate::True).expect("query plans");
    let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
    let config = AlgoConfig::new(1440.0, 0.05).with_resolution(14.4); // 1% of range
    let mut run_rng = rand::rngs::StdRng::seed_from_u64(9);
    let result = IFocus::new(config).run(&mut groups, &mut run_rng);

    println!("SELECT name, AVG(arr_delay) FROM flights GROUP BY name");
    println!("airline  est.delay  true.delay  samples");
    for i in result.order_by_estimate() {
        println!(
            "{:>7} {:>10.2} {:>11.2} {:>8}",
            result.labels[i], result.estimates[i], truths[i], result.samples_per_group[i]
        );
    }
    let ordered = is_correctly_ordered(&result.estimates, &truths);
    println!(
        "ordering correct: {ordered}; sampled {}/{} rows ({:.2}%)",
        result.total_samples(),
        rows,
        100.0 * result.fraction_sampled(rows)
    );

    // Cost model: what this saves over a full scan at this scale.
    let disk = DiskModel::paper_default();
    let sample_cost = disk.sampling_cost(result.total_samples());
    let scan_cost = disk.scan_cost(bytes, rows);
    println!(
        "modelled time: ifocusr {:.3}s vs scan {:.3}s ({:.0}x)",
        sample_cost.total_seconds(),
        scan_cost.total_seconds(),
        scan_cost.total_seconds() / sample_cost.total_seconds()
    );

    // --- Query 2: same, restricted to badly delayed departures (§6.3.3). --
    println!();
    println!("SELECT name, AVG(arr_delay) ... WHERE dep_delay >= 30 GROUP BY name");
    let pred = Predicate::ge("dep_delay", 30.0);
    let mut groups = query_groups(&engine, "name", "arr_delay", &pred).expect("query plans");
    let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
    let config = AlgoConfig::new(1440.0, 0.05).with_resolution(14.4);
    let result = IFocus::new(config).run(&mut groups, &mut run_rng);
    let exact = engine.scan("name", "arr_delay", &pred).expect("scan runs");
    println!("airline  est.delay  scan.delay");
    for i in result.order_by_estimate() {
        let scan_mean = exact
            .iter()
            .find(|a| a.group.to_string() == result.labels[i])
            .and_then(|a| a.mean())
            .unwrap_or(f64::NAN);
        println!(
            "{:>7} {:>10.2} {:>11.2}",
            result.labels[i], result.estimates[i], scan_mean
        );
    }
    println!(
        "ordering correct: {}",
        is_correctly_ordered(&result.estimates, &truths)
    );
}
