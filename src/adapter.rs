//! Bridges between the storage layer and the algorithm layer.
//!
//! `rapidviz-core` is storage-agnostic (it samples through the
//! [`GroupSource`] trait) and `rapidviz-needletail` knows nothing about the
//! algorithms; [`NeedletailGroup`] connects them, turning an engine
//! [`GroupHandle`] into a `GroupSource` the IFOCUS family can run on.

use rand::RngCore;
use rapidviz_core::extensions::SizedGroupSource;
use rapidviz_core::{GroupSource, SamplingMode};
use rapidviz_needletail::{GroupHandle, SizedGroupHandle};

/// A NEEDLETAIL group handle viewed as an algorithm group source.
#[derive(Debug, Clone)]
pub struct NeedletailGroup {
    handle: GroupHandle,
    true_mean: Option<f64>,
}

impl NeedletailGroup {
    /// Wraps an engine handle. `true_mean()` will report `None`; use
    /// [`NeedletailGroup::with_true_mean`] when evaluation needs the exact
    /// answer.
    #[must_use]
    pub fn new(handle: GroupHandle) -> Self {
        Self {
            handle,
            true_mean: None,
        }
    }

    /// Wraps an engine handle and precomputes the exact group mean (one
    /// full pass over the group — evaluation/testing use only).
    #[must_use]
    pub fn with_true_mean(handle: GroupHandle) -> Self {
        let true_mean = handle.exact_mean();
        Self { handle, true_mean }
    }

    /// The wrapped handle.
    #[must_use]
    pub fn handle(&self) -> &GroupHandle {
        &self.handle
    }

    /// Captures the handle's without-replacement permutation state — the
    /// session-checkpoint hook (see
    /// [`GroupHandle::permutation_state`]).
    #[must_use]
    pub fn permutation_state(&self) -> (u64, Vec<(u64, u64)>) {
        self.handle.permutation_state()
    }

    /// Restores permutation state captured by
    /// [`Self::permutation_state`] onto a freshly planned handle during
    /// session resume.
    pub fn restore_permutation(&mut self, drawn: u64, entries: &[(u64, u64)]) {
        self.handle.restore_permutation(drawn, entries);
    }
}

impl GroupSource for NeedletailGroup {
    fn label(&self) -> String {
        self.handle.label().to_string()
    }

    fn len(&self) -> u64 {
        self.handle.len()
    }

    fn sample(&mut self, rng: &mut dyn RngCore, mode: SamplingMode) -> Option<f64> {
        match mode {
            SamplingMode::WithReplacement => self.handle.sample_with_replacement(rng),
            SamplingMode::WithoutReplacement => self.handle.sample_without_replacement(rng),
        }
    }

    /// Batched draws resolve all `n` ranks through one sorted
    /// `select_many` sweep of the group bitmap instead of `n` independent
    /// directory binary searches. RNG consumption matches `n` single
    /// draws, so fixed-seed runs are unchanged by batching.
    fn draw_batch(
        &mut self,
        n: u64,
        rng: &mut dyn RngCore,
        mode: SamplingMode,
        out: &mut Vec<f64>,
    ) -> u64 {
        let n = usize::try_from(n).unwrap_or(usize::MAX);
        let got = match mode {
            SamplingMode::WithReplacement => self.handle.sample_batch_with_replacement(n, rng, out),
            SamplingMode::WithoutReplacement => {
                self.handle.sample_batch_without_replacement(n, rng, out)
            }
        };
        got as u64
    }

    fn true_mean(&self) -> Option<f64> {
        self.true_mean
    }

    fn reset(&mut self) {
        self.handle.reset_permutation();
    }
}

/// A NEEDLETAIL size-estimating handle viewed as an algorithm
/// [`SizedGroupSource`] — the storage-backed input to the
/// unknown-group-size `SUM`/`COUNT` algorithms (Algorithm 5). Batched
/// draws resolve through one sorted `select_many` sweep of the group
/// bitmap via [`SizedGroupHandle::sample_batch_with_size`], with RNG
/// consumption identical to single draws.
#[derive(Debug, Clone)]
pub struct SizedNeedletailGroup {
    handle: SizedGroupHandle,
}

impl SizedNeedletailGroup {
    /// Wraps an engine sized handle.
    #[must_use]
    pub fn new(handle: SizedGroupHandle) -> Self {
        Self { handle }
    }

    /// The wrapped handle.
    #[must_use]
    pub fn handle(&self) -> &SizedGroupHandle {
        &self.handle
    }
}

impl SizedGroupSource for SizedNeedletailGroup {
    fn label(&self) -> String {
        self.handle.label().to_string()
    }

    fn sample_with_size(&mut self, rng: &mut dyn RngCore) -> Option<(f64, f64)> {
        self.handle.sample_with_size(rng)
    }

    fn sample_with_size_batch(
        &mut self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut Vec<(f64, f64)>,
    ) -> u64 {
        let n = usize::try_from(n).unwrap_or(usize::MAX);
        self.handle.sample_batch_with_size(n, rng, out) as u64
    }
}

/// Builds [`SizedNeedletailGroup`]s for every group of a
/// `GROUP BY group_col` query estimating `SUM(agg_col)`/`COUNT` with
/// unknown group sizes over `engine`.
///
/// # Errors
///
/// Propagates engine errors (missing columns, unindexed group column,
/// non-numeric aggregate).
pub fn query_sized_groups(
    engine: &rapidviz_needletail::NeedleTail,
    group_col: &str,
    agg_col: &str,
) -> Result<Vec<SizedNeedletailGroup>, rapidviz_needletail::EngineError> {
    Ok(engine
        .sized_group_handles(group_col, agg_col)?
        .into_iter()
        .map(SizedNeedletailGroup::new)
        .collect())
}

/// Builds [`NeedletailGroup`]s (with exact means precomputed) for every
/// group of a `GROUP BY group_col` / `AVG(agg_col)` query over `engine`,
/// restricted to rows satisfying `predicate`.
///
/// # Errors
///
/// Propagates engine errors (missing columns, unindexed group column).
pub fn query_groups(
    engine: &rapidviz_needletail::NeedleTail,
    group_col: &str,
    agg_col: &str,
    predicate: &rapidviz_needletail::Predicate,
) -> Result<Vec<NeedletailGroup>, rapidviz_needletail::EngineError> {
    Ok(engine
        .group_handles(group_col, agg_col, predicate)?
        .into_iter()
        .map(NeedletailGroup::with_true_mean)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rapidviz_needletail::{ColumnDef, DataType, NeedleTail, Predicate, Schema, TableBuilder};

    fn engine() -> NeedleTail {
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("delay", DataType::Float),
        ]));
        for (n, d) in [("AA", 30.0), ("JB", 10.0), ("AA", 50.0), ("JB", 20.0)] {
            b.push_row(vec![n.into(), d.into()]);
        }
        NeedleTail::new(b.finish(), &["name"]).unwrap()
    }

    #[test]
    fn adapter_exposes_group_semantics() {
        let engine = engine();
        let mut groups = query_groups(&engine, "name", "delay", &Predicate::True).unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].label(), "AA");
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[0].true_mean(), Some(40.0));
        assert_eq!(groups[1].true_mean(), Some(15.0));
        // Without replacement exhausts and resets.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = groups[0]
            .sample(&mut rng, SamplingMode::WithoutReplacement)
            .unwrap();
        let b = groups[0]
            .sample(&mut rng, SamplingMode::WithoutReplacement)
            .unwrap();
        assert!((a + b - 80.0).abs() < 1e-12);
        assert!(groups[0]
            .sample(&mut rng, SamplingMode::WithoutReplacement)
            .is_none());
        groups[0].reset();
        assert!(groups[0]
            .sample(&mut rng, SamplingMode::WithoutReplacement)
            .is_some());
    }

    #[test]
    fn sized_adapter_runs_algorithm_5_end_to_end() {
        use rand::Rng;
        use rapidviz_core::extensions::IFocusSum2;
        use rapidviz_core::AlgoConfig;

        // Two groups with clearly separated normalized sums:
        // "big" ≈ 0.75·40 = 30, "small" ≈ 0.25·20 = 5.
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("g", DataType::Str),
            ColumnDef::new("v", DataType::Float),
        ]));
        let mut rng = rand::rngs::StdRng::seed_from_u64(90);
        for i in 0..8_000 {
            let (name, mu) = if i % 4 < 3 {
                ("big", 0.40)
            } else {
                ("small", 0.20)
            };
            let v = if rng.gen_bool(mu) { 100.0 } else { 0.0 };
            b.push_row(vec![name.into(), v.into()]);
        }
        let engine = NeedleTail::new(b.finish(), &["g"]).unwrap();
        let mut groups = query_sized_groups(&engine, "g", "v").unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].label(), "big");
        let algo = IFocusSum2::new(
            AlgoConfig::new(100.0, 0.05)
                .with_resolution(4.0)
                .with_samples_per_round(16),
        );
        let mut run_rng = rand::rngs::StdRng::seed_from_u64(91);
        let result = algo.run(&mut groups, &mut run_rng);
        assert!(
            result.estimates[0] > result.estimates[1],
            "big line must out-total small: {:?}",
            result.estimates
        );
        assert!((result.estimates[0] - 30.0).abs() < 8.0);
        assert!((result.estimates[1] - 5.0).abs() < 4.0);
        // Batched draws were charged per sample.
        assert_eq!(
            engine.metrics().snapshot().random_samples,
            result.total_samples()
        );
    }

    #[test]
    fn plain_constructor_hides_true_mean() {
        let engine = engine();
        let handles = engine
            .group_handles("name", "delay", &Predicate::True)
            .unwrap();
        let g = NeedletailGroup::new(handles.into_iter().next().unwrap());
        assert_eq!(g.true_mean(), None);
        assert_eq!(g.handle().len(), 2);
    }
}
