//! Durable session checkpoints: the on-disk / in-registry serialization of
//! a paused [`QuerySession`](crate::QuerySession).
//!
//! A [`SessionCheckpoint`] captures **everything a resumed session needs to
//! replay the remaining round stream bit-identically** — and deliberately
//! nothing else:
//!
//! * the **query spec** ([`QuerySpec`]): group-by columns, measure,
//!   aggregate, algorithm, predicate, `δ`, resolution, bound override, and
//!   budgets — enough to re-plan the query against the engine from scratch;
//! * the algorithm stepper's mutable state
//!   ([`SavedStepper`]): estimators, activity
//!   flags, ε bookkeeping, round counters;
//! * per-group **sampler permutation state** (the virtual Fisher–Yates
//!   `(drawn, swaps)` records) for without-replacement sessions;
//! * the session RNG's xoshiro256** state words;
//! * budget bookkeeping: the **remaining** time-to-deadline (re-anchored at
//!   the resuming clock's `now()`, so wall time spent parked does not count
//!   against the query), the previously delivered active set, and the
//!   terminal outcome if one was already reached.
//!
//! **Excluded by design:** the engine's planning caches (predicate bitmaps,
//! group plans, composite indexes). Resume re-plans through the normal
//! path, so a checkpoint taken on one server restores correctly on a
//! restarted server with cold caches — only planning latency differs, never
//! results. Derived algorithm state (labels, group sizes, ε schedules,
//! scratch arenas) is likewise rebuilt by re-planning rather than stored.
//!
//! # Binary format
//!
//! Little-endian throughout; `f64`s travel as IEEE-754 bit patterns so the
//! round-trip is exact. Strings and vectors are `u32`-length-prefixed.
//! `Option<T>` is a `u8` presence flag (`0`/`1`) followed by the payload.
//!
//! ```text
//! magic    "RVCK"                                  4 bytes
//! version  u32 (currently 1)
//! spec     group_by, measure, aggregate u8, algorithm u8,
//!          predicate (tagged recursive), delta, resolution?, bound?,
//!          samples_per_round?, max_samples?
//! stepper  kind tag u8 + per-kind payload (see `SavedStepper`)
//! samplers vec of (drawn u64, vec of (slot u64, value u64))
//! rng      4 × u64 xoshiro256** state words
//! budgets  remaining-deadline nanos?, prev_active flags,
//!          terminal u8 (0 none / 1 converged / 2 budget),
//!          budget_tripped u8, delivered_terminal u8
//! ```
//!
//! Decoding is hardened the same way the wire protocol is: truncated,
//! corrupt, oversized, or wrong-version bytes produce a structured
//! [`CheckpointError`], never a panic, and element counts are sanity-capped
//! against the remaining payload so corrupt lengths cannot drive huge
//! allocations. Numeric spec fields are range-checked at decode time
//! (`δ ∈ (0, 1)`, positive bounds, non-zero batch sizes) so a corrupt
//! checkpoint is rejected here rather than tripping an assertion deep in
//! planning.
//!
//! # Versioning
//!
//! The version integer gates the whole payload: decoders reject any version
//! they do not know ([`CheckpointError::Decode`]), and any layout change —
//! even additive — bumps it. Checkpoints are short-lived (they live in the
//! serving layer's parking registry under a TTL), so no cross-version
//! migration is attempted.

use rapidviz_core::extensions::PartialEmission;
use rapidviz_core::saved::{
    RestoreError, SavedFocusCore, SavedIRefine, SavedPartial, SavedScan, SavedStepper, SavedSum2,
};
use rapidviz_core::StepOutcome;
use rapidviz_needletail::{EngineError, Predicate, Value};
use std::time::Duration;

/// First four bytes of every serialized checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"RVCK";

/// Current (and only) serialization version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Upper bound accepted by [`SessionCheckpoint::from_bytes`]. Generously
/// above any real session (the dominant term is one `(u64, u64)` pair per
/// without-replacement draw still held in the permutation map), while
/// keeping a corrupt length from asking the server to buffer gigabytes.
pub const MAX_CHECKPOINT_BYTES: usize = 64 * 1024 * 1024;

/// Deepest predicate tree a checkpoint will decode — matches any sane
/// query and keeps a crafted payload from recursing the decoder off the
/// stack.
const MAX_PREDICATE_DEPTH: u32 = 64;

/// Which aggregate a query computes. Defined here beside [`QuerySpec`]
/// (the serialized form carries it) and re-exported through
/// [`crate::query`], where the builder consumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Aggregate {
    /// `AVG(measure)` — Problem 1 / Algorithm 1.
    #[default]
    Avg,
    /// `SUM(measure)` with known group sizes — Algorithm 4.
    Sum,
    /// `COUNT` with unknown group sizes — the §6.3.2 reduction of
    /// Algorithm 5 to the size-estimate stream. Estimates are **normalized
    /// counts** `s_i ∈ [0, 1]` (each group's fraction of the relation);
    /// multiply by the relation size for absolute counts.
    Count,
}

/// Which ordering algorithm drives an `AVG` query. `SUM`/`COUNT` queries
/// have dedicated algorithms (4 and 5) and reject an override.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlgorithmChoice {
    /// IFOCUS (Algorithm 1) — the paper's primary contribution and the
    /// default.
    #[default]
    IFocus,
    /// IREFINE (Algorithm 3), the interval-halving alternative.
    IRefine,
    /// The ROUNDROBIN baseline (conventional stratified sampling with the
    /// same stopping guarantee).
    RoundRobin,
    /// The exhaustive SCAN baseline: exact answer, maximal cost; sessions
    /// stream one exact group per round.
    ExactScan,
}

/// The re-plannable description of a query — the builder fields of
/// [`crate::VizQuery`] minus the engine reference and clock, which the
/// resuming process supplies.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Group-by columns, in builder order.
    pub group_by: Vec<String>,
    /// The measure column.
    pub measure: String,
    /// Which aggregate the query computes.
    pub aggregate: Aggregate,
    /// Which ordering algorithm drives it.
    pub algorithm: AlgorithmChoice,
    /// Row-selection predicate.
    pub predicate: Predicate,
    /// Failure probability `δ`.
    pub delta: f64,
    /// Resolution as a fraction of the value range, if relaxed.
    pub resolution_fraction: Option<f64>,
    /// Explicit value bound `c`, if the builder overrode inference.
    pub bound: Option<f64>,
    /// Per-round batch size override, if any.
    pub samples_per_round: Option<u64>,
    /// Total-sample budget, if any.
    pub max_samples: Option<u64>,
}

/// A paused session, ready to serialize. See the [module docs](self) for
/// what is captured and what is deliberately rebuilt on resume.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCheckpoint {
    /// The query, re-planned verbatim on resume.
    pub spec: QuerySpec,
    /// The algorithm stepper's mutable state.
    pub stepper: SavedStepper,
    /// Per-group `(drawn, permutation swaps)` records, in group order —
    /// empty for with-replacement sessions (`COUNT`), whose samplers are
    /// stateless.
    pub samplers: Vec<(u64, Vec<(u64, u64)>)>,
    /// xoshiro256** state words of the session RNG.
    pub rng: [u64; 4],
    /// Time left until the session's deadline when the checkpoint was
    /// taken; `None` when no wall-clock budget was configured. Resume
    /// re-anchors this at the new clock's `now()`.
    pub remaining: Option<Duration>,
    /// Active flags after the last delivered update (drives
    /// `newly_certified` on the first resumed round).
    pub prev_active: Vec<bool>,
    /// Terminal outcome, if the session already finished.
    pub terminal: Option<StepOutcome>,
    /// Whether that terminal outcome came from a session budget.
    pub budget_tripped: bool,
    /// Whether the terminal update was already delivered to the iterator
    /// view.
    pub delivered_terminal: bool,
}

/// Why a checkpoint could not be taken, decoded, or resumed.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The session's RNG is not the checkpointable [`rand::rngs::StdRng`]
    /// (sessions started with a custom RNG run fine but cannot park).
    OpaqueRng,
    /// The session cannot checkpoint for a structural reason (e.g. it was
    /// not created through [`crate::VizQuery::start`]).
    Unsupported(&'static str),
    /// The byte payload is truncated, corrupt, oversized, or of an unknown
    /// version.
    Decode(String),
    /// Re-planning the embedded query failed on resume (schema drift: a
    /// column the original query used no longer exists, say).
    Engine(EngineError),
    /// The stepper state does not fit the re-planned query (group count
    /// drift between checkpoint and resume).
    Restore(RestoreError),
    /// The checkpoint disagrees with the re-planned session's shape in a
    /// way the stepper restore alone cannot see (sampler record counts,
    /// active-flag length).
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::OpaqueRng => {
                write!(f, "session RNG is not the checkpointable StdRng")
            }
            CheckpointError::Unsupported(what) => write!(f, "cannot checkpoint: {what}"),
            CheckpointError::Decode(msg) => write!(f, "checkpoint decode error: {msg}"),
            CheckpointError::Engine(e) => write!(f, "resume re-planning failed: {e}"),
            CheckpointError::Restore(e) => write!(f, "resume state restore failed: {e}"),
            CheckpointError::Mismatch(msg) => write!(f, "checkpoint/session mismatch: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Engine(e) => Some(e),
            CheckpointError::Restore(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for CheckpointError {
    fn from(e: EngineError) -> Self {
        CheckpointError::Engine(e)
    }
}

impl From<RestoreError> for CheckpointError {
    fn from(e: RestoreError) -> Self {
        CheckpointError::Restore(e)
    }
}

// ---------------------------------------------------------------------
// Byte-level encode/decode (the wire protocol's Enc/Dec idiom).
// ---------------------------------------------------------------------

#[derive(Default)]
struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn flag(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn str(&mut self, s: &str) {
        // Checkpoints are taken on the serving path and must never abort;
        // clamp absurd lengths (producing a decode error on resume)
        // instead of panicking, exactly like the wire encoder.
        debug_assert!(s.len() <= u32::MAX as usize, "checkpoint string too large");
        let len = u32::try_from(s.len()).unwrap_or(u32::MAX);
        self.u32(len);
        self.0.extend_from_slice(&s.as_bytes()[..len as usize]);
    }
    fn len_u32(&mut self, n: usize) {
        debug_assert!(n <= u32::MAX as usize, "checkpoint count too large");
        self.u32(u32::try_from(n).unwrap_or(u32::MAX));
    }
    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.flag(true);
                self.f64_bits(x);
            }
            None => self.flag(false),
        }
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.flag(true);
                self.u64(x);
            }
            None => self.flag(false),
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn err(msg: impl Into<String>) -> CheckpointError {
        CheckpointError::Decode(msg.into())
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Self::err("truncated checkpoint"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let Ok(bytes) = <[u8; 4]>::try_from(self.take(4)?) else {
            return Err(Self::err("truncated checkpoint"));
        };
        Ok(u32::from_le_bytes(bytes))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let Ok(bytes) = <[u8; 8]>::try_from(self.take(8)?) else {
            return Err(Self::err("truncated checkpoint"));
        };
        Ok(u64::from_le_bytes(bytes))
    }
    fn f64_bits(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// A strict boolean: anything but 0/1 means corruption.
    fn flag(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Self::err(format!("bad boolean byte {other}"))),
        }
    }
    /// An element count, sanity-capped against the remaining payload so a
    /// corrupt count cannot drive a huge allocation.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, CheckpointError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(Self::err(format!(
                "count {n} exceeds remaining payload ({remaining} bytes)"
            )));
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, CheckpointError> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Self::err("invalid UTF-8 in string"))
    }
    fn opt_f64(&mut self) -> Result<Option<f64>, CheckpointError> {
        Ok(if self.flag()? {
            Some(self.f64_bits()?)
        } else {
            None
        })
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, CheckpointError> {
        Ok(if self.flag()? {
            Some(self.u64()?)
        } else {
            None
        })
    }
    fn finish(self) -> Result<(), CheckpointError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Self::err(format!(
                "{} trailing bytes after checkpoint",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------
// Component encoders/decoders.
// ---------------------------------------------------------------------

fn encode_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Int(i) => {
            e.u8(0);
            e.u64(*i as u64);
        }
        Value::Float(x) => {
            e.u8(1);
            e.f64_bits(*x);
        }
        Value::Str(s) => {
            e.u8(2);
            e.str(s);
        }
    }
}

fn decode_value(d: &mut Dec<'_>) -> Result<Value, CheckpointError> {
    match d.u8()? {
        0 => Ok(Value::Int(d.u64()? as i64)),
        1 => Ok(Value::Float(d.f64_bits()?)),
        2 => Ok(Value::Str(d.str()?)),
        other => Err(Dec::err(format!("bad value tag {other}"))),
    }
}

fn encode_predicate(e: &mut Enc, p: &Predicate) {
    match p {
        Predicate::True => e.u8(0),
        Predicate::Eq(col, v) => {
            e.u8(1);
            e.str(col);
            encode_value(e, v);
        }
        Predicate::In(col, vals) => {
            e.u8(2);
            e.str(col);
            e.len_u32(vals.len());
            for v in vals {
                encode_value(e, v);
            }
        }
        Predicate::Range { column, lo, hi } => {
            e.u8(3);
            e.str(column);
            e.opt_f64(*lo);
            e.opt_f64(*hi);
        }
        Predicate::And(a, b) => {
            e.u8(4);
            encode_predicate(e, a);
            encode_predicate(e, b);
        }
        Predicate::Or(a, b) => {
            e.u8(5);
            encode_predicate(e, a);
            encode_predicate(e, b);
        }
        Predicate::Not(inner) => {
            e.u8(6);
            encode_predicate(e, inner);
        }
    }
}

fn decode_predicate(d: &mut Dec<'_>, depth: u32) -> Result<Predicate, CheckpointError> {
    if depth > MAX_PREDICATE_DEPTH {
        return Err(Dec::err("predicate nests too deeply"));
    }
    match d.u8()? {
        0 => Ok(Predicate::True),
        1 => {
            let col = d.str()?;
            Ok(Predicate::Eq(col, decode_value(d)?))
        }
        2 => {
            let col = d.str()?;
            let n = d.count(2)?;
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                vals.push(decode_value(d)?);
            }
            Ok(Predicate::In(col, vals))
        }
        3 => Ok(Predicate::Range {
            column: d.str()?,
            lo: d.opt_f64()?,
            hi: d.opt_f64()?,
        }),
        4 => {
            let a = decode_predicate(d, depth + 1)?;
            let b = decode_predicate(d, depth + 1)?;
            Ok(Predicate::And(Box::new(a), Box::new(b)))
        }
        5 => {
            let a = decode_predicate(d, depth + 1)?;
            let b = decode_predicate(d, depth + 1)?;
            Ok(Predicate::Or(Box::new(a), Box::new(b)))
        }
        6 => Ok(Predicate::Not(Box::new(decode_predicate(d, depth + 1)?))),
        other => Err(Dec::err(format!("bad predicate tag {other}"))),
    }
}

fn aggregate_to_u8(a: Aggregate) -> u8 {
    match a {
        Aggregate::Avg => 0,
        Aggregate::Sum => 1,
        Aggregate::Count => 2,
    }
}

fn aggregate_from_u8(v: u8) -> Result<Aggregate, CheckpointError> {
    match v {
        0 => Ok(Aggregate::Avg),
        1 => Ok(Aggregate::Sum),
        2 => Ok(Aggregate::Count),
        other => Err(Dec::err(format!("bad aggregate byte {other}"))),
    }
}

fn algorithm_to_u8(a: AlgorithmChoice) -> u8 {
    match a {
        AlgorithmChoice::IFocus => 0,
        AlgorithmChoice::IRefine => 1,
        AlgorithmChoice::RoundRobin => 2,
        AlgorithmChoice::ExactScan => 3,
    }
}

fn algorithm_from_u8(v: u8) -> Result<AlgorithmChoice, CheckpointError> {
    match v {
        0 => Ok(AlgorithmChoice::IFocus),
        1 => Ok(AlgorithmChoice::IRefine),
        2 => Ok(AlgorithmChoice::RoundRobin),
        3 => Ok(AlgorithmChoice::ExactScan),
        other => Err(Dec::err(format!("bad algorithm byte {other}"))),
    }
}

fn encode_spec(e: &mut Enc, spec: &QuerySpec) {
    e.len_u32(spec.group_by.len());
    for col in &spec.group_by {
        e.str(col);
    }
    e.str(&spec.measure);
    e.u8(aggregate_to_u8(spec.aggregate));
    e.u8(algorithm_to_u8(spec.algorithm));
    encode_predicate(e, &spec.predicate);
    e.f64_bits(spec.delta);
    e.opt_f64(spec.resolution_fraction);
    e.opt_f64(spec.bound);
    e.opt_u64(spec.samples_per_round);
    e.opt_u64(spec.max_samples);
}

fn decode_spec(d: &mut Dec<'_>) -> Result<QuerySpec, CheckpointError> {
    let n = d.count(4)?;
    let mut group_by = Vec::with_capacity(n);
    for _ in 0..n {
        group_by.push(d.str()?);
    }
    let measure = d.str()?;
    let aggregate = aggregate_from_u8(d.u8()?)?;
    let algorithm = algorithm_from_u8(d.u8()?)?;
    let predicate = decode_predicate(d, 0)?;
    let delta = d.f64_bits()?;
    // Range-check the numeric knobs here so a corrupt checkpoint is
    // rejected with a structured error instead of tripping a planning
    // assertion on resume.
    if !(delta.is_finite() && delta > 0.0 && delta < 1.0) {
        return Err(Dec::err(format!("delta {delta} outside (0, 1)")));
    }
    let resolution_fraction = d.opt_f64()?;
    if let Some(r) = resolution_fraction {
        if !(r.is_finite() && r > 0.0) {
            return Err(Dec::err(format!("resolution fraction {r} not positive")));
        }
    }
    let bound = d.opt_f64()?;
    if let Some(c) = bound {
        if !(c.is_finite() && c > 0.0) {
            return Err(Dec::err(format!("bound {c} not positive")));
        }
    }
    let samples_per_round = d.opt_u64()?;
    if samples_per_round == Some(0) {
        return Err(Dec::err("samples_per_round is zero"));
    }
    let max_samples = d.opt_u64()?;
    if max_samples == Some(0) {
        return Err(Dec::err("max_samples is zero"));
    }
    Ok(QuerySpec {
        group_by,
        measure,
        aggregate,
        algorithm,
        predicate,
        delta,
        resolution_fraction,
        bound,
        samples_per_round,
        max_samples,
    })
}

fn encode_focus_core(e: &mut Enc, c: &SavedFocusCore) {
    e.len_u32(c.estimates.len());
    for &(count, mean) in &c.estimates {
        e.u64(count);
        e.f64_bits(mean);
    }
    for &a in &c.active {
        e.flag(a);
    }
    for &x in &c.exhausted {
        e.flag(x);
    }
    for &eps in &c.frozen_eps {
        e.f64_bits(eps);
    }
    for &s in &c.samples {
        e.u64(s);
    }
    e.u64(c.m);
    e.flag(c.truncated);
}

fn decode_focus_core(d: &mut Dec<'_>) -> Result<SavedFocusCore, CheckpointError> {
    let k = d.count(16)?;
    let mut estimates = Vec::with_capacity(k);
    for _ in 0..k {
        let count = d.u64()?;
        estimates.push((count, d.f64_bits()?));
    }
    let mut active = Vec::with_capacity(k);
    for _ in 0..k {
        active.push(d.flag()?);
    }
    let mut exhausted = Vec::with_capacity(k);
    for _ in 0..k {
        exhausted.push(d.flag()?);
    }
    let mut frozen_eps = Vec::with_capacity(k);
    for _ in 0..k {
        frozen_eps.push(d.f64_bits()?);
    }
    let mut samples = Vec::with_capacity(k);
    for _ in 0..k {
        samples.push(d.u64()?);
    }
    Ok(SavedFocusCore {
        estimates,
        active,
        exhausted,
        frozen_eps,
        samples,
        m: d.u64()?,
        truncated: d.flag()?,
    })
}

const STEPPER_FOCUS: u8 = 0;
const STEPPER_ROUNDROBIN: u8 = 1;
const STEPPER_SUM1: u8 = 2;
const STEPPER_IREFINE: u8 = 3;
const STEPPER_SCAN: u8 = 4;
const STEPPER_SUM2: u8 = 5;
const STEPPER_PARTIAL: u8 = 6;

fn encode_stepper(e: &mut Enc, s: &SavedStepper) {
    match s {
        SavedStepper::Focus(c) => {
            e.u8(STEPPER_FOCUS);
            encode_focus_core(e, c);
        }
        SavedStepper::RoundRobin(c) => {
            e.u8(STEPPER_ROUNDROBIN);
            encode_focus_core(e, c);
        }
        SavedStepper::Sum1(c) => {
            e.u8(STEPPER_SUM1);
            encode_focus_core(e, c);
        }
        SavedStepper::IRefine(s) => {
            e.u8(STEPPER_IREFINE);
            e.len_u32(s.estimates.len());
            for &x in &s.estimates {
                e.f64_bits(x);
            }
            for &x in &s.eps {
                e.f64_bits(x);
            }
            for &x in &s.deltas {
                e.f64_bits(x);
            }
            for &a in &s.active {
                e.flag(a);
            }
            for &n in &s.samples {
                e.u64(n);
            }
            for &(count, sum) in &s.cumulative {
                e.u64(count);
                e.f64_bits(sum);
            }
            e.u64(s.phase);
            e.flag(s.truncated);
        }
        SavedStepper::Scan(s) => {
            e.u8(STEPPER_SCAN);
            e.len_u32(s.estimates.len());
            for &x in &s.estimates {
                e.f64_bits(x);
            }
            for &n in &s.samples {
                e.u64(n);
            }
            e.u64(s.next_group);
        }
        SavedStepper::Sum2(s) => {
            e.u8(STEPPER_SUM2);
            e.len_u32(s.estimates.len());
            for &(count, mean) in &s.estimates {
                e.u64(count);
                e.f64_bits(mean);
            }
            for &a in &s.active {
                e.flag(a);
            }
            for &x in &s.frozen_eps {
                e.f64_bits(x);
            }
            for &n in &s.samples {
                e.u64(n);
            }
            e.u64(s.m);
            e.flag(s.truncated);
        }
        SavedStepper::Partial(p) => {
            e.u8(STEPPER_PARTIAL);
            encode_focus_core(e, &p.core);
            e.len_u32(p.emitted.len());
            for &x in &p.emitted {
                e.flag(x);
            }
            e.len_u32(p.pending.len());
            for em in &p.pending {
                e.u64(em.group as u64);
                e.str(&em.label);
                e.f64_bits(em.estimate);
                e.u64(em.round);
                e.u64(em.total_samples_so_far);
            }
        }
    }
}

fn decode_stepper(d: &mut Dec<'_>) -> Result<SavedStepper, CheckpointError> {
    match d.u8()? {
        STEPPER_FOCUS => Ok(SavedStepper::Focus(decode_focus_core(d)?)),
        STEPPER_ROUNDROBIN => Ok(SavedStepper::RoundRobin(decode_focus_core(d)?)),
        STEPPER_SUM1 => Ok(SavedStepper::Sum1(decode_focus_core(d)?)),
        STEPPER_IREFINE => {
            let k = d.count(8)?;
            let mut estimates = Vec::with_capacity(k);
            for _ in 0..k {
                estimates.push(d.f64_bits()?);
            }
            let mut eps = Vec::with_capacity(k);
            for _ in 0..k {
                eps.push(d.f64_bits()?);
            }
            let mut deltas = Vec::with_capacity(k);
            for _ in 0..k {
                deltas.push(d.f64_bits()?);
            }
            let mut active = Vec::with_capacity(k);
            for _ in 0..k {
                active.push(d.flag()?);
            }
            let mut samples = Vec::with_capacity(k);
            for _ in 0..k {
                samples.push(d.u64()?);
            }
            let mut cumulative = Vec::with_capacity(k);
            for _ in 0..k {
                let count = d.u64()?;
                cumulative.push((count, d.f64_bits()?));
            }
            Ok(SavedStepper::IRefine(SavedIRefine {
                estimates,
                eps,
                deltas,
                active,
                samples,
                cumulative,
                phase: d.u64()?,
                truncated: d.flag()?,
            }))
        }
        STEPPER_SCAN => {
            let k = d.count(8)?;
            let mut estimates = Vec::with_capacity(k);
            for _ in 0..k {
                estimates.push(d.f64_bits()?);
            }
            let mut samples = Vec::with_capacity(k);
            for _ in 0..k {
                samples.push(d.u64()?);
            }
            Ok(SavedStepper::Scan(SavedScan {
                estimates,
                samples,
                next_group: d.u64()?,
            }))
        }
        STEPPER_SUM2 => {
            let k = d.count(16)?;
            let mut estimates = Vec::with_capacity(k);
            for _ in 0..k {
                let count = d.u64()?;
                estimates.push((count, d.f64_bits()?));
            }
            let mut active = Vec::with_capacity(k);
            for _ in 0..k {
                active.push(d.flag()?);
            }
            let mut frozen_eps = Vec::with_capacity(k);
            for _ in 0..k {
                frozen_eps.push(d.f64_bits()?);
            }
            let mut samples = Vec::with_capacity(k);
            for _ in 0..k {
                samples.push(d.u64()?);
            }
            Ok(SavedStepper::Sum2(SavedSum2 {
                estimates,
                active,
                frozen_eps,
                samples,
                m: d.u64()?,
                truncated: d.flag()?,
            }))
        }
        STEPPER_PARTIAL => {
            let core = decode_focus_core(d)?;
            let ke = d.count(1)?;
            let mut emitted = Vec::with_capacity(ke);
            for _ in 0..ke {
                emitted.push(d.flag()?);
            }
            let np = d.count(8)?;
            let mut pending = Vec::with_capacity(np);
            for _ in 0..np {
                let group = d.u64()?;
                pending.push(PartialEmission {
                    group: usize::try_from(group)
                        .map_err(|_| Dec::err(format!("pending group index {group} overflows")))?,
                    label: d.str()?,
                    estimate: d.f64_bits()?,
                    round: d.u64()?,
                    total_samples_so_far: d.u64()?,
                });
            }
            Ok(SavedStepper::Partial(SavedPartial {
                core,
                emitted,
                pending,
            }))
        }
        other => Err(Dec::err(format!("bad stepper tag {other}"))),
    }
}

fn outcome_to_u8(o: Option<StepOutcome>) -> u8 {
    match o {
        Some(StepOutcome::Converged) => 1,
        Some(StepOutcome::BudgetExhausted) => 2,
        // `Running` is never a terminal outcome; encode it (defensively)
        // as "no terminal yet".
        None | Some(StepOutcome::Running) => 0,
    }
}

fn outcome_from_u8(v: u8) -> Result<Option<StepOutcome>, CheckpointError> {
    match v {
        0 => Ok(None),
        1 => Ok(Some(StepOutcome::Converged)),
        2 => Ok(Some(StepOutcome::BudgetExhausted)),
        other => Err(Dec::err(format!("bad terminal byte {other}"))),
    }
}

impl SessionCheckpoint {
    /// Serializes the checkpoint to its versioned binary form.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.0.extend_from_slice(&CHECKPOINT_MAGIC);
        e.u32(CHECKPOINT_VERSION);
        encode_spec(&mut e, &self.spec);
        encode_stepper(&mut e, &self.stepper);
        e.len_u32(self.samplers.len());
        for (drawn, entries) in &self.samplers {
            e.u64(*drawn);
            e.len_u32(entries.len());
            for &(slot, value) in entries {
                e.u64(slot);
                e.u64(value);
            }
        }
        for &w in &self.rng {
            e.u64(w);
        }
        match self.remaining {
            Some(dur) => {
                e.flag(true);
                // u64 nanoseconds cover ~584 years of remaining budget;
                // clamp rather than panic on absurd durations.
                e.u64(u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX));
            }
            None => e.flag(false),
        }
        e.len_u32(self.prev_active.len());
        for &a in &self.prev_active {
            e.flag(a);
        }
        e.u8(outcome_to_u8(self.terminal));
        e.flag(self.budget_tripped);
        e.flag(self.delivered_terminal);
        e.0
    }

    /// Parses a checkpoint from bytes produced by
    /// [`SessionCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Decode`] on truncated, corrupt, oversized,
    /// trailing-garbage, or unknown-version payloads — never a panic.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, CheckpointError> {
        if buf.len() > MAX_CHECKPOINT_BYTES {
            return Err(Dec::err(format!(
                "checkpoint of {} bytes exceeds the {MAX_CHECKPOINT_BYTES}-byte cap",
                buf.len()
            )));
        }
        let mut d = Dec::new(buf);
        let magic = d.take(4)?;
        if magic != CHECKPOINT_MAGIC {
            return Err(Dec::err("bad magic (not a rapidviz checkpoint)"));
        }
        let version = d.u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(Dec::err(format!(
                "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
            )));
        }
        let spec = decode_spec(&mut d)?;
        let stepper = decode_stepper(&mut d)?;
        let ns = d.count(12)?;
        let mut samplers = Vec::with_capacity(ns);
        for _ in 0..ns {
            let drawn = d.u64()?;
            let ne = d.count(16)?;
            let mut entries = Vec::with_capacity(ne);
            for _ in 0..ne {
                let slot = d.u64()?;
                entries.push((slot, d.u64()?));
            }
            samplers.push((drawn, entries));
        }
        let rng = [d.u64()?, d.u64()?, d.u64()?, d.u64()?];
        let remaining = if d.flag()? {
            Some(Duration::from_nanos(d.u64()?))
        } else {
            None
        };
        let na = d.count(1)?;
        let mut prev_active = Vec::with_capacity(na);
        for _ in 0..na {
            prev_active.push(d.flag()?);
        }
        let terminal = outcome_from_u8(d.u8()?)?;
        let budget_tripped = d.flag()?;
        let delivered_terminal = d.flag()?;
        d.finish()?;
        Ok(Self {
            spec,
            stepper,
            samplers,
            rng,
            remaining,
            prev_active,
            terminal,
            budget_tripped,
            delivered_terminal,
        })
    }

    /// Approximate resident bytes of this checkpoint — what a parking
    /// registry charges against its memory cap. Computed structurally
    /// (no serialization pass); tracks the serialized size closely since
    /// the format has no compression.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let sampler_bytes: usize = self
            .samplers
            .iter()
            .map(|(_, entries)| 8 + 4 + entries.len() * 16)
            .sum();
        let spec_bytes: usize = self
            .spec
            .group_by
            .iter()
            .map(|s| 4 + s.len())
            .sum::<usize>()
            + self.spec.measure.len()
            + 64;
        let stepper_bytes = match &self.stepper {
            SavedStepper::Focus(c) | SavedStepper::RoundRobin(c) | SavedStepper::Sum1(c) => {
                c.estimates.len() * 42
            }
            SavedStepper::IRefine(s) => s.estimates.len() * 58,
            SavedStepper::Scan(s) => s.estimates.len() * 16,
            SavedStepper::Sum2(s) => s.estimates.len() * 42,
            SavedStepper::Partial(p) => {
                p.core.estimates.len() * 43
                    + p.pending
                        .iter()
                        .map(|em| 36 + em.label.len())
                        .sum::<usize>()
            }
        };
        64 + spec_bytes + stepper_bytes + sampler_bytes + self.prev_active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich_spec() -> QuerySpec {
        QuerySpec {
            group_by: vec!["airline".into(), "origin".into()],
            measure: "delay".into(),
            aggregate: Aggregate::Avg,
            algorithm: AlgorithmChoice::IRefine,
            predicate: Predicate::And(
                Box::new(Predicate::Or(
                    Box::new(Predicate::eq("origin", "BOS")),
                    Box::new(Predicate::is_in("airline", ["AA", "JB"])),
                )),
                Box::new(Predicate::Not(Box::new(Predicate::Range {
                    column: "delay".into(),
                    lo: Some(0.5),
                    hi: None,
                }))),
            ),
            delta: 0.05,
            resolution_fraction: Some(0.01),
            bound: Some(100.0),
            samples_per_round: Some(4),
            max_samples: Some(10_000),
        }
    }

    fn focus_core() -> SavedFocusCore {
        SavedFocusCore {
            estimates: vec![(10, 1.5), (20, 2.5), (0, 0.0)],
            active: vec![true, false, true],
            exhausted: vec![false, false, true],
            frozen_eps: vec![0.1, 0.2, f64::INFINITY],
            samples: vec![10, 20, 0],
            m: 21,
            truncated: false,
        }
    }

    fn every_stepper() -> Vec<SavedStepper> {
        vec![
            SavedStepper::Focus(focus_core()),
            SavedStepper::RoundRobin(focus_core()),
            SavedStepper::Sum1(focus_core()),
            SavedStepper::IRefine(SavedIRefine {
                estimates: vec![1.0, 2.0],
                eps: vec![0.5, 0.25],
                deltas: vec![0.01, 0.02],
                active: vec![true, false],
                samples: vec![8, 16],
                cumulative: vec![(8, 9.5), (16, 31.0)],
                phase: 3,
                truncated: true,
            }),
            SavedStepper::Scan(SavedScan {
                estimates: vec![4.0, 0.0],
                samples: vec![100, 0],
                next_group: 1,
            }),
            SavedStepper::Sum2(SavedSum2 {
                estimates: vec![(5, 0.3), (7, 0.6)],
                active: vec![false, true],
                frozen_eps: vec![0.05, f64::INFINITY],
                samples: vec![5, 7],
                m: 8,
                truncated: false,
            }),
            SavedStepper::Partial(SavedPartial {
                core: focus_core(),
                emitted: vec![true, false, false],
                pending: vec![PartialEmission {
                    group: 1,
                    label: "JB".into(),
                    estimate: 2.5,
                    round: 20,
                    total_samples_so_far: 30,
                }],
            }),
        ]
    }

    fn checkpoint_with(stepper: SavedStepper) -> SessionCheckpoint {
        SessionCheckpoint {
            spec: rich_spec(),
            stepper,
            samplers: vec![(3, vec![(0, 7), (2, 5)]), (0, vec![]), (1, vec![(4, 4)])],
            rng: [1, 2, 3, u64::MAX],
            remaining: Some(Duration::from_millis(1500)),
            prev_active: vec![true, true, false],
            terminal: None,
            budget_tripped: false,
            delivered_terminal: false,
        }
    }

    #[test]
    fn round_trips_every_stepper_kind() {
        for stepper in every_stepper() {
            let ck = checkpoint_with(stepper);
            let bytes = ck.to_bytes();
            let back = SessionCheckpoint::from_bytes(&bytes)
                .unwrap_or_else(|e| panic!("decode failed for {}: {e}", ck.stepper.kind()));
            assert_eq!(back, ck, "round-trip mismatch for {}", ck.stepper.kind());
        }
    }

    #[test]
    fn round_trips_edge_fields() {
        let mut ck = checkpoint_with(SavedStepper::Scan(SavedScan {
            estimates: vec![],
            samples: vec![],
            next_group: 0,
        }));
        ck.spec.group_by = vec!["g".into()];
        ck.spec.aggregate = Aggregate::Count;
        ck.spec.algorithm = AlgorithmChoice::IFocus;
        ck.spec.predicate = Predicate::True;
        ck.spec.resolution_fraction = None;
        ck.spec.bound = None;
        ck.spec.samples_per_round = None;
        ck.spec.max_samples = None;
        ck.samplers = vec![];
        ck.remaining = None;
        ck.prev_active = vec![];
        ck.terminal = Some(StepOutcome::BudgetExhausted);
        ck.budget_tripped = true;
        ck.delivered_terminal = true;
        let back = SessionCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back, ck);
        let converged = SessionCheckpoint {
            terminal: Some(StepOutcome::Converged),
            ..ck
        };
        let back = SessionCheckpoint::from_bytes(&converged.to_bytes()).unwrap();
        assert_eq!(back, converged);
    }

    #[test]
    fn every_truncation_errors_never_panics() {
        let bytes = checkpoint_with(SavedStepper::Focus(focus_core())).to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                SessionCheckpoint::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_handled() {
        // Flipping any one byte must never panic; it may still decode (a
        // flipped estimate bit is valid data) but usually errors.
        let bytes = checkpoint_with(SavedStepper::Partial(SavedPartial {
            core: focus_core(),
            emitted: vec![false, true, false],
            pending: vec![],
        }))
        .to_bytes();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xFF;
            let _ = SessionCheckpoint::from_bytes(&corrupt);
        }
    }

    #[test]
    fn rejects_bad_magic_version_and_trailing_bytes() {
        let good = checkpoint_with(SavedStepper::Focus(focus_core())).to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        let err = SessionCheckpoint::from_bytes(&bad_magic).unwrap_err();
        assert!(matches!(&err, CheckpointError::Decode(m) if m.contains("magic")));

        let mut bad_version = good.clone();
        bad_version[4..8].copy_from_slice(&99u32.to_le_bytes());
        let err = SessionCheckpoint::from_bytes(&bad_version).unwrap_err();
        assert!(matches!(&err, CheckpointError::Decode(m) if m.contains("version 99")));

        let mut trailing = good.clone();
        trailing.push(0);
        let err = SessionCheckpoint::from_bytes(&trailing).unwrap_err();
        assert!(matches!(&err, CheckpointError::Decode(m) if m.contains("trailing")));

        assert!(SessionCheckpoint::from_bytes(&good).is_ok());
    }

    #[test]
    fn rejects_oversized_payloads_without_reading_them() {
        let huge = vec![0u8; MAX_CHECKPOINT_BYTES + 1];
        let err = SessionCheckpoint::from_bytes(&huge).unwrap_err();
        assert!(matches!(&err, CheckpointError::Decode(m) if m.contains("cap")));
    }

    #[test]
    fn rejects_out_of_range_spec_numbers() {
        // Corrupt delta to NaN by locating its unique bit pattern.
        let ck = checkpoint_with(SavedStepper::Focus(focus_core()));
        let bytes = ck.to_bytes();
        let needle = 0.05f64.to_bits().to_le_bytes();
        let pos = bytes
            .windows(8)
            .position(|w| w == needle)
            .expect("delta bits present");
        let mut corrupt = bytes.clone();
        corrupt[pos..pos + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let err = SessionCheckpoint::from_bytes(&corrupt).unwrap_err();
        assert!(
            matches!(&err, CheckpointError::Decode(m) if m.contains("delta")),
            "expected a delta range error, got {err:?}"
        );

        // Corrupt the bound (100.0) to a negative value.
        let needle = 100.0f64.to_bits().to_le_bytes();
        let pos = bytes
            .windows(8)
            .position(|w| w == needle)
            .expect("bound bits present");
        let mut corrupt = bytes.clone();
        corrupt[pos..pos + 8].copy_from_slice(&(-1.0f64).to_bits().to_le_bytes());
        let err = SessionCheckpoint::from_bytes(&corrupt).unwrap_err();
        assert!(
            matches!(&err, CheckpointError::Decode(m) if m.contains("not positive")),
            "expected a bound range error, got {err:?}"
        );
    }

    #[test]
    fn corrupt_counts_cannot_drive_huge_allocations() {
        // Overwrite the group-by count (first u32 after the 8-byte header)
        // with u32::MAX; the decoder must reject it against the remaining
        // payload instead of allocating.
        let mut bytes = checkpoint_with(SavedStepper::Focus(focus_core())).to_bytes();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = SessionCheckpoint::from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(&err, CheckpointError::Decode(m) if m.contains("exceeds remaining")),
            "expected a count-cap error, got {err:?}"
        );
    }

    #[test]
    fn approx_bytes_tracks_serialized_size() {
        for stepper in every_stepper() {
            let ck = checkpoint_with(stepper);
            let serialized = ck.to_bytes().len();
            let approx = ck.approx_bytes();
            assert!(
                approx >= serialized / 2 && approx <= serialized * 4 + 256,
                "approx {approx} far from serialized {serialized} for {}",
                ck.stepper.kind()
            );
        }
    }

    #[test]
    fn error_display_and_source_are_wired() {
        let decode = CheckpointError::Decode("boom".into());
        assert!(decode.to_string().contains("boom"));
        assert!(std::error::Error::source(&decode).is_none());
        let restore = CheckpointError::from(RestoreError::Unsupported);
        assert!(std::error::Error::source(&restore).is_some());
        assert!(CheckpointError::OpaqueRng.to_string().contains("StdRng"));
    }
}
