//! A fluent query API over the engine — the "five lines to an ordered bar
//! chart" path for downstream users.
//!
//! ```
//! use rapidviz::needletail::{read_csv, CsvOptions, NeedleTail};
//! use rapidviz::VizQuery;
//! use rand::SeedableRng;
//!
//! let csv = "airline,delay\nAA,30\nAA,40\nJB,10\nJB,20\nUA,80\nUA,90\n";
//! let table = read_csv(csv, &CsvOptions::default()).unwrap();
//! let engine = NeedleTail::new(table, &["airline"]).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//!
//! let answer = VizQuery::new(&engine)
//!     .group_by("airline")
//!     .avg("delay")
//!     .delta(0.05)
//!     .execute(&mut rng)
//!     .unwrap();
//!
//! assert_eq!(answer.ranked_labels(), vec!["JB", "AA", "UA"]);
//! ```

use crate::adapter::{NeedletailGroup, SizedNeedletailGroup};
use crate::checkpoint::QuerySpec;
use crate::session::{
    MeanStepper, PlanCacheStats, QuerySession, SessionCore, SessionEngine, SessionRng,
};
use rand::RngCore;
use rapidviz_core::clock::{Clock, SystemClock};
use rapidviz_core::extensions::{count_config, CountSource, IFocusSum1, IFocusSum2};
use rapidviz_core::{AlgoConfig, ExactScan, GroupSource, IFocus, IRefine, RoundRobin};
use rapidviz_needletail::{EngineError, NeedleTail, Predicate};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use crate::checkpoint::{Aggregate, AlgorithmChoice};

/// Builder for an ordering-guaranteed visualization query.
///
/// Two ways to run it:
///
/// * [`VizQuery::execute`] — blocking; returns the final [`QueryAnswer`].
/// * [`VizQuery::start`] — resumable; returns a [`QuerySession`] that
///   yields a [`crate::RoundUpdate`] per round, honors sample/time budgets,
///   and can be cancelled with the best current answer.
///
/// Both drive the same state machines, so fixed-seed results are identical.
#[derive(Debug, Clone)]
pub struct VizQuery<'a> {
    engine: &'a NeedleTail,
    group_by: Vec<String>,
    measure: Option<String>,
    aggregate: Aggregate,
    algorithm: AlgorithmChoice,
    predicate: Predicate,
    delta: f64,
    resolution_fraction: Option<f64>,
    bound: Option<f64>,
    samples_per_round: Option<u64>,
    max_samples: Option<u64>,
    timeout: Option<Duration>,
    deadline: Option<Instant>,
    clock: Arc<dyn Clock>,
}

impl<'a> VizQuery<'a> {
    /// Starts a query against an engine.
    #[must_use]
    pub fn new(engine: &'a NeedleTail) -> Self {
        Self {
            engine,
            group_by: Vec::new(),
            measure: None,
            aggregate: Aggregate::Avg,
            algorithm: AlgorithmChoice::IFocus,
            predicate: Predicate::True,
            delta: 0.05,
            resolution_fraction: None,
            bound: None,
            samples_per_round: None,
            max_samples: None,
            timeout: None,
            deadline: None,
            clock: Arc::new(SystemClock),
        }
    }

    /// Adds a group-by attribute (call twice for a two-attribute group-by,
    /// §6.3.4).
    #[must_use]
    pub fn group_by(mut self, column: impl Into<String>) -> Self {
        self.group_by.push(column.into());
        self
    }

    /// Sets the measure to `AVG(column)`.
    #[must_use]
    pub fn avg(mut self, column: impl Into<String>) -> Self {
        self.measure = Some(column.into());
        self.aggregate = Aggregate::Avg;
        self
    }

    /// Sets the measure to `SUM(column)` (group sizes come from the index).
    #[must_use]
    pub fn sum(mut self, column: impl Into<String>) -> Self {
        self.measure = Some(column.into());
        self.aggregate = Aggregate::Sum;
        self
    }

    /// Sets the aggregate to `COUNT` with **unknown** group sizes: the
    /// engine's size-estimating samplers feed the §6.3.2 reduction of
    /// Algorithm 5, and estimates are normalized counts `s_i ∈ [0, 1]`.
    /// `column` names any indexed numeric column — the sampling machinery
    /// draws through it, but only the size-estimate stream is consumed.
    ///
    /// Tip: near-tied group sizes never separate under exact ordering
    /// (the `z` stream is i.i.d. and never exhausts); set a resolution
    /// ([`VizQuery::resolution_pct`], interpreted on the `[0, 1]` count
    /// scale) or a session budget to bound such runs.
    #[must_use]
    pub fn count(mut self, column: impl Into<String>) -> Self {
        self.measure = Some(column.into());
        self.aggregate = Aggregate::Count;
        self
    }

    /// Overrides the ordering algorithm for `AVG` queries (default:
    /// IFOCUS). `SUM`/`COUNT` queries reject non-default overrides at
    /// execution time.
    #[must_use]
    pub fn algorithm(mut self, algorithm: AlgorithmChoice) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets how many samples each round draws per active group (default 1,
    /// the paper's round structure). Larger batches amortize per-round
    /// bookkeeping and — above the engine's parallel threshold, with the
    /// `parallel` feature — fan the per-group draws out across the shared
    /// worker pool; the anytime ε still tightens with every sample, so the
    /// guarantee is unchanged, at the cost of up to one batch of overshoot
    /// per group.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn samples_per_round(mut self, n: u64) -> Self {
        assert!(n > 0, "samples per round must be positive");
        self.samples_per_round = Some(n);
        self
    }

    /// Caps the total number of samples the run may draw. Checked before
    /// every round; when the cap is reached the session (or `execute`)
    /// reports [`StepOutcome::BudgetExhausted`](crate::StepOutcome::BudgetExhausted)
    /// and returns best-effort
    /// estimates flagged as truncated.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    #[must_use]
    pub fn max_samples(mut self, cap: u64) -> Self {
        assert!(cap > 0, "sample budget must be positive");
        self.max_samples = Some(cap);
        self
    }

    /// Caps the run's wall-clock time, measured from [`VizQuery::start`]
    /// (or [`VizQuery::execute`]). Checked before every round.
    #[must_use]
    pub fn timeout(mut self, budget: Duration) -> Self {
        self.timeout = Some(budget);
        self
    }

    /// Sets an absolute wall-clock deadline. Checked before every round;
    /// combines with [`VizQuery::timeout`] (whichever ends first wins).
    #[must_use]
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Overrides the time source the wall-clock budgets
    /// ([`VizQuery::timeout`] / [`VizQuery::deadline`]) are measured
    /// against (default: the real system clock). Tests and the simulation
    /// harness pass a [`rapidviz_core::clock::SimulatedClock`] here so
    /// deadline skew becomes a deterministic, replayable event.
    #[must_use]
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Restricts rows with a predicate (§6.3.3).
    #[must_use]
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Sets the failure probability `δ` (default 0.05).
    ///
    /// # Panics
    ///
    /// Panics if `δ ∉ (0, 1)`.
    #[must_use]
    pub fn delta(mut self, delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
        self.delta = delta;
        self
    }

    /// Enables the resolution relaxation at `percent`% of the value range
    /// (Problem 2; the paper's experiments use 1%).
    ///
    /// # Panics
    ///
    /// Panics if `percent <= 0`.
    #[must_use]
    pub fn resolution_pct(mut self, percent: f64) -> Self {
        assert!(percent > 0.0, "resolution must be positive");
        self.resolution_fraction = Some(percent / 100.0);
        self
    }

    /// Overrides the value bound `c`. Without this, the engine infers it
    /// from the measure column's observed maximum (padded 10%) — fine for
    /// exploration; supply a domain bound for the strict guarantee.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`.
    #[must_use]
    pub fn bound(mut self, c: f64) -> Self {
        assert!(c > 0.0, "bound must be positive");
        self.bound = Some(c);
        self
    }

    /// Plans and runs the query to completion — a thin loop over the same
    /// resumable state machine [`VizQuery::start`] hands out, so
    /// fixed-seed results are identical between the two entry points (and
    /// byte-identical to the historical blocking implementation). Budgets,
    /// if configured, are honored here too.
    ///
    /// # Errors
    ///
    /// Returns engine errors for missing/unindexed/non-numeric columns, a
    /// synthesized error when the builder is incomplete, and
    /// [`EngineError::Unsupported`] for invalid option combinations (e.g.
    /// an algorithm override on `SUM`/`COUNT`).
    pub fn execute(&self, rng: &mut dyn RngCore) -> Result<QueryAnswer, EngineError> {
        let mut core = self.prepare_core(rng)?;
        while core.raw_step(rng).is_running() {}
        Ok(core.finish())
    }

    /// Plans the query and begins a resumable session: the bootstrap
    /// samples are drawn, and every subsequent [`QuerySession::step`]
    /// advances one round. The session owns its groups and the given RNG,
    /// so it can live across UI frames; see [`crate::session`] for a
    /// worked progressive-rendering example.
    ///
    /// # Errors
    ///
    /// Same conditions as [`VizQuery::execute`].
    pub fn start(&self, rng: impl RngCore + 'static) -> Result<QuerySession, EngineError> {
        // Keep the concrete shim StdRng visible (instead of erasing it
        // behind `dyn RngCore` immediately) so the session can capture its
        // state words when checkpointing.
        let mut rng = SessionRng::capture(rng);
        let core = self.prepare_core(&mut rng)?;
        Ok(QuerySession::new(core, rng, Some(self.spec())))
    }

    /// The re-plannable description of this query — everything a
    /// [`crate::SessionCheckpoint`] needs to rebuild the builder on
    /// resume, minus the engine reference and clock (supplied by the
    /// resuming process).
    pub(crate) fn spec(&self) -> QuerySpec {
        QuerySpec {
            group_by: self.group_by.clone(),
            measure: self.measure.clone().unwrap_or_default(),
            aggregate: self.aggregate,
            algorithm: self.algorithm,
            predicate: self.predicate.clone(),
            delta: self.delta,
            resolution_fraction: self.resolution_fraction,
            bound: self.bound,
            samples_per_round: self.samples_per_round,
            max_samples: self.max_samples,
        }
    }

    /// Rebuilds a builder from a checkpointed spec. The checkpoint stores
    /// the **remaining** time-to-deadline, passed here as `timeout` so the
    /// budget re-anchors at `clock.now()` — wall time spent parked never
    /// counts against the query.
    pub(crate) fn from_spec(
        engine: &'a NeedleTail,
        spec: &QuerySpec,
        clock: Arc<dyn Clock>,
        timeout: Option<Duration>,
    ) -> Self {
        Self {
            engine,
            group_by: spec.group_by.clone(),
            measure: Some(spec.measure.clone()),
            aggregate: spec.aggregate,
            algorithm: spec.algorithm,
            predicate: spec.predicate.clone(),
            delta: spec.delta,
            resolution_fraction: spec.resolution_fraction,
            bound: spec.bound,
            samples_per_round: spec.samples_per_round,
            max_samples: spec.max_samples,
            timeout,
            deadline: None,
            clock,
        }
    }

    /// Validates the builder, constructs the storage-backed group
    /// samplers, and ignites the algorithm state machine (bootstrap draws
    /// included) — shared by [`VizQuery::execute`], [`VizQuery::start`],
    /// and the checkpoint-resume path.
    pub(crate) fn prepare_core(&self, rng: &mut dyn RngCore) -> Result<SessionCore, EngineError> {
        let measure = self.measure.as_ref().ok_or_else(|| {
            EngineError::InvalidQuery(
                "no measure set: call .avg(column), .sum(column), or .count(column)".into(),
            )
        })?;
        if self.group_by.is_empty() {
            return Err(EngineError::InvalidQuery(
                "no group-by set: call .group_by(column) at least once".into(),
            ));
        }
        // Timeouts anchor at "now" as told by the configured clock, so a
        // simulated clock governs the whole budget pipeline.
        let deadline = match (self.deadline, self.timeout) {
            (Some(d), Some(t)) => Some(d.min(self.clock.now() + t)),
            (Some(d), None) => Some(d),
            (None, Some(t)) => Some(self.clock.now() + t),
            (None, None) => None,
        };
        // Bracket planning with engine metrics snapshots so the session
        // records how the planning caches treated this query (the
        // observability a serving layer keys on).
        let metrics_before = self.engine.metrics().snapshot();
        let (engine, population) = match self.aggregate {
            Aggregate::Avg | Aggregate::Sum => {
                let handles = if self.group_by.len() == 1 {
                    self.engine
                        .group_handles(&self.group_by[0], measure, &self.predicate)?
                } else {
                    let cols: Vec<&str> = self.group_by.iter().map(String::as_str).collect();
                    self.engine
                        .group_handles_multi(&cols, measure, &self.predicate)?
                };
                let mut groups: Vec<NeedletailGroup> =
                    handles.into_iter().map(NeedletailGroup::new).collect();
                let c = match self.bound {
                    Some(c) => c,
                    None => self.infer_bound(measure)?,
                };
                let mut config = AlgoConfig::new(c, self.delta);
                if let Some(frac) = self.resolution_fraction {
                    config = config.with_resolution(c * frac);
                }
                if let Some(batch) = self.samples_per_round {
                    config = config.with_samples_per_round(batch);
                }
                let stepper = match (self.aggregate, self.algorithm) {
                    (Aggregate::Avg, AlgorithmChoice::IFocus) => {
                        MeanStepper::IFocus(IFocus::new(config).start(&mut groups, rng))
                    }
                    (Aggregate::Avg, AlgorithmChoice::IRefine) => {
                        MeanStepper::IRefine(IRefine::new(config).start(&mut groups, rng))
                    }
                    (Aggregate::Avg, AlgorithmChoice::RoundRobin) => {
                        MeanStepper::RoundRobin(RoundRobin::new(config).start(&mut groups, rng))
                    }
                    (Aggregate::Avg, AlgorithmChoice::ExactScan) => {
                        MeanStepper::Scan(ExactScan::new(config).start(&mut groups, rng))
                    }
                    (Aggregate::Sum, AlgorithmChoice::IFocus) => {
                        MeanStepper::Sum1(IFocusSum1::new(config).start(&mut groups, rng))
                    }
                    (Aggregate::Sum, other) => {
                        return Err(EngineError::Unsupported(format!(
                            "SUM uses its dedicated Algorithm 4; cannot override with {other:?}"
                        )));
                    }
                    (Aggregate::Count, _) => unreachable!("handled in the outer match"),
                };
                let population = groups.iter().map(GroupSource::len).sum();
                (SessionEngine::Mean { stepper, groups }, population)
            }
            Aggregate::Count => {
                if self.bound.is_some() {
                    // Rejected rather than ignored, for the same loudness
                    // as the algorithm-override check below.
                    return Err(EngineError::Unsupported(
                        "COUNT estimates normalized fractions on the fixed [0, 1] scale; \
                         .bound() does not apply"
                            .into(),
                    ));
                }
                if self.algorithm != AlgorithmChoice::IFocus {
                    return Err(EngineError::Unsupported(format!(
                        "COUNT uses its dedicated Algorithm 5 reduction; cannot override with {:?}",
                        self.algorithm
                    )));
                }
                if self.group_by.len() != 1 {
                    return Err(EngineError::Unsupported(
                        "COUNT supports a single group-by attribute".into(),
                    ));
                }
                let handles = self
                    .engine
                    .sized_group_handles(&self.group_by[0], measure)?;
                let mut groups: Vec<CountSource<SizedNeedletailGroup>> = handles
                    .into_iter()
                    .map(|h| CountSource::new(SizedNeedletailGroup::new(h)))
                    .collect();
                let population = groups.iter().map(|g| g.inner().handle().eligible()).sum();
                // The z stream lives in [0, 1], so c = 1 and the resolution
                // fraction applies directly on the normalized-count scale.
                let mut config = AlgoConfig::new(1.0, self.delta);
                if let Some(frac) = self.resolution_fraction {
                    config = config.with_resolution(frac);
                }
                if let Some(batch) = self.samples_per_round {
                    config = config.with_samples_per_round(batch);
                }
                let stepper = IFocusSum2::new(count_config(&config)).start(&mut groups, rng);
                (SessionEngine::Sized { stepper, groups }, population)
            }
        };
        let planning = PlanCacheStats::delta(&metrics_before, &self.engine.metrics().snapshot());
        Ok(SessionCore::new(
            engine,
            population,
            self.max_samples,
            deadline,
            Arc::clone(&self.clock),
            planning,
        ))
    }

    /// Infers `c` from the measure column's observed maximum (padded 10%),
    /// served from [`NeedleTail`]'s per-column maxima cache (computed on
    /// the column's first use, then O(1)) — planning never re-scans the
    /// table per query.
    ///
    /// The inferred bound deliberately ignores any [`VizQuery::filter`]
    /// predicate: the unfiltered column maximum upper-bounds the maximum of
    /// every filtered subset, so the bound stays conservative and the
    /// ordering guarantee safe (at worst a few extra samples on heavily
    /// filtered queries).
    fn infer_bound(&self, measure: &str) -> Result<f64, EngineError> {
        let schema = self.engine.table().schema();
        schema
            .column_index(measure)
            .ok_or_else(|| EngineError::NoSuchColumn(measure.to_owned()))?;
        // `column_max` is None for string columns (rejected upstream when
        // the group handles were built) and for empty tables, where the
        // 0-row "maximum" degenerates to the 1.0 floor exactly as the old
        // full scan did.
        let max = self.engine.column_max(measure).unwrap_or(0.0).max(0.0);
        Ok((max * 1.1).max(1.0))
    }
}

// `QueryAnswer` lives next to the session that constructs it; re-exported
// here because `VizQuery::run` is its public producer.
pub use crate::session::QueryAnswer;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rapidviz_needletail::{ColumnDef, DataType, Schema, TableBuilder, Value};

    fn engine() -> NeedleTail {
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("origin", DataType::Str),
            ColumnDef::new("delay", DataType::Float),
        ]));
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..30_000 {
            let (name, mu) = [("AA", 60.0), ("JB", 20.0), ("UA", 85.0)][rng.gen_range(0..3)];
            let origin = ["BOS", "SFO"][rng.gen_range(0..2)];
            let delay = if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 };
            b.push_row(vec![name.into(), origin.into(), Value::Float(delay)]);
        }
        NeedleTail::new(b.finish(), &["name"]).unwrap()
    }

    #[test]
    fn avg_query_end_to_end() {
        let engine = engine();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let answer = VizQuery::new(&engine)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .resolution_pct(1.0)
            .execute(&mut rng)
            .unwrap();
        assert_eq!(answer.ranked_labels(), vec!["JB", "AA", "UA"]);
        assert!(answer.fraction_sampled() < 1.0);
        let chart = answer.to_bar_chart(20);
        assert_eq!(chart.lines().count(), 3);
    }

    #[test]
    fn filtered_query() {
        let engine = engine();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let answer = VizQuery::new(&engine)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .filter(Predicate::eq("origin", "BOS"))
            .execute(&mut rng)
            .unwrap();
        assert_eq!(answer.ranked_labels(), vec!["JB", "AA", "UA"]);
    }

    #[test]
    fn multi_group_by_query() {
        let engine = engine();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let answer = VizQuery::new(&engine)
            .group_by("name")
            .group_by("origin")
            .avg("delay")
            .bound(100.0)
            .resolution_pct(2.0)
            .execute(&mut rng)
            .unwrap();
        assert_eq!(answer.result.labels.len(), 6, "3 airlines x 2 origins");
        assert!(answer.result.labels.iter().any(|l| l == "AA|BOS"));
    }

    #[test]
    fn sum_query_orders_by_total() {
        let engine = engine();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let answer = VizQuery::new(&engine)
            .group_by("name")
            .sum("delay")
            .bound(100.0)
            .execute(&mut rng)
            .unwrap();
        // Roughly equal sizes: SUM order mirrors AVG order here.
        assert_eq!(answer.ranked_labels().last(), Some(&"UA"));
    }

    #[test]
    fn inferred_bound_still_correct() {
        let engine = engine();
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let answer = VizQuery::new(&engine)
            .group_by("name")
            .avg("delay")
            .execute(&mut rng)
            .unwrap();
        assert_eq!(answer.ranked_labels(), vec!["JB", "AA", "UA"]);
    }

    #[test]
    fn builder_errors() {
        let engine = engine();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        // Incomplete builders are invalid queries, not phantom columns.
        let no_group = VizQuery::new(&engine)
            .avg("delay")
            .execute(&mut rng)
            .unwrap_err();
        assert!(
            matches!(&no_group, EngineError::InvalidQuery(msg) if msg.contains("group-by")),
            "expected InvalidQuery about the group-by, got {no_group:?}"
        );
        let no_measure = VizQuery::new(&engine)
            .group_by("name")
            .execute(&mut rng)
            .unwrap_err();
        assert!(
            matches!(&no_measure, EngineError::InvalidQuery(msg) if msg.contains("measure")),
            "expected InvalidQuery about the measure, got {no_measure:?}"
        );
        // A genuinely missing/unindexed column still reports a column
        // error naming the real column, never a sentinel.
        let bad_column = VizQuery::new(&engine)
            .group_by("nope")
            .avg("delay")
            .execute(&mut rng)
            .unwrap_err();
        assert!(
            matches!(&bad_column, EngineError::NotIndexed(c) if c == "nope"),
            "expected NotIndexed(\"nope\"), got {bad_column:?}"
        );
        let bad_measure = VizQuery::new(&engine)
            .group_by("name")
            .avg("nope")
            .execute(&mut rng)
            .unwrap_err();
        assert_eq!(bad_measure, EngineError::NoSuchColumn("nope".into()));
    }
}
