//! A fluent query API over the engine — the "five lines to an ordered bar
//! chart" path for downstream users.
//!
//! ```
//! use rapidviz::needletail::{read_csv, CsvOptions, NeedleTail};
//! use rapidviz::VizQuery;
//! use rand::SeedableRng;
//!
//! let csv = "airline,delay\nAA,30\nAA,40\nJB,10\nJB,20\nUA,80\nUA,90\n";
//! let table = read_csv(csv, &CsvOptions::default()).unwrap();
//! let engine = NeedleTail::new(table, &["airline"]).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//!
//! let answer = VizQuery::new(&engine)
//!     .group_by("airline")
//!     .avg("delay")
//!     .delta(0.05)
//!     .execute(&mut rng)
//!     .unwrap();
//!
//! assert_eq!(answer.ranked_labels(), vec!["JB", "AA", "UA"]);
//! ```

use crate::adapter::NeedletailGroup;
use rand::RngCore;
use rapidviz_core::extensions::IFocusSum1;
use rapidviz_core::{viz, AlgoConfig, GroupSource, IFocus, RunResult};
use rapidviz_needletail::{EngineError, NeedleTail, Predicate};

/// Which aggregate the query computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Aggregate {
    /// `AVG(measure)` — Problem 1 / Algorithm 1.
    #[default]
    Avg,
    /// `SUM(measure)` with known group sizes — Algorithm 4.
    Sum,
}

/// Builder for an ordering-guaranteed visualization query.
#[derive(Debug, Clone)]
pub struct VizQuery<'a> {
    engine: &'a NeedleTail,
    group_by: Vec<String>,
    measure: Option<String>,
    aggregate: Aggregate,
    predicate: Predicate,
    delta: f64,
    resolution_fraction: Option<f64>,
    bound: Option<f64>,
}

impl<'a> VizQuery<'a> {
    /// Starts a query against an engine.
    #[must_use]
    pub fn new(engine: &'a NeedleTail) -> Self {
        Self {
            engine,
            group_by: Vec::new(),
            measure: None,
            aggregate: Aggregate::Avg,
            predicate: Predicate::True,
            delta: 0.05,
            resolution_fraction: None,
            bound: None,
        }
    }

    /// Adds a group-by attribute (call twice for a two-attribute group-by,
    /// §6.3.4).
    #[must_use]
    pub fn group_by(mut self, column: impl Into<String>) -> Self {
        self.group_by.push(column.into());
        self
    }

    /// Sets the measure to `AVG(column)`.
    #[must_use]
    pub fn avg(mut self, column: impl Into<String>) -> Self {
        self.measure = Some(column.into());
        self.aggregate = Aggregate::Avg;
        self
    }

    /// Sets the measure to `SUM(column)` (group sizes come from the index).
    #[must_use]
    pub fn sum(mut self, column: impl Into<String>) -> Self {
        self.measure = Some(column.into());
        self.aggregate = Aggregate::Sum;
        self
    }

    /// Restricts rows with a predicate (§6.3.3).
    #[must_use]
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Sets the failure probability `δ` (default 0.05).
    ///
    /// # Panics
    ///
    /// Panics if `δ ∉ (0, 1)`.
    #[must_use]
    pub fn delta(mut self, delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
        self.delta = delta;
        self
    }

    /// Enables the resolution relaxation at `percent`% of the value range
    /// (Problem 2; the paper's experiments use 1%).
    ///
    /// # Panics
    ///
    /// Panics if `percent <= 0`.
    #[must_use]
    pub fn resolution_pct(mut self, percent: f64) -> Self {
        assert!(percent > 0.0, "resolution must be positive");
        self.resolution_fraction = Some(percent / 100.0);
        self
    }

    /// Overrides the value bound `c`. Without this, the engine infers it
    /// from the measure column's observed maximum (padded 10%) — fine for
    /// exploration; supply a domain bound for the strict guarantee.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`.
    #[must_use]
    pub fn bound(mut self, c: f64) -> Self {
        assert!(c > 0.0, "bound must be positive");
        self.bound = Some(c);
        self
    }

    /// Plans and runs the query.
    ///
    /// # Errors
    ///
    /// Returns engine errors for missing/unindexed/non-numeric columns, or
    /// a synthesized error when the builder is incomplete.
    pub fn execute(&self, rng: &mut dyn RngCore) -> Result<QueryAnswer, EngineError> {
        let measure = self
            .measure
            .as_ref()
            .ok_or_else(|| EngineError::NoSuchColumn("<no measure set>".into()))?;
        if self.group_by.is_empty() {
            return Err(EngineError::NoSuchColumn("<no group-by set>".into()));
        }
        let handles = if self.group_by.len() == 1 {
            self.engine
                .group_handles(&self.group_by[0], measure, &self.predicate)?
        } else {
            let cols: Vec<&str> = self.group_by.iter().map(String::as_str).collect();
            self.engine
                .group_handles_multi(&cols, measure, &self.predicate)?
        };
        let mut groups: Vec<NeedletailGroup> =
            handles.into_iter().map(NeedletailGroup::new).collect();

        let c = match self.bound {
            Some(c) => c,
            None => self.infer_bound(measure)?,
        };
        let mut config = AlgoConfig::new(c, self.delta);
        if let Some(frac) = self.resolution_fraction {
            config = config.with_resolution(c * frac);
        }
        let result = match self.aggregate {
            Aggregate::Avg => IFocus::new(config).run(&mut groups, rng),
            Aggregate::Sum => IFocusSum1::new(config).run(&mut groups, rng),
        };
        let population = groups.iter().map(GroupSource::len).sum();
        Ok(QueryAnswer { result, population })
    }

    /// Infers `c` from the measure column (observed max, padded 10%).
    fn infer_bound(&self, measure: &str) -> Result<f64, EngineError> {
        let table = self.engine.table();
        let idx = table
            .schema()
            .column_index(measure)
            .ok_or_else(|| EngineError::NoSuchColumn(measure.to_owned()))?;
        let mut max = 0.0f64;
        for row in 0..table.row_count() {
            max = max.max(table.float_value(row, idx));
        }
        Ok((max * 1.1).max(1.0))
    }
}

/// A completed query: the run result plus display helpers.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// The underlying algorithm result.
    pub result: RunResult,
    /// Total rows eligible across groups.
    pub population: u64,
}

impl QueryAnswer {
    /// Group labels sorted by ascending estimate.
    #[must_use]
    pub fn ranked_labels(&self) -> Vec<&str> {
        self.result.ranked().into_iter().map(|(l, _)| l).collect()
    }

    /// Fraction of eligible rows sampled.
    #[must_use]
    pub fn fraction_sampled(&self) -> f64 {
        self.result.fraction_sampled(self.population)
    }

    /// Renders the answer as a bar chart (ascending), `width` chars wide.
    #[must_use]
    pub fn to_bar_chart(&self, width: usize) -> String {
        let ranked = self.result.ranked();
        let labels: Vec<&str> = ranked.iter().map(|(l, _)| *l).collect();
        let values: Vec<f64> = ranked.iter().map(|(_, v)| *v).collect();
        viz::bar_chart(&labels, &values, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rapidviz_needletail::{ColumnDef, DataType, Schema, TableBuilder, Value};

    fn engine() -> NeedleTail {
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("origin", DataType::Str),
            ColumnDef::new("delay", DataType::Float),
        ]));
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..30_000 {
            let (name, mu) = [("AA", 60.0), ("JB", 20.0), ("UA", 85.0)][rng.gen_range(0..3)];
            let origin = ["BOS", "SFO"][rng.gen_range(0..2)];
            let delay = if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 };
            b.push_row(vec![name.into(), origin.into(), Value::Float(delay)]);
        }
        NeedleTail::new(b.finish(), &["name"]).unwrap()
    }

    #[test]
    fn avg_query_end_to_end() {
        let engine = engine();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let answer = VizQuery::new(&engine)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .resolution_pct(1.0)
            .execute(&mut rng)
            .unwrap();
        assert_eq!(answer.ranked_labels(), vec!["JB", "AA", "UA"]);
        assert!(answer.fraction_sampled() < 1.0);
        let chart = answer.to_bar_chart(20);
        assert_eq!(chart.lines().count(), 3);
    }

    #[test]
    fn filtered_query() {
        let engine = engine();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let answer = VizQuery::new(&engine)
            .group_by("name")
            .avg("delay")
            .bound(100.0)
            .filter(Predicate::eq("origin", "BOS"))
            .execute(&mut rng)
            .unwrap();
        assert_eq!(answer.ranked_labels(), vec!["JB", "AA", "UA"]);
    }

    #[test]
    fn multi_group_by_query() {
        let engine = engine();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let answer = VizQuery::new(&engine)
            .group_by("name")
            .group_by("origin")
            .avg("delay")
            .bound(100.0)
            .resolution_pct(2.0)
            .execute(&mut rng)
            .unwrap();
        assert_eq!(answer.result.labels.len(), 6, "3 airlines x 2 origins");
        assert!(answer.result.labels.iter().any(|l| l == "AA|BOS"));
    }

    #[test]
    fn sum_query_orders_by_total() {
        let engine = engine();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let answer = VizQuery::new(&engine)
            .group_by("name")
            .sum("delay")
            .bound(100.0)
            .execute(&mut rng)
            .unwrap();
        // Roughly equal sizes: SUM order mirrors AVG order here.
        assert_eq!(answer.ranked_labels().last(), Some(&"UA"));
    }

    #[test]
    fn inferred_bound_still_correct() {
        let engine = engine();
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let answer = VizQuery::new(&engine)
            .group_by("name")
            .avg("delay")
            .execute(&mut rng)
            .unwrap();
        assert_eq!(answer.ranked_labels(), vec!["JB", "AA", "UA"]);
    }

    #[test]
    fn builder_errors() {
        let engine = engine();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        assert!(VizQuery::new(&engine)
            .avg("delay")
            .execute(&mut rng)
            .is_err());
        assert!(VizQuery::new(&engine)
            .group_by("name")
            .execute(&mut rng)
            .is_err());
        assert!(VizQuery::new(&engine)
            .group_by("nope")
            .avg("delay")
            .execute(&mut rng)
            .is_err());
    }
}
