//! Multi-query scheduling over resumable sessions: the substrate for
//! serving many concurrent dashboard queries from one sampling budget.
//!
//! [`MultiQueryScheduler`] admits any number of [`QuerySession`]s —
//! heterogeneous in aggregate (AVG / SUM / COUNT) and ordering algorithm —
//! and interleaves **one [`QuerySession::step`] per scheduling quantum**
//! under a pluggable [`SchedulePolicy`]. Each step's [`RoundUpdate`] is
//! streamed back tagged with its [`QueryId`], either poll-style
//! ([`MultiQueryScheduler::poll`]) or through a callback
//! ([`MultiQueryScheduler::run`]), so one render loop can progressively
//! draw every chart of a dashboard fan-out.
//!
//! Two resources are managed across sessions:
//!
//! * a **global sample budget**
//!   ([`MultiQueryScheduler::with_global_sample_budget`]) — the multi-query
//!   analogue of a session's own `max_samples`, checked before every
//!   quantum, so the whole workload stops within one round's worth of
//!   draws of the cap;
//! * **per-session memory accounting** — after every quantum the session's
//!   [`QuerySession::approx_bytes`] is charged to its [`SessionStats`]
//!   (current and peak), and an optional cap
//!   ([`MultiQueryScheduler::with_session_memory_cap`]) evicts sessions
//!   that outgrow it (their best-effort answer stays available).
//!
//! **Determinism invariant.** Every session owns its RNG and draws only
//! when it is stepped, so the interleaving order cannot perturb any
//! session's results: a session's final [`QueryAnswer`] is byte-identical
//! to running it alone with the same seed, under every policy. The
//! regression tests in `tests/scheduler.rs` hold all three policies to
//! exactly that.
//!
//! # Worked example: a deadline-aware two-query dashboard
//!
//! ```
//! use rapidviz::needletail::{read_csv, CsvOptions, NeedleTail};
//! use rapidviz::scheduler::{MultiQueryScheduler, SchedulePolicy, SchedulerEvent};
//! use rapidviz::VizQuery;
//! use rand::SeedableRng;
//! use std::time::{Duration, Instant};
//!
//! let mut csv = String::from("airline,delay\n");
//! for i in 0..600 {
//!     let (name, delay) = match i % 3 {
//!         0 => ("AA", 40.0 + f64::from(i % 7)),
//!         1 => ("JB", 10.0 + f64::from(i % 5)),
//!         _ => ("UA", 80.0 + f64::from(i % 11)),
//!     };
//!     csv.push_str(&format!("{name},{delay}\n"));
//! }
//! let table = read_csv(&csv, &CsvOptions::default()).unwrap();
//! let engine = NeedleTail::new(table, &["airline"]).unwrap();
//!
//! // An urgent interactive query with a deadline, and a patient
//! // background refinement of the same chart.
//! let urgent = VizQuery::new(&engine)
//!     .group_by("airline")
//!     .avg("delay")
//!     .bound(100.0)
//!     .resolution_pct(2.0)
//!     .deadline(Instant::now() + Duration::from_secs(30))
//!     .start(rand::rngs::StdRng::seed_from_u64(1))
//!     .unwrap();
//! let background = VizQuery::new(&engine)
//!     .group_by("airline")
//!     .avg("delay")
//!     .bound(100.0)
//!     .start(rand::rngs::StdRng::seed_from_u64(2))
//!     .unwrap();
//!
//! let mut sched = MultiQueryScheduler::new(SchedulePolicy::DeadlineAware);
//! let urgent_id = sched.admit(urgent);
//! let _background_id = sched.admit(background);
//!
//! // Earliest deadline first: the urgent session gets every quantum until
//! // it terminates — here it converges early thanks to its resolution —
//! // and only then does the background session proceed.
//! let mut first_done = None;
//! sched.run(|event| {
//!     if let SchedulerEvent::Round { id, update } = event {
//!         if !update.outcome.is_running() && first_done.is_none() {
//!             first_done = Some(*id);
//!         }
//!     }
//! });
//! assert_eq!(first_done, Some(urgent_id));
//! for (_id, answer) in sched.finish_all() {
//!     assert_eq!(answer.ranked_labels(), vec!["JB", "AA", "UA"]);
//! }
//! ```

use crate::query::QueryAnswer;
use crate::session::{PlanCacheStats, QuerySession, RoundUpdate};
use rapidviz_core::{Snapshot, StepOutcome};
use std::collections::VecDeque;
use std::time::Instant;

/// Identifies one admitted session within a scheduler (assigned in
/// admission order, unique for the scheduler's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(u64);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Which session the scheduler picks each quantum.
///
/// All three policies are deterministic (ties break toward the earliest
/// admission), and none can change any session's *results* — only its
/// latency relative to its neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Weighted round-robin: each runnable session earns credit
    /// proportional to its count of still-active (uncertified) groups and
    /// the highest credit runs. Sessions with more unresolved bars get
    /// proportionally more quanta — the multi-query echo of IFOCUS
    /// spending its samples on the contentious groups.
    #[default]
    FairShare,
    /// Earliest-deadline-first over each session's configured wall-clock
    /// deadline ([`crate::VizQuery::deadline`] /
    /// [`crate::VizQuery::timeout`]). Sessions without a deadline run only
    /// when no deadline-bearing session is runnable.
    DeadlineAware,
    /// Prefer the session closest to certifying its next group: the one
    /// whose best-positioned active interval needs the least further
    /// shrinkage to separate from its neighbours. Drains sessions to
    /// completion roughly shortest-remaining-work-first, maximizing the
    /// rate of finished bars on the dashboard.
    GreedyConvergence,
}

/// What one [`MultiQueryScheduler::poll`] call produced.
#[derive(Debug)]
pub enum SchedulerEvent {
    /// A session advanced one round; `update` is its tagged
    /// [`RoundUpdate`] (the same struct a standalone session yields).
    Round {
        /// The session that was stepped.
        id: QueryId,
        /// Its round update, including the full snapshot.
        update: RoundUpdate,
    },
    /// A session's algorithm state outgrew the per-session memory cap and
    /// the session was evicted: its over-cap state was released on the
    /// spot (the session is finished immediately) and it will not be
    /// scheduled again, but its best-effort answer remains available via
    /// [`MultiQueryScheduler::finish`] / [`MultiQueryScheduler::finish_all`].
    MemoryEvicted {
        /// The evicted session.
        id: QueryId,
        /// Its resident-byte estimate at eviction time.
        bytes: usize,
    },
    /// The global sample budget is spent (checked before every quantum, so
    /// overshoot is bounded by one round's draws) while sessions that
    /// still want quanta remain. Returned on **every** poll in that state
    /// — including for sessions admitted after exhaustion — so a caller is
    /// always told why its work is not running; remaining answers are
    /// best-effort.
    GlobalBudgetExhausted {
        /// Lifetime samples drawn across all sessions (finished-out
        /// sessions included) at the stop.
        total_samples: u64,
    },
    /// Nothing runnable remains: every admitted session is terminal or
    /// evicted, or the scheduler is empty.
    Drained,
}

/// Why [`MultiQueryScheduler::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every session reached a terminal outcome (or was evicted).
    Drained,
    /// The global sample budget tripped first.
    GlobalBudgetExhausted,
}

/// Per-session bookkeeping the scheduler maintains across quanta.
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// Scheduling quanta this session has received.
    pub steps: u64,
    /// Samples the session has drawn so far (bootstrap included).
    pub total_samples: u64,
    /// Resident-byte estimate of the session's algorithm state after its
    /// last quantum ([`QuerySession::approx_bytes`]).
    pub approx_bytes: usize,
    /// High-water mark of `approx_bytes` over the session's lifetime
    /// (`approx_bytes` itself drops to 0 at eviction — the state is
    /// released, only the answer is retained).
    pub peak_bytes: usize,
    /// The session's current terminal status ([`StepOutcome::Running`]
    /// while it still wants quanta).
    pub outcome: StepOutcome,
    /// Whether the per-session memory cap evicted it.
    pub evicted: bool,
    /// How the engine's planning caches treated this query's planning
    /// phase (captured at admission from
    /// [`QuerySession::planning_stats`]): a warm repeat plans with
    /// `plan_hits > 0` and zero misses, a cold plan shows the misses. The
    /// signal a serving layer watches to tell cache-friendly workloads
    /// from filter-diverse ones that pay cold-plan cost per request.
    pub planning: PlanCacheStats,
}

/// One admitted session plus its scheduling state.
///
/// Invariant: exactly one of `session` / `answer` is `Some` — the session
/// until eviction releases its state, the parked answer afterwards.
struct Slot {
    id: QueryId,
    session: Option<QuerySession>,
    /// Best-effort answer parked at eviction time (the session's
    /// algorithm state is dropped then, so an over-cap session stops
    /// costing memory the moment it is evicted).
    answer: Option<QueryAnswer>,
    /// Effective deadline captured at admission (for EDF).
    deadline: Option<Instant>,
    /// Fair-share credit (smooth weighted round-robin).
    credit: i64,
    /// Active-group count after the last quantum (the fair-share weight).
    active_count: usize,
    /// Whether the slot still wants quanta — maintained incrementally at
    /// admission, after each step, and at eviction, so the per-quantum
    /// selection loops read a flag instead of re-deriving it from the
    /// session (`runnable ⇔ session.is_some() && !session.is_finished()`).
    runnable: bool,
    /// Greedy-convergence score: how much interval overlap still blocks
    /// the session's best-positioned active group (0 = certifies next).
    /// Maintained only under [`SchedulePolicy::GreedyConvergence`].
    proximity: f64,
    stats: SessionStats,
}

impl Slot {
    fn runnable(&self) -> bool {
        debug_assert_eq!(
            self.runnable,
            self.session.as_ref().is_some_and(|s| !s.is_finished()),
            "incrementally maintained runnable flag out of sync"
        );
        self.runnable
    }

    /// Fair-share weight: remaining active groups (floor 1, so a session
    /// between certifications still progresses).
    fn weight(&self) -> i64 {
        self.active_count.max(1) as i64
    }

    /// Lifetime samples this slot has drawn (tracked stats once the
    /// session itself is gone).
    fn total_samples(&self) -> u64 {
        match &self.session {
            Some(session) => session.total_samples(),
            None => self.stats.total_samples,
        }
    }

    /// The slot's best current answer, consuming it. `None` only if the
    /// slot invariant (exactly one of `session` / `answer` is set) has
    /// been breached — callers degrade gracefully rather than abort a
    /// whole serving process over one broken slot.
    fn into_answer(self) -> Option<QueryAnswer> {
        match self.session {
            Some(session) => Some(session.finish()),
            None => {
                debug_assert!(
                    self.answer.is_some(),
                    "slot invariant breached: evicted slots park their answer"
                );
                self.answer
            }
        }
    }
}

/// Interleaves N resumable [`QuerySession`]s, one round per quantum, under
/// a [`SchedulePolicy`]; see the [module docs](self) for the full contract
/// and a worked example.
pub struct MultiQueryScheduler {
    policy: SchedulePolicy,
    slots: Vec<Slot>,
    next_id: u64,
    global_sample_budget: Option<u64>,
    max_session_bytes: Option<usize>,
    global_exhausted: bool,
    /// Samples drawn by sessions already finished out — the global budget
    /// charges the scheduler's whole lifetime, so removing a finished
    /// session must not refund its draws.
    retired_samples: u64,
    /// Sum of [`Slot::weight`] over runnable slots, maintained
    /// incrementally (admission, per-step weight delta, eviction,
    /// removal) so the fair-share selection does not recompute it with an
    /// extra full pass every quantum.
    runnable_weight: i64,
    /// Events produced as side effects of a quantum (evictions), delivered
    /// before the next quantum runs.
    pending: VecDeque<SchedulerEvent>,
}

impl std::fmt::Debug for MultiQueryScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiQueryScheduler")
            .field("policy", &self.policy)
            .field("sessions", &self.slots.len())
            .field("global_sample_budget", &self.global_sample_budget)
            .field("max_session_bytes", &self.max_session_bytes)
            .field("global_exhausted", &self.global_exhausted)
            .finish_non_exhaustive()
    }
}

impl MultiQueryScheduler {
    /// Creates an empty scheduler with the given policy and no global
    /// budget or memory cap.
    #[must_use]
    pub fn new(policy: SchedulePolicy) -> Self {
        Self {
            policy,
            slots: Vec::new(),
            next_id: 0,
            global_sample_budget: None,
            max_session_bytes: None,
            global_exhausted: false,
            retired_samples: 0,
            runnable_weight: 0,
            pending: VecDeque::new(),
        }
    }

    /// Caps the total samples drawn **across all sessions over the
    /// scheduler's lifetime** (finishing a session out does not refund its
    /// draws). Checked before every quantum, so the workload stops within
    /// one round's draws of the cap; sessions already admitted keep their
    /// best-effort answers.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    #[must_use]
    pub fn with_global_sample_budget(mut self, cap: u64) -> Self {
        assert!(cap > 0, "global sample budget must be positive");
        self.global_sample_budget = Some(cap);
        self
    }

    /// Caps each session's resident algorithm-state bytes
    /// ([`QuerySession::approx_bytes`], checked after every quantum).
    /// Sessions exceeding the cap are evicted: their state is released on
    /// the spot (only the small best-effort answer is parked), they are
    /// never scheduled again, and the eviction is reported as
    /// [`SchedulerEvent::MemoryEvicted`].
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    #[must_use]
    pub fn with_session_memory_cap(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "session memory cap must be positive");
        self.max_session_bytes = Some(bytes);
        self
    }

    /// The scheduling policy.
    #[must_use]
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// Admits a session and returns its tag. The session's effective
    /// deadline (if configured on the builder) is captured here for the
    /// [`SchedulePolicy::DeadlineAware`] ordering.
    pub fn admit(&mut self, session: QuerySession) -> QueryId {
        let id = QueryId(self.next_id);
        self.next_id += 1;
        let snapshot = session.snapshot();
        let bytes = session.approx_bytes();
        let stats = SessionStats {
            steps: 0,
            total_samples: session.total_samples(),
            approx_bytes: bytes,
            peak_bytes: bytes,
            outcome: session.outcome(),
            evicted: false,
            planning: session.planning_stats(),
        };
        let runnable = !session.is_finished();
        let slot = Slot {
            id,
            deadline: session.deadline(),
            credit: 0,
            active_count: snapshot.active_count(),
            runnable,
            // Only the greedy policy reads the score; skip the O(k²)
            // overlap sweep otherwise.
            proximity: if self.policy == SchedulePolicy::GreedyConvergence {
                convergence_proximity(&snapshot)
            } else {
                0.0
            },
            stats,
            session: Some(session),
            answer: None,
        };
        if runnable {
            self.runnable_weight += slot.weight();
        }
        self.slots.push(slot);
        id
    }

    /// Number of sessions currently held (terminal ones included until
    /// they are finished out).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the scheduler holds no sessions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The held sessions' ids, in admission order.
    #[must_use]
    pub fn ids(&self) -> Vec<QueryId> {
        self.slots.iter().map(|s| s.id).collect()
    }

    /// Per-session bookkeeping (quanta, samples, memory, outcome).
    #[must_use]
    pub fn stats(&self, id: QueryId) -> Option<&SessionStats> {
        self.slots.iter().find(|s| s.id == id).map(|s| &s.stats)
    }

    /// Total samples drawn over the scheduler's lifetime: all held
    /// sessions plus sessions already finished out. This is the figure the
    /// global sample budget is checked against.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.retired_samples + self.slots.iter().map(Slot::total_samples).sum::<u64>()
    }

    /// Whether the global sample budget has tripped.
    #[must_use]
    pub fn global_budget_exhausted(&self) -> bool {
        self.global_exhausted
    }

    /// Number of sessions that still want quanta. A serving loop uses this
    /// to decide between polling for the next event and parking until a
    /// new query arrives.
    #[must_use]
    pub fn runnable_count(&self) -> usize {
        self.slots.iter().filter(|s| s.runnable).count()
    }

    /// Runs one scheduling quantum: pick a runnable session under the
    /// policy, step it once, and return the tagged event. Pending
    /// side-effect events (evictions) are delivered first. With the global
    /// budget spent this keeps answering
    /// [`SchedulerEvent::GlobalBudgetExhausted`] while runnable sessions
    /// remain (even ones admitted after exhaustion — they will not run);
    /// with nothing runnable it returns [`SchedulerEvent::Drained`] (and
    /// keeps returning it — the scheduler stays pollable).
    pub fn poll(&mut self) -> SchedulerEvent {
        if let Some(event) = self.pending.pop_front() {
            return event;
        }
        if let Some(cap) = self.global_sample_budget {
            let total = self.total_samples();
            if total >= cap {
                self.global_exhausted = true;
                return if self.slots.iter().any(Slot::runnable) {
                    SchedulerEvent::GlobalBudgetExhausted {
                        total_samples: total,
                    }
                } else {
                    SchedulerEvent::Drained
                };
            }
        }
        let Some(chosen) = self.select() else {
            return SchedulerEvent::Drained;
        };
        let slot = &mut self.slots[chosen];
        // The stepped slot was runnable; its weight re-enters the pool
        // below only if it still is (with its post-step active count).
        self.runnable_weight -= slot.weight();
        let Some(session) = slot.session.as_mut() else {
            // Internal-invariant breach: a selected slot must hold a live
            // session. Retire the slot instead of aborting the process,
            // and pick again — every retry retires another broken slot,
            // so this terminates.
            debug_assert!(false, "selected slot {} has no live session", slot.id);
            slot.runnable = false;
            slot.stats.outcome = StepOutcome::BudgetExhausted;
            return self.poll();
        };
        let update = session.step();
        slot.stats.steps += 1;
        slot.stats.total_samples = session.total_samples();
        slot.stats.outcome = update.outcome;
        let bytes = session.approx_bytes();
        let terminal = session.is_finished();
        slot.stats.approx_bytes = bytes;
        slot.stats.peak_bytes = slot.stats.peak_bytes.max(bytes);
        slot.active_count = update.snapshot.active_count();
        slot.runnable = !terminal;
        if slot.runnable {
            self.runnable_weight += slot.weight();
        }
        if self.policy == SchedulePolicy::GreedyConvergence {
            // Only the greedy policy reads the score; skip the O(k²)
            // overlap sweep under the other policies.
            slot.proximity = convergence_proximity(&update.snapshot);
        }
        if let Some(cap) = self.max_session_bytes {
            if bytes > cap && !terminal {
                // Release the over-cap state immediately: finish the
                // session now and park only its (small) answer, so an
                // evicted session stops costing memory at once.
                self.runnable_weight -= slot.weight();
                slot.runnable = false;
                if let Some(finished) = slot.session.take() {
                    slot.answer = Some(finished.finish());
                } else {
                    // Unreachable unless the slot invariant broke above;
                    // the eviction bookkeeping still completes so the
                    // scheduler stays consistent.
                    debug_assert!(false, "evicting slot {} with no live session", slot.id);
                }
                slot.stats.evicted = true;
                slot.stats.approx_bytes = 0;
                self.pending
                    .push_back(SchedulerEvent::MemoryEvicted { id: slot.id, bytes });
            }
        }
        SchedulerEvent::Round {
            id: slot.id,
            update,
        }
    }

    /// Drives the scheduler to a stop, handing every
    /// [`SchedulerEvent::Round`] / [`SchedulerEvent::MemoryEvicted`] to the
    /// callback, and reports why it stopped. After
    /// [`RunOutcome::Drained`], admit more sessions and call `run` again
    /// to continue; after [`RunOutcome::GlobalBudgetExhausted`] the budget
    /// is spent for the scheduler's lifetime and further `run` calls
    /// return immediately without scheduling anything.
    pub fn run(&mut self, mut on_event: impl FnMut(&SchedulerEvent)) -> RunOutcome {
        loop {
            let event = self.poll();
            match &event {
                SchedulerEvent::Round { .. } | SchedulerEvent::MemoryEvicted { .. } => {
                    on_event(&event);
                }
                SchedulerEvent::GlobalBudgetExhausted { .. } => {
                    return RunOutcome::GlobalBudgetExhausted;
                }
                SchedulerEvent::Drained => return RunOutcome::Drained,
            }
        }
    }

    /// Removes one session and returns its best current [`QueryAnswer`]
    /// (final if it terminated, best-effort otherwise — exactly
    /// [`QuerySession::finish`] semantics). Its draws stay charged to the
    /// global sample budget.
    ///
    /// Any not-yet-delivered [`SchedulerEvent::MemoryEvicted`] notice for
    /// the removed session is dropped: the caller just disposed of the
    /// session and holds its answer, so a later event naming an id it no
    /// longer tracks would only mislead.
    pub fn finish(&mut self, id: QueryId) -> Option<QueryAnswer> {
        let idx = self.slots.iter().position(|s| s.id == id)?;
        let slot = self.slots.remove(idx);
        if slot.runnable {
            self.runnable_weight -= slot.weight();
        }
        self.retired_samples += slot.total_samples();
        self.pending
            .retain(|e| !matches!(e, SchedulerEvent::MemoryEvicted { id: eid, .. } if *eid == id));
        slot.into_answer()
    }

    /// Consumes the scheduler, finishing every session in admission order.
    #[must_use]
    pub fn finish_all(self) -> Vec<(QueryId, QueryAnswer)> {
        self.slots
            .into_iter()
            .filter_map(|slot| Some((slot.id, slot.into_answer()?)))
            .collect()
    }

    /// Switches the scheduling policy mid-stream. Takes effect from the
    /// next quantum; already-earned fair-share credit is kept (it only
    /// matters if the policy switches back). Switching can never perturb
    /// any session's *results* — only which session runs next — so the
    /// per-session determinism guarantee survives arbitrary switches.
    ///
    /// Switching **to** [`SchedulePolicy::GreedyConvergence`] recomputes
    /// every runnable session's convergence-proximity score on the spot
    /// (the other policies skip that bookkeeping per quantum, so the
    /// scores would otherwise be stale).
    pub fn set_policy(&mut self, policy: SchedulePolicy) {
        if policy == self.policy {
            return;
        }
        let was_greedy = self.policy == SchedulePolicy::GreedyConvergence;
        self.policy = policy;
        if policy == SchedulePolicy::GreedyConvergence && !was_greedy {
            for slot in &mut self.slots {
                if let (true, Some(session)) = (slot.runnable, slot.session.as_ref()) {
                    slot.proximity = convergence_proximity(&session.snapshot());
                }
            }
        }
    }

    /// Picks the next session to step, or `None` when nothing is runnable.
    fn select(&mut self) -> Option<usize> {
        match self.policy {
            SchedulePolicy::FairShare => self.select_fair_share(),
            SchedulePolicy::DeadlineAware => self.select_deadline(),
            SchedulePolicy::GreedyConvergence => self.select_greedy(),
        }
    }

    /// Smooth weighted round-robin (the classic nginx scheme): every
    /// runnable session earns `weight` credit per quantum, the highest
    /// credit runs and pays back the total weight. Over any window with
    /// stable weights each session receives quanta in exact proportion to
    /// its active-group count; ties break toward earliest admission.
    ///
    /// The total runnable weight is **not** recomputed here: it is
    /// maintained incrementally (`runnable_weight`) at admission, after
    /// every step's active-count change, and at eviction/removal, so each
    /// quantum pays one credit-bump-and-argmax pass over cached
    /// `runnable` flags instead of two passes re-deriving weights and
    /// session state.
    fn select_fair_share(&mut self) -> Option<usize> {
        let total = self.runnable_weight;
        debug_assert_eq!(
            total,
            self.slots
                .iter()
                .filter(|s| s.runnable())
                .map(Slot::weight)
                .sum::<i64>(),
            "incrementally maintained runnable weight out of sync"
        );
        if total == 0 {
            return None;
        }
        let mut best: Option<usize> = None;
        for idx in 0..self.slots.len() {
            if !self.slots[idx].runnable {
                continue;
            }
            self.slots[idx].credit += self.slots[idx].weight();
            match best {
                None => best = Some(idx),
                Some(b) if self.slots[idx].credit > self.slots[b].credit => best = Some(idx),
                Some(_) => {}
            }
        }
        let chosen = best?;
        self.slots[chosen].credit -= total;
        Some(chosen)
    }

    /// Earliest deadline first; deadline-less sessions run only when no
    /// deadline-bearing session is runnable. Ties break toward earliest
    /// admission (`Vec` order).
    fn select_deadline(&mut self) -> Option<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.runnable())
            .min_by_key(|(_, s)| (s.deadline.is_none(), s.deadline))
            .map(|(idx, _)| idx)
    }

    /// Smallest convergence-proximity score first (then fewest active
    /// groups, then admission order).
    fn select_greedy(&mut self) -> Option<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.runnable())
            .min_by(|(_, a), (_, b)| {
                a.proximity
                    .total_cmp(&b.proximity)
                    .then(a.active_count.cmp(&b.active_count))
            })
            .map(|(idx, _)| idx)
    }
}

/// How far the snapshot's best-positioned active group is from certifying:
/// the smallest, over active groups, of the largest interval overlap that
/// still ties the group to another active group (0 when at most one group
/// remains active — the next certification is immediate). Smaller means
/// closer to freezing the next bar; [`SchedulePolicy::GreedyConvergence`]
/// schedules ascending by this score.
fn convergence_proximity(snapshot: &Snapshot) -> f64 {
    let k = snapshot.active.len();
    let mut active_seen = 0usize;
    let mut best = f64::INFINITY;
    for i in 0..k {
        if !snapshot.active[i] {
            continue;
        }
        active_seen += 1;
        let a = snapshot.intervals[i];
        let mut blocking = 0.0f64;
        for j in 0..k {
            if j == i || !snapshot.active[j] {
                continue;
            }
            let b = snapshot.intervals[j];
            let overlap = (a.hi.min(b.hi) - a.lo.max(b.lo)).max(0.0);
            blocking = blocking.max(overlap);
        }
        best = best.min(blocking);
    }
    if active_seen <= 1 {
        return 0.0;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidviz_stats::Interval;

    fn snapshot(intervals: Vec<Interval>, active: Vec<bool>) -> Snapshot {
        let k = intervals.len();
        Snapshot {
            labels: (0..k).map(|i| format!("g{i}")).collect(),
            estimates: intervals.iter().map(Interval::center).collect(),
            intervals,
            active,
            samples_per_group: vec![1; k],
            rounds: 1,
            truncated: false,
        }
    }

    #[test]
    fn proximity_zero_when_at_most_one_active() {
        let snap = snapshot(
            vec![Interval::new(0.0, 10.0), Interval::new(5.0, 15.0)],
            vec![true, false],
        );
        assert_eq!(convergence_proximity(&snap), 0.0);
    }

    #[test]
    fn proximity_is_min_over_groups_of_max_blocking_overlap() {
        // g0 overlaps g1 by 2; g2 overlaps g1 by 5: g0 is closest to
        // separating, with 2 units of overlap left.
        let snap = snapshot(
            vec![
                Interval::new(0.0, 10.0),
                Interval::new(8.0, 20.0),
                Interval::new(15.0, 30.0),
            ],
            vec![true, true, true],
        );
        assert!((convergence_proximity(&snap) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn proximity_zero_for_already_disjoint_group() {
        let snap = snapshot(
            vec![
                Interval::new(0.0, 1.0),
                Interval::new(5.0, 8.0),
                Interval::new(7.0, 9.0),
            ],
            vec![true, true, true],
        );
        assert_eq!(convergence_proximity(&snap), 0.0);
    }

    #[test]
    fn query_id_displays_compactly() {
        assert_eq!(QueryId(3).to_string(), "q3");
    }
}
