//! Multi-query scheduling over resumable sessions: the substrate for
//! serving many concurrent dashboard queries from one sampling budget.
//!
//! [`MultiQueryScheduler`] admits any number of [`QuerySession`]s —
//! heterogeneous in aggregate (AVG / SUM / COUNT) and ordering algorithm —
//! and interleaves **one [`QuerySession::step`] per scheduling quantum**
//! under a pluggable [`SchedulePolicy`]. Each step's [`RoundUpdate`] is
//! streamed back tagged with its [`QueryId`], either poll-style
//! ([`MultiQueryScheduler::poll`]) or through a callback
//! ([`MultiQueryScheduler::run`]), so one render loop can progressively
//! draw every chart of a dashboard fan-out.
//!
//! Two resources are managed across sessions:
//!
//! * a **global sample budget**
//!   ([`MultiQueryScheduler::with_global_sample_budget`]) — the multi-query
//!   analogue of a session's own `max_samples`, checked before every
//!   quantum, so the whole workload stops within one round's worth of
//!   draws of the cap;
//! * **per-session memory accounting** — after every quantum the session's
//!   [`QuerySession::approx_bytes`] is charged to its [`SessionStats`]
//!   (current and peak), and an optional cap
//!   ([`MultiQueryScheduler::with_session_memory_cap`]) evicts sessions
//!   that outgrow it (their best-effort answer stays available).
//!
//! **Determinism invariant.** Every session owns its RNG and draws only
//! when it is stepped, so the interleaving order cannot perturb any
//! session's results: a session's final [`QueryAnswer`] is byte-identical
//! to running it alone with the same seed, under every policy. The
//! regression tests in `tests/scheduler.rs` hold all three policies to
//! exactly that.
//!
//! # Worked example: a deadline-aware two-query dashboard
//!
//! ```
//! use rapidviz::needletail::{read_csv, CsvOptions, NeedleTail};
//! use rapidviz::scheduler::{MultiQueryScheduler, SchedulePolicy, SchedulerEvent};
//! use rapidviz::VizQuery;
//! use rand::SeedableRng;
//! use std::time::{Duration, Instant};
//!
//! let mut csv = String::from("airline,delay\n");
//! for i in 0..600 {
//!     let (name, delay) = match i % 3 {
//!         0 => ("AA", 40.0 + f64::from(i % 7)),
//!         1 => ("JB", 10.0 + f64::from(i % 5)),
//!         _ => ("UA", 80.0 + f64::from(i % 11)),
//!     };
//!     csv.push_str(&format!("{name},{delay}\n"));
//! }
//! let table = read_csv(&csv, &CsvOptions::default()).unwrap();
//! let engine = NeedleTail::new(table, &["airline"]).unwrap();
//!
//! // An urgent interactive query with a deadline, and a patient
//! // background refinement of the same chart.
//! let urgent = VizQuery::new(&engine)
//!     .group_by("airline")
//!     .avg("delay")
//!     .bound(100.0)
//!     .resolution_pct(2.0)
//!     .deadline(Instant::now() + Duration::from_secs(30))
//!     .start(rand::rngs::StdRng::seed_from_u64(1))
//!     .unwrap();
//! let background = VizQuery::new(&engine)
//!     .group_by("airline")
//!     .avg("delay")
//!     .bound(100.0)
//!     .start(rand::rngs::StdRng::seed_from_u64(2))
//!     .unwrap();
//!
//! let mut sched = MultiQueryScheduler::new(SchedulePolicy::DeadlineAware);
//! let urgent_id = sched.admit(urgent);
//! let _background_id = sched.admit(background);
//!
//! // Earliest deadline first: the urgent session gets every quantum until
//! // it terminates — here it converges early thanks to its resolution —
//! // and only then does the background session proceed.
//! let mut first_done = None;
//! sched.run(|event| {
//!     if let SchedulerEvent::Round { id, update } = event {
//!         if !update.outcome.is_running() && first_done.is_none() {
//!             first_done = Some(*id);
//!         }
//!     }
//! });
//! assert_eq!(first_done, Some(urgent_id));
//! for (_id, answer) in sched.finish_all() {
//!     assert_eq!(answer.ranked_labels(), vec!["JB", "AA", "UA"]);
//! }
//! ```

use crate::checkpoint::{CheckpointError, SessionCheckpoint};
use crate::query::QueryAnswer;
use crate::session::{PlanCacheStats, QuerySession, RoundUpdate};
use rapidviz_core::clock::{Clock, SystemClock};
use rapidviz_core::{Snapshot, StepOutcome};
use rapidviz_needletail::NeedleTail;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies one admitted session within a scheduler (assigned in
/// admission order, unique for the scheduler's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(u64);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Which session the scheduler picks each quantum.
///
/// All three policies are deterministic (ties break toward the earliest
/// admission), and none can change any session's *results* — only its
/// latency relative to its neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Weighted round-robin: each runnable session earns credit
    /// proportional to its count of still-active (uncertified) groups and
    /// the highest credit runs. Sessions with more unresolved bars get
    /// proportionally more quanta — the multi-query echo of IFOCUS
    /// spending its samples on the contentious groups.
    #[default]
    FairShare,
    /// Earliest-deadline-first over each session's configured wall-clock
    /// deadline ([`crate::VizQuery::deadline`] /
    /// [`crate::VizQuery::timeout`]). Sessions without a deadline run only
    /// when no deadline-bearing session is runnable.
    DeadlineAware,
    /// Prefer the session closest to certifying its next group: the one
    /// whose best-positioned active interval needs the least further
    /// shrinkage to separate from its neighbours. Drains sessions to
    /// completion roughly shortest-remaining-work-first, maximizing the
    /// rate of finished bars on the dashboard.
    GreedyConvergence,
}

/// What one [`MultiQueryScheduler::poll`] call produced.
#[derive(Debug)]
pub enum SchedulerEvent {
    /// A session advanced one round; `update` is its tagged
    /// [`RoundUpdate`] (the same struct a standalone session yields).
    Round {
        /// The session that was stepped.
        id: QueryId,
        /// Its round update, including the full snapshot.
        update: RoundUpdate,
    },
    /// A session's algorithm state outgrew the per-session memory cap and
    /// the session was evicted: its over-cap state was released on the
    /// spot (the session is finished immediately) and it will not be
    /// scheduled again, but its best-effort answer remains available via
    /// [`MultiQueryScheduler::finish`] / [`MultiQueryScheduler::finish_all`].
    MemoryEvicted {
        /// The evicted session.
        id: QueryId,
        /// Its resident-byte estimate at eviction time.
        bytes: usize,
    },
    /// The global sample budget is spent (checked before every quantum, so
    /// overshoot is bounded by one round's draws) while sessions that
    /// still want quanta remain. Returned on **every** poll in that state
    /// — including for sessions admitted after exhaustion — so a caller is
    /// always told why its work is not running; remaining answers are
    /// best-effort.
    GlobalBudgetExhausted {
        /// Lifetime samples drawn across all sessions (finished-out
        /// sessions included) at the stop.
        total_samples: u64,
    },
    /// Nothing runnable remains: every admitted session is terminal or
    /// evicted, or the scheduler is empty.
    Drained,
}

/// Why [`MultiQueryScheduler::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every session reached a terminal outcome (or was evicted).
    Drained,
    /// The global sample budget tripped first.
    GlobalBudgetExhausted,
}

/// Per-session bookkeeping the scheduler maintains across quanta.
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// Scheduling quanta this session has received.
    pub steps: u64,
    /// Samples the session has drawn so far (bootstrap included).
    pub total_samples: u64,
    /// Resident-byte estimate of the session's algorithm state after its
    /// last quantum ([`QuerySession::approx_bytes`]).
    pub approx_bytes: usize,
    /// High-water mark of `approx_bytes` over the session's lifetime
    /// (`approx_bytes` itself drops to 0 at eviction — the state is
    /// released, only the answer is retained).
    pub peak_bytes: usize,
    /// The session's current terminal status ([`StepOutcome::Running`]
    /// while it still wants quanta).
    pub outcome: StepOutcome,
    /// Whether the per-session memory cap evicted it.
    pub evicted: bool,
    /// How the engine's planning caches treated this query's planning
    /// phase (captured at admission from
    /// [`QuerySession::planning_stats`]): a warm repeat plans with
    /// `plan_hits > 0` and zero misses, a cold plan shows the misses. The
    /// signal a serving layer watches to tell cache-friendly workloads
    /// from filter-diverse ones that pay cold-plan cost per request.
    pub planning: PlanCacheStats,
    /// Size of the session's most recent [`SessionCheckpoint`]
    /// ([`SessionCheckpoint::approx_bytes`], updated by
    /// [`MultiQueryScheduler::checkpoint`]); 0 until the first checkpoint
    /// is taken.
    pub checkpoint_bytes: usize,
}

/// One admitted session plus its scheduling state.
///
/// Invariant: exactly one of `session` / `answer` is `Some` — the session
/// until eviction releases its state, the parked answer afterwards.
struct Slot {
    id: QueryId,
    session: Option<QuerySession>,
    /// Best-effort answer parked at eviction time (the session's
    /// algorithm state is dropped then, so an over-cap session stops
    /// costing memory the moment it is evicted).
    answer: Option<QueryAnswer>,
    /// Effective deadline captured at admission (for EDF).
    deadline: Option<Instant>,
    /// Fair-share credit (smooth weighted round-robin).
    credit: i64,
    /// Active-group count after the last quantum (the fair-share weight).
    active_count: usize,
    /// Whether the slot still wants quanta — maintained incrementally at
    /// admission, after each step, and at eviction, so the per-quantum
    /// selection loops read a flag instead of re-deriving it from the
    /// session (`runnable ⇔ session.is_some() && !session.is_finished()`).
    runnable: bool,
    /// Greedy-convergence score: how much interval overlap still blocks
    /// the session's best-positioned active group (0 = certifies next).
    /// Maintained only under [`SchedulePolicy::GreedyConvergence`].
    proximity: f64,
    stats: SessionStats,
}

impl Slot {
    fn runnable(&self) -> bool {
        debug_assert_eq!(
            self.runnable,
            self.session.as_ref().is_some_and(|s| !s.is_finished()),
            "incrementally maintained runnable flag out of sync"
        );
        self.runnable
    }

    /// Fair-share weight: remaining active groups (floor 1, so a session
    /// between certifications still progresses).
    fn weight(&self) -> i64 {
        self.active_count.max(1) as i64
    }

    /// Lifetime samples this slot has drawn (tracked stats once the
    /// session itself is gone).
    fn total_samples(&self) -> u64 {
        match &self.session {
            Some(session) => session.total_samples(),
            None => self.stats.total_samples,
        }
    }

    /// The slot's best current answer, consuming it. `None` only if the
    /// slot invariant (exactly one of `session` / `answer` is set) has
    /// been breached — callers degrade gracefully rather than abort a
    /// whole serving process over one broken slot.
    fn into_answer(self) -> Option<QueryAnswer> {
        match self.session {
            Some(session) => Some(session.finish()),
            None => {
                debug_assert!(
                    self.answer.is_some(),
                    "slot invariant breached: evicted slots park their answer"
                );
                self.answer
            }
        }
    }
}

/// Interleaves N resumable [`QuerySession`]s, one round per quantum, under
/// a [`SchedulePolicy`]; see the [module docs](self) for the full contract
/// and a worked example.
pub struct MultiQueryScheduler {
    policy: SchedulePolicy,
    slots: Vec<Slot>,
    next_id: u64,
    global_sample_budget: Option<u64>,
    max_session_bytes: Option<usize>,
    global_exhausted: bool,
    /// Samples drawn by sessions already finished out — the global budget
    /// charges the scheduler's whole lifetime, so removing a finished
    /// session must not refund its draws.
    retired_samples: u64,
    /// Sum of [`Slot::weight`] over runnable slots, maintained
    /// incrementally (admission, per-step weight delta, eviction,
    /// removal) so the fair-share selection does not recompute it with an
    /// extra full pass every quantum.
    runnable_weight: i64,
    /// Events produced as side effects of a quantum (evictions), delivered
    /// before the next quantum runs.
    pending: VecDeque<SchedulerEvent>,
}

impl std::fmt::Debug for MultiQueryScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiQueryScheduler")
            .field("policy", &self.policy)
            .field("sessions", &self.slots.len())
            .field("global_sample_budget", &self.global_sample_budget)
            .field("max_session_bytes", &self.max_session_bytes)
            .field("global_exhausted", &self.global_exhausted)
            .finish_non_exhaustive()
    }
}

impl MultiQueryScheduler {
    /// Creates an empty scheduler with the given policy and no global
    /// budget or memory cap.
    #[must_use]
    pub fn new(policy: SchedulePolicy) -> Self {
        Self {
            policy,
            slots: Vec::new(),
            next_id: 0,
            global_sample_budget: None,
            max_session_bytes: None,
            global_exhausted: false,
            retired_samples: 0,
            runnable_weight: 0,
            pending: VecDeque::new(),
        }
    }

    /// Caps the total samples drawn **across all sessions over the
    /// scheduler's lifetime** (finishing a session out does not refund its
    /// draws). Checked before every quantum, so the workload stops within
    /// one round's draws of the cap; sessions already admitted keep their
    /// best-effort answers.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    #[must_use]
    pub fn with_global_sample_budget(mut self, cap: u64) -> Self {
        assert!(cap > 0, "global sample budget must be positive");
        self.global_sample_budget = Some(cap);
        self
    }

    /// Caps each session's resident algorithm-state bytes
    /// ([`QuerySession::approx_bytes`], checked after every quantum).
    /// Sessions exceeding the cap are evicted: their state is released on
    /// the spot (only the small best-effort answer is parked), they are
    /// never scheduled again, and the eviction is reported as
    /// [`SchedulerEvent::MemoryEvicted`].
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    #[must_use]
    pub fn with_session_memory_cap(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "session memory cap must be positive");
        self.max_session_bytes = Some(bytes);
        self
    }

    /// The scheduling policy.
    #[must_use]
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// Admits a session and returns its tag. The session's effective
    /// deadline (if configured on the builder) is captured here for the
    /// [`SchedulePolicy::DeadlineAware`] ordering.
    pub fn admit(&mut self, session: QuerySession) -> QueryId {
        let id = QueryId(self.next_id);
        self.next_id += 1;
        let snapshot = session.snapshot();
        let bytes = session.approx_bytes();
        let stats = SessionStats {
            steps: 0,
            total_samples: session.total_samples(),
            approx_bytes: bytes,
            peak_bytes: bytes,
            outcome: session.outcome(),
            evicted: false,
            planning: session.planning_stats(),
            checkpoint_bytes: 0,
        };
        let runnable = !session.is_finished();
        let slot = Slot {
            id,
            deadline: session.deadline(),
            credit: 0,
            active_count: snapshot.active_count(),
            runnable,
            // Only the greedy policy reads the score; skip the O(k²)
            // overlap sweep otherwise.
            proximity: if self.policy == SchedulePolicy::GreedyConvergence {
                convergence_proximity(&snapshot)
            } else {
                0.0
            },
            stats,
            session: Some(session),
            answer: None,
        };
        if runnable {
            self.runnable_weight += slot.weight();
        }
        self.slots.push(slot);
        id
    }

    /// Number of sessions currently held (terminal ones included until
    /// they are finished out).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the scheduler holds no sessions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The held sessions' ids, in admission order.
    #[must_use]
    pub fn ids(&self) -> Vec<QueryId> {
        self.slots.iter().map(|s| s.id).collect()
    }

    /// Per-session bookkeeping (quanta, samples, memory, outcome).
    #[must_use]
    pub fn stats(&self, id: QueryId) -> Option<&SessionStats> {
        self.slots.iter().find(|s| s.id == id).map(|s| &s.stats)
    }

    /// Total samples drawn over the scheduler's lifetime: all held
    /// sessions plus sessions already finished out. This is the figure the
    /// global sample budget is checked against.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.retired_samples + self.slots.iter().map(Slot::total_samples).sum::<u64>()
    }

    /// Whether the global sample budget has tripped.
    #[must_use]
    pub fn global_budget_exhausted(&self) -> bool {
        self.global_exhausted
    }

    /// Number of sessions that still want quanta. A serving loop uses this
    /// to decide between polling for the next event and parking until a
    /// new query arrives.
    #[must_use]
    pub fn runnable_count(&self) -> usize {
        self.slots.iter().filter(|s| s.runnable).count()
    }

    /// Runs one scheduling quantum: pick a runnable session under the
    /// policy, step it once, and return the tagged event. Pending
    /// side-effect events (evictions) are delivered first. With the global
    /// budget spent this keeps answering
    /// [`SchedulerEvent::GlobalBudgetExhausted`] while runnable sessions
    /// remain (even ones admitted after exhaustion — they will not run);
    /// with nothing runnable it returns [`SchedulerEvent::Drained`] (and
    /// keeps returning it — the scheduler stays pollable).
    pub fn poll(&mut self) -> SchedulerEvent {
        if let Some(event) = self.pending.pop_front() {
            return event;
        }
        if let Some(cap) = self.global_sample_budget {
            let total = self.total_samples();
            if total >= cap {
                self.global_exhausted = true;
                return if self.slots.iter().any(Slot::runnable) {
                    SchedulerEvent::GlobalBudgetExhausted {
                        total_samples: total,
                    }
                } else {
                    SchedulerEvent::Drained
                };
            }
        }
        let Some(chosen) = self.select() else {
            return SchedulerEvent::Drained;
        };
        let slot = &mut self.slots[chosen];
        // The stepped slot was runnable; its weight re-enters the pool
        // below only if it still is (with its post-step active count).
        self.runnable_weight -= slot.weight();
        let Some(session) = slot.session.as_mut() else {
            // Internal-invariant breach: a selected slot must hold a live
            // session. Retire the slot instead of aborting the process,
            // and pick again — every retry retires another broken slot,
            // so this terminates.
            debug_assert!(false, "selected slot {} has no live session", slot.id);
            slot.runnable = false;
            slot.stats.outcome = StepOutcome::BudgetExhausted;
            return self.poll();
        };
        let update = session.step();
        slot.stats.steps += 1;
        slot.stats.total_samples = session.total_samples();
        slot.stats.outcome = update.outcome;
        let bytes = session.approx_bytes();
        let terminal = session.is_finished();
        slot.stats.approx_bytes = bytes;
        slot.stats.peak_bytes = slot.stats.peak_bytes.max(bytes);
        slot.active_count = update.snapshot.active_count();
        slot.runnable = !terminal;
        if slot.runnable {
            self.runnable_weight += slot.weight();
        }
        if self.policy == SchedulePolicy::GreedyConvergence {
            // Only the greedy policy reads the score; skip the O(k²)
            // overlap sweep under the other policies.
            slot.proximity = convergence_proximity(&update.snapshot);
        }
        if let Some(cap) = self.max_session_bytes {
            if bytes > cap && !terminal {
                // Release the over-cap state immediately: finish the
                // session now and park only its (small) answer, so an
                // evicted session stops costing memory at once.
                self.runnable_weight -= slot.weight();
                slot.runnable = false;
                if let Some(finished) = slot.session.take() {
                    slot.answer = Some(finished.finish());
                } else {
                    // Unreachable unless the slot invariant broke above;
                    // the eviction bookkeeping still completes so the
                    // scheduler stays consistent.
                    debug_assert!(false, "evicting slot {} with no live session", slot.id);
                }
                slot.stats.evicted = true;
                slot.stats.approx_bytes = 0;
                self.pending
                    .push_back(SchedulerEvent::MemoryEvicted { id: slot.id, bytes });
            }
        }
        SchedulerEvent::Round {
            id: slot.id,
            update,
        }
    }

    /// Drives the scheduler to a stop, handing every
    /// [`SchedulerEvent::Round`] / [`SchedulerEvent::MemoryEvicted`] to the
    /// callback, and reports why it stopped. After
    /// [`RunOutcome::Drained`], admit more sessions and call `run` again
    /// to continue; after [`RunOutcome::GlobalBudgetExhausted`] the budget
    /// is spent for the scheduler's lifetime and further `run` calls
    /// return immediately without scheduling anything.
    pub fn run(&mut self, mut on_event: impl FnMut(&SchedulerEvent)) -> RunOutcome {
        loop {
            let event = self.poll();
            match &event {
                SchedulerEvent::Round { .. } | SchedulerEvent::MemoryEvicted { .. } => {
                    on_event(&event);
                }
                SchedulerEvent::GlobalBudgetExhausted { .. } => {
                    return RunOutcome::GlobalBudgetExhausted;
                }
                SchedulerEvent::Drained => return RunOutcome::Drained,
            }
        }
    }

    /// Removes one session and returns its best current [`QueryAnswer`]
    /// (final if it terminated, best-effort otherwise — exactly
    /// [`QuerySession::finish`] semantics). Its draws stay charged to the
    /// global sample budget.
    ///
    /// Any not-yet-delivered [`SchedulerEvent::MemoryEvicted`] notice for
    /// the removed session is dropped: the caller just disposed of the
    /// session and holds its answer, so a later event naming an id it no
    /// longer tracks would only mislead.
    pub fn finish(&mut self, id: QueryId) -> Option<QueryAnswer> {
        let idx = self.slots.iter().position(|s| s.id == id)?;
        let slot = self.slots.remove(idx);
        if slot.runnable {
            self.runnable_weight -= slot.weight();
        }
        self.retired_samples += slot.total_samples();
        self.pending
            .retain(|e| !matches!(e, SchedulerEvent::MemoryEvicted { id: eid, .. } if *eid == id));
        slot.into_answer()
    }

    /// Parks a live session: checkpoints it into `registry` and removes it
    /// from the scheduler, returning the resume token. The session's draws
    /// stay charged to the global sample budget (parking is not a refund),
    /// and any pending eviction notice for it is dropped, exactly as in
    /// [`MultiQueryScheduler::finish`].
    ///
    /// This is what a serving layer calls on client disconnect instead of
    /// cancelling: the checkpoint outlives the connection (bounded by the
    /// registry's TTL and byte cap) and a reconnecting client resumes it
    /// with [`MultiQueryScheduler::unpark`].
    ///
    /// # Errors
    ///
    /// On any error the scheduler is left untouched — the session keeps
    /// running and the caller may fall back to cancelling it via
    /// [`MultiQueryScheduler::finish`]:
    ///
    /// * [`ParkError::NoSuchSession`] — `id` is unknown, already finished
    ///   out, or was memory-evicted (its algorithm state is gone; only the
    ///   best-effort answer remains).
    /// * [`ParkError::Checkpoint`] — the session cannot checkpoint (e.g.
    ///   it was started with a caller-supplied opaque RNG whose state
    ///   cannot be captured).
    /// * [`ParkError::OverCapacity`] — the registry's byte cap is full.
    pub fn park(&mut self, id: QueryId, registry: &mut ParkingRegistry) -> Result<u64, ParkError> {
        self.park_inner(id, registry, None)
    }

    /// [`MultiQueryScheduler::park`] under a token the caller reserved
    /// earlier with [`ParkingRegistry::reserve`] — the serving pattern
    /// where the token is announced to the client at admission (so it
    /// survives even a hard server crash) and the checkpoint lands under
    /// it at disconnect. Upserts: a checkpoint already parked under the
    /// token (a periodic refresh) is replaced.
    ///
    /// # Errors
    ///
    /// Exactly as [`MultiQueryScheduler::park`].
    pub fn park_reserved(
        &mut self,
        id: QueryId,
        registry: &mut ParkingRegistry,
        token: u64,
    ) -> Result<u64, ParkError> {
        self.park_inner(id, registry, Some(token))
    }

    fn park_inner(
        &mut self,
        id: QueryId,
        registry: &mut ParkingRegistry,
        token: Option<u64>,
    ) -> Result<u64, ParkError> {
        let idx = self
            .slots
            .iter()
            .position(|s| s.id == id)
            .ok_or(ParkError::NoSuchSession)?;
        let checkpoint = match self.slots[idx].session.as_ref() {
            Some(session) => session.checkpoint().map_err(ParkError::Checkpoint)?,
            // Evicted slots already released their algorithm state; there
            // is nothing left to park.
            None => return Err(ParkError::NoSuchSession),
        };
        let token = match token {
            Some(t) => registry.park_reserved(t, checkpoint)?,
            None => registry.park(checkpoint)?,
        };
        let slot = self.slots.remove(idx);
        if slot.runnable {
            self.runnable_weight -= slot.weight();
        }
        self.retired_samples += slot.total_samples();
        self.pending
            .retain(|e| !matches!(e, SchedulerEvent::MemoryEvicted { id: eid, .. } if *eid == id));
        Ok(token)
    }

    /// Checkpoints a live session **without** removing it — the periodic
    /// durability refresh a crash-recovering server takes after each
    /// round (paired with [`ParkingRegistry::park_reserved`], so the
    /// registry always holds each session's latest resumable state). Also
    /// records the checkpoint size in [`SessionStats::checkpoint_bytes`].
    ///
    /// # Errors
    ///
    /// [`ParkError::NoSuchSession`] for unknown / finished / evicted ids;
    /// [`ParkError::Checkpoint`] if the session cannot checkpoint.
    pub fn checkpoint(&mut self, id: QueryId) -> Result<SessionCheckpoint, ParkError> {
        let slot = self
            .slots
            .iter_mut()
            .find(|s| s.id == id)
            .ok_or(ParkError::NoSuchSession)?;
        let session = slot.session.as_ref().ok_or(ParkError::NoSuchSession)?;
        let checkpoint = session.checkpoint().map_err(ParkError::Checkpoint)?;
        slot.stats.checkpoint_bytes = checkpoint.approx_bytes();
        Ok(checkpoint)
    }

    /// Resumes a parked session from `registry` and re-admits it under a
    /// fresh [`QueryId`]. The resumed round stream is bit-identical to the
    /// uninterrupted session's (the checkpoint/resume contract of
    /// [`QuerySession::checkpoint`]); its wall-clock budget restarts from
    /// the remaining time captured at park.
    ///
    /// Samples the session drew before parking were retired at park time;
    /// they are un-retired here so re-admission does not charge them to
    /// the global budget twice. On a scheduler that never saw the session
    /// (a crash-restarted server) the subtraction saturates at zero and
    /// the historical draws are conservatively re-charged.
    ///
    /// # Errors
    ///
    /// * [`ParkError::NoSuchToken`] — the token is unknown, already
    ///   resumed, or TTL-expired. The client must re-issue the query.
    /// * [`ParkError::Checkpoint`] — the checkpoint does not fit `engine`
    ///   (e.g. group count drift after a data reload). The checkpoint
    ///   stays parked so the error is observable/retryable until the TTL
    ///   reaps it.
    pub fn unpark(
        &mut self,
        registry: &mut ParkingRegistry,
        token: u64,
        engine: &NeedleTail,
    ) -> Result<QueryId, ParkError> {
        let checkpoint = registry.get(token)?.clone();
        let session = QuerySession::resume_with_clock(engine, &checkpoint, registry.clock())
            .map_err(ParkError::Checkpoint)?;
        let _ = registry.take(token);
        self.retired_samples = self.retired_samples.saturating_sub(session.total_samples());
        Ok(self.admit(session))
    }

    /// Consumes the scheduler, finishing every session in admission order.
    #[must_use]
    pub fn finish_all(self) -> Vec<(QueryId, QueryAnswer)> {
        self.slots
            .into_iter()
            .filter_map(|slot| Some((slot.id, slot.into_answer()?)))
            .collect()
    }

    /// Switches the scheduling policy mid-stream. Takes effect from the
    /// next quantum; already-earned fair-share credit is kept (it only
    /// matters if the policy switches back). Switching can never perturb
    /// any session's *results* — only which session runs next — so the
    /// per-session determinism guarantee survives arbitrary switches.
    ///
    /// Switching **to** [`SchedulePolicy::GreedyConvergence`] recomputes
    /// every runnable session's convergence-proximity score on the spot
    /// (the other policies skip that bookkeeping per quantum, so the
    /// scores would otherwise be stale).
    pub fn set_policy(&mut self, policy: SchedulePolicy) {
        if policy == self.policy {
            return;
        }
        let was_greedy = self.policy == SchedulePolicy::GreedyConvergence;
        self.policy = policy;
        if policy == SchedulePolicy::GreedyConvergence && !was_greedy {
            for slot in &mut self.slots {
                if let (true, Some(session)) = (slot.runnable, slot.session.as_ref()) {
                    slot.proximity = convergence_proximity(&session.snapshot());
                }
            }
        }
    }

    /// Picks the next session to step, or `None` when nothing is runnable.
    fn select(&mut self) -> Option<usize> {
        match self.policy {
            SchedulePolicy::FairShare => self.select_fair_share(),
            SchedulePolicy::DeadlineAware => self.select_deadline(),
            SchedulePolicy::GreedyConvergence => self.select_greedy(),
        }
    }

    /// Smooth weighted round-robin (the classic nginx scheme): every
    /// runnable session earns `weight` credit per quantum, the highest
    /// credit runs and pays back the total weight. Over any window with
    /// stable weights each session receives quanta in exact proportion to
    /// its active-group count; ties break toward earliest admission.
    ///
    /// The total runnable weight is **not** recomputed here: it is
    /// maintained incrementally (`runnable_weight`) at admission, after
    /// every step's active-count change, and at eviction/removal, so each
    /// quantum pays one credit-bump-and-argmax pass over cached
    /// `runnable` flags instead of two passes re-deriving weights and
    /// session state.
    fn select_fair_share(&mut self) -> Option<usize> {
        let total = self.runnable_weight;
        debug_assert_eq!(
            total,
            self.slots
                .iter()
                .filter(|s| s.runnable())
                .map(Slot::weight)
                .sum::<i64>(),
            "incrementally maintained runnable weight out of sync"
        );
        if total == 0 {
            return None;
        }
        let mut best: Option<usize> = None;
        for idx in 0..self.slots.len() {
            if !self.slots[idx].runnable {
                continue;
            }
            self.slots[idx].credit += self.slots[idx].weight();
            match best {
                None => best = Some(idx),
                Some(b) if self.slots[idx].credit > self.slots[b].credit => best = Some(idx),
                Some(_) => {}
            }
        }
        let chosen = best?;
        self.slots[chosen].credit -= total;
        Some(chosen)
    }

    /// Earliest deadline first; deadline-less sessions run only when no
    /// deadline-bearing session is runnable. Ties break toward earliest
    /// admission (`Vec` order).
    fn select_deadline(&mut self) -> Option<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.runnable())
            .min_by_key(|(_, s)| (s.deadline.is_none(), s.deadline))
            .map(|(idx, _)| idx)
    }

    /// Smallest convergence-proximity score first (then fewest active
    /// groups, then admission order).
    fn select_greedy(&mut self) -> Option<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.runnable())
            .min_by(|(_, a), (_, b)| {
                a.proximity
                    .total_cmp(&b.proximity)
                    .then(a.active_count.cmp(&b.active_count))
            })
            .map(|(idx, _)| idx)
    }
}

/// Why a park or unpark operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ParkError {
    /// The scheduler holds no live session under this id (unknown,
    /// finished out, or memory-evicted).
    NoSuchSession,
    /// The registry holds no checkpoint under this token (never issued,
    /// already resumed, or TTL-expired).
    NoSuchToken,
    /// Parking the checkpoint would push the registry past its byte cap.
    OverCapacity {
        /// Bytes the rejected checkpoint would have added.
        needed: usize,
        /// The registry's configured cap.
        cap: usize,
    },
    /// The session could not be checkpointed, or the checkpoint could not
    /// be resumed against the serving engine.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for ParkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoSuchSession => write!(f, "no live session under that id"),
            Self::NoSuchToken => write!(f, "no parked session under that token"),
            Self::OverCapacity { needed, cap } => write!(
                f,
                "parking registry over capacity: checkpoint needs {needed} bytes, cap is {cap}"
            ),
            Self::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for ParkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

/// Observability counters for a [`ParkingRegistry`] — the parked-session
/// analogue of [`PlanCacheStats`], folded by a serving layer into its
/// metrics / `STATS` frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParkingStats {
    /// Sessions currently parked.
    pub parked: u64,
    /// Checkpoint bytes currently held (the structural estimate charged
    /// against the registry's byte cap).
    pub parked_bytes: u64,
    /// Lifetime sessions parked successfully.
    pub parked_total: u64,
    /// Lifetime checkpoints handed back out for resumption.
    pub resumed_total: u64,
    /// Lifetime checkpoints dropped by the TTL sweep.
    pub expired_total: u64,
    /// Lifetime park attempts rejected by the byte cap.
    pub rejected_total: u64,
}

/// One parked checkpoint plus its accounting.
#[derive(Debug)]
struct ParkedEntry {
    checkpoint: SessionCheckpoint,
    /// Byte charge ([`SessionCheckpoint::approx_bytes`] at park time).
    bytes: usize,
    /// Registry-clock instant the entry was parked at (TTL anchor).
    parked_at: Instant,
}

/// TTL-bounded, byte-capped store of parked session checkpoints, keyed by
/// resume token.
///
/// A serving layer parks a disconnecting client's session here
/// ([`MultiQueryScheduler::park`]) instead of cancelling it, hands the
/// token to the client, and resumes on reconnect
/// ([`MultiQueryScheduler::unpark`]). Two bounds keep an abandoned-client
/// workload from pinning memory forever:
///
/// * **TTL** — entries older than the configured time-to-live (measured
///   against the registry's [`Clock`], so simulated time works) are reaped
///   by an internal sweep that runs before every operation; a checkpoint
///   parked for exactly the TTL is already expired.
/// * **Byte cap** ([`ParkingRegistry::with_byte_cap`]) — each entry is
///   charged its [`SessionCheckpoint::approx_bytes`]; a park that would
///   exceed the cap is rejected ([`ParkError::OverCapacity`]) and counted,
///   extending the scheduler's session-memory-cap philosophy to parked
///   state.
///
/// Tokens are issued from a deterministic counter starting at 1 (so `0`
/// can serve as a wire-level "no token" sentinel) and are unique for the
/// registry's lifetime.
pub struct ParkingRegistry {
    ttl: Duration,
    max_bytes: Option<usize>,
    clock: Arc<dyn Clock>,
    parked: BTreeMap<u64, ParkedEntry>,
    next_token: u64,
    bytes: usize,
    parked_total: u64,
    resumed_total: u64,
    expired_total: u64,
    rejected_total: u64,
}

impl std::fmt::Debug for ParkingRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParkingRegistry")
            .field("ttl", &self.ttl)
            .field("max_bytes", &self.max_bytes)
            .field("parked", &self.parked.len())
            .field("bytes", &self.bytes)
            .finish_non_exhaustive()
    }
}

impl ParkingRegistry {
    /// Creates a registry with the given TTL, no byte cap, and the system
    /// clock.
    ///
    /// # Panics
    ///
    /// Panics if `ttl` is zero (every entry would expire before it could
    /// be resumed).
    #[must_use]
    pub fn new(ttl: Duration) -> Self {
        Self::with_clock(ttl, Arc::new(SystemClock))
    }

    /// Creates a registry reading time from `clock` — the hook simulation
    /// harnesses use to drive TTL expiry deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `ttl` is zero.
    #[must_use]
    pub fn with_clock(ttl: Duration, clock: Arc<dyn Clock>) -> Self {
        assert!(ttl > Duration::ZERO, "parking TTL must be positive");
        Self {
            ttl,
            max_bytes: None,
            clock,
            parked: BTreeMap::new(),
            next_token: 1,
            bytes: 0,
            parked_total: 0,
            resumed_total: 0,
            expired_total: 0,
            rejected_total: 0,
        }
    }

    /// Caps total checkpoint bytes held at once; parks that would exceed
    /// it are rejected with [`ParkError::OverCapacity`].
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    #[must_use]
    pub fn with_byte_cap(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "parking byte cap must be positive");
        self.max_bytes = Some(bytes);
        self
    }

    /// The clock TTLs are measured against (resumed sessions re-anchor
    /// their remaining wall-clock budget on it too).
    #[must_use]
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// The configured time-to-live.
    #[must_use]
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    /// Reserves the next token without parking anything under it yet — a
    /// serving layer hands the token to the client at admission so it
    /// survives a hard crash, and parks under it later with
    /// [`ParkingRegistry::park_reserved`]. Tokens never repeat, reserved
    /// or not.
    pub fn reserve(&mut self) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        token
    }

    /// Parks a checkpoint under a fresh token and returns it.
    ///
    /// # Errors
    ///
    /// [`ParkError::OverCapacity`] if the byte cap would be exceeded (the
    /// rejection is counted in [`ParkingStats::rejected_total`]).
    pub fn park(&mut self, checkpoint: SessionCheckpoint) -> Result<u64, ParkError> {
        let token = self.reserve();
        self.park_reserved(token, checkpoint)
    }

    /// Parks (or refreshes) a checkpoint under a token obtained from
    /// [`ParkingRegistry::reserve`]. An entry already held under the token
    /// is replaced — this is how a server keeps each live session's latest
    /// resumable state in the registry, one upsert per round — and its TTL
    /// clock restarts. Replacement only counts toward
    /// [`ParkingStats::parked_total`] when the token was previously empty.
    ///
    /// # Errors
    ///
    /// [`ParkError::OverCapacity`] if the byte cap would be exceeded net
    /// of the entry being replaced.
    pub fn park_reserved(
        &mut self,
        token: u64,
        checkpoint: SessionCheckpoint,
    ) -> Result<u64, ParkError> {
        self.sweep();
        let needed = checkpoint.approx_bytes();
        let replaced = self.parked.get(&token).map_or(0, |e| e.bytes);
        if let Some(cap) = self.max_bytes {
            if (self.bytes - replaced).saturating_add(needed) > cap {
                self.rejected_total += 1;
                return Err(ParkError::OverCapacity { needed, cap });
            }
        }
        let parked_at = self.clock.now();
        let old = self.parked.insert(
            token,
            ParkedEntry {
                checkpoint,
                bytes: needed,
                parked_at,
            },
        );
        match old {
            Some(entry) => self.bytes -= entry.bytes,
            None => self.parked_total += 1,
        }
        self.bytes += needed;
        Ok(token)
    }

    /// Drops a parked checkpoint without counting it resumed or expired —
    /// what a server calls when a session completes normally and its
    /// durability shadow is no longer resumable. Returns whether an entry
    /// was held.
    pub fn discard(&mut self, token: u64) -> bool {
        match self.parked.remove(&token) {
            Some(entry) => {
                self.bytes -= entry.bytes;
                true
            }
            None => false,
        }
    }

    /// Borrows a parked checkpoint without consuming it (sweeps expired
    /// entries first). Use [`ParkingRegistry::take`] once the resume has
    /// actually succeeded, so a failed resume leaves the checkpoint
    /// observable until the TTL reaps it.
    ///
    /// # Errors
    ///
    /// [`ParkError::NoSuchToken`] if the token is unknown, already
    /// resumed, or expired.
    pub fn get(&mut self, token: u64) -> Result<&SessionCheckpoint, ParkError> {
        self.sweep();
        self.parked
            .get(&token)
            .map(|e| &e.checkpoint)
            .ok_or(ParkError::NoSuchToken)
    }

    /// Removes and returns a parked checkpoint, counting it as resumed.
    ///
    /// # Errors
    ///
    /// [`ParkError::NoSuchToken`] if the token is unknown, already
    /// resumed, or expired.
    pub fn take(&mut self, token: u64) -> Result<SessionCheckpoint, ParkError> {
        self.sweep();
        let entry = self.parked.remove(&token).ok_or(ParkError::NoSuchToken)?;
        self.bytes -= entry.bytes;
        self.resumed_total += 1;
        Ok(entry.checkpoint)
    }

    /// Drops every entry whose age has reached the TTL. Runs implicitly
    /// before every `park` / `get` / `take`; callers with long idle spans
    /// may also invoke it directly to release memory promptly.
    pub fn sweep(&mut self) {
        let now = self.clock.now();
        let ttl = self.ttl;
        let expired: Vec<u64> = self
            .parked
            .iter()
            .filter(|(_, e)| now.saturating_duration_since(e.parked_at) >= ttl)
            .map(|(t, _)| *t)
            .collect();
        for token in expired {
            if let Some(entry) = self.parked.remove(&token) {
                self.bytes -= entry.bytes;
                self.expired_total += 1;
            }
        }
    }

    /// Sessions currently parked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parked.len()
    }

    /// Whether no sessions are parked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parked.is_empty()
    }

    /// Checkpoint bytes currently held (the figure the byte cap governs).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Current counters snapshot.
    #[must_use]
    pub fn stats(&self) -> ParkingStats {
        ParkingStats {
            parked: self.parked.len() as u64,
            parked_bytes: self.bytes as u64,
            parked_total: self.parked_total,
            resumed_total: self.resumed_total,
            expired_total: self.expired_total,
            rejected_total: self.rejected_total,
        }
    }
}

/// How far the snapshot's best-positioned active group is from certifying:
/// the smallest, over active groups, of the largest interval overlap that
/// still ties the group to another active group (0 when at most one group
/// remains active — the next certification is immediate). Smaller means
/// closer to freezing the next bar; [`SchedulePolicy::GreedyConvergence`]
/// schedules ascending by this score.
fn convergence_proximity(snapshot: &Snapshot) -> f64 {
    let k = snapshot.active.len();
    let mut active_seen = 0usize;
    let mut best = f64::INFINITY;
    for i in 0..k {
        if !snapshot.active[i] {
            continue;
        }
        active_seen += 1;
        let a = snapshot.intervals[i];
        let mut blocking = 0.0f64;
        for j in 0..k {
            if j == i || !snapshot.active[j] {
                continue;
            }
            let b = snapshot.intervals[j];
            let overlap = (a.hi.min(b.hi) - a.lo.max(b.lo)).max(0.0);
            blocking = blocking.max(overlap);
        }
        best = best.min(blocking);
    }
    if active_seen <= 1 {
        return 0.0;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidviz_stats::Interval;

    fn snapshot(intervals: Vec<Interval>, active: Vec<bool>) -> Snapshot {
        let k = intervals.len();
        Snapshot {
            labels: (0..k).map(|i| format!("g{i}")).collect(),
            estimates: intervals.iter().map(Interval::center).collect(),
            intervals,
            active,
            samples_per_group: vec![1; k],
            rounds: 1,
            truncated: false,
        }
    }

    #[test]
    fn proximity_zero_when_at_most_one_active() {
        let snap = snapshot(
            vec![Interval::new(0.0, 10.0), Interval::new(5.0, 15.0)],
            vec![true, false],
        );
        assert_eq!(convergence_proximity(&snap), 0.0);
    }

    #[test]
    fn proximity_is_min_over_groups_of_max_blocking_overlap() {
        // g0 overlaps g1 by 2; g2 overlaps g1 by 5: g0 is closest to
        // separating, with 2 units of overlap left.
        let snap = snapshot(
            vec![
                Interval::new(0.0, 10.0),
                Interval::new(8.0, 20.0),
                Interval::new(15.0, 30.0),
            ],
            vec![true, true, true],
        );
        assert!((convergence_proximity(&snap) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn proximity_zero_for_already_disjoint_group() {
        let snap = snapshot(
            vec![
                Interval::new(0.0, 1.0),
                Interval::new(5.0, 8.0),
                Interval::new(7.0, 9.0),
            ],
            vec![true, true, true],
        );
        assert_eq!(convergence_proximity(&snap), 0.0);
    }

    #[test]
    fn query_id_displays_compactly() {
        assert_eq!(QueryId(3).to_string(), "q3");
    }

    mod parking {
        use super::super::*;
        use crate::VizQuery;
        use rand::SeedableRng;
        use rapidviz_core::clock::SimulatedClock;
        use rapidviz_needletail::{read_csv, CsvOptions, NeedleTail};

        fn engine() -> NeedleTail {
            let mut csv = String::from("airline,delay\n");
            for i in 0..900 {
                // Skewed group sizes so COUNT-style orderings separate and
                // means stay well apart.
                let (name, delay) = match i % 10 {
                    0..=5 => ("AA", 60.0 + f64::from(i % 7)),
                    6..=8 => ("UA", 85.0 + f64::from(i % 5)),
                    _ => ("JB", 20.0 + f64::from(i % 3)),
                };
                csv.push_str(&format!("{name},{delay}\n"));
            }
            let table = read_csv(&csv, &CsvOptions::default()).unwrap();
            NeedleTail::new(table, &["airline"]).unwrap()
        }

        fn session(engine: &NeedleTail, seed: u64) -> QuerySession {
            VizQuery::new(engine)
                .group_by("airline")
                .avg("delay")
                .bound(100.0)
                .resolution_pct(6.0)
                .samples_per_round(24)
                .start(rand::rngs::StdRng::seed_from_u64(seed))
                .unwrap()
        }

        /// A minimal RNG the checkpoint layer cannot capture.
        struct OpaqueRng(u64);
        impl rand::RngCore for OpaqueRng {
            fn next_u32(&mut self) -> u32 {
                (self.next_u64() >> 32) as u32
            }
            fn next_u64(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
                self.0
            }
        }

        #[test]
        fn park_then_unpark_matches_uninterrupted_run() {
            let engine = engine();

            // Reference: one session driven to completion uninterrupted.
            let mut reference = session(&engine, 7);
            while !reference.is_finished() {
                reference.step();
            }
            let expected = reference.finish();

            // Same seed, parked mid-run and resumed through the registry.
            let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare);
            let id = sched.admit(session(&engine, 7));
            for _ in 0..3 {
                sched.poll();
            }
            let mut registry = ParkingRegistry::new(Duration::from_secs(60));
            let token = sched.park(id, &mut registry).unwrap();
            assert_eq!(sched.len(), 0);
            assert_eq!(registry.len(), 1);
            assert!(registry.bytes() > 0);

            let resumed = sched.unpark(&mut registry, token, &engine).unwrap();
            assert_ne!(resumed, id, "resumed sessions get a fresh id");
            assert!(registry.is_empty());
            sched.run(|_| {});
            let answer = sched.finish(resumed).unwrap();
            assert_eq!(answer.ranked_labels(), expected.ranked_labels());
            for (a, b) in answer
                .result
                .estimates
                .iter()
                .zip(&expected.result.estimates)
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            let stats = registry.stats();
            assert_eq!(stats.parked_total, 1);
            assert_eq!(stats.resumed_total, 1);
            assert_eq!(stats.parked, 0);
            assert_eq!(stats.parked_bytes, 0);
        }

        #[test]
        fn park_failure_leaves_the_session_running() {
            let engine = engine();
            let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare);
            let id = sched.admit(
                VizQuery::new(&engine)
                    .group_by("airline")
                    .avg("delay")
                    .bound(100.0)
                    .resolution_pct(6.0)
                    .samples_per_round(24)
                    .start(OpaqueRng(42))
                    .unwrap(),
            );
            sched.poll();
            let mut registry = ParkingRegistry::new(Duration::from_secs(60));
            match sched.park(id, &mut registry) {
                Err(ParkError::Checkpoint(CheckpointError::OpaqueRng)) => {}
                other => panic!("expected OpaqueRng checkpoint error, got {other:?}"),
            }
            // The session is untouched: still scheduled, still cancellable.
            assert_eq!(sched.len(), 1);
            assert_eq!(sched.runnable_count(), 1);
            assert!(registry.is_empty());
            assert!(sched.finish(id).is_some());
        }

        #[test]
        fn parking_unknown_or_evicted_sessions_errors() {
            let engine = engine();
            let mut registry = ParkingRegistry::new(Duration::from_secs(60));
            let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare);
            let id = sched.admit(session(&engine, 1));
            let bogus = QueryId(999);
            assert_eq!(
                sched.park(bogus, &mut registry),
                Err(ParkError::NoSuchSession)
            );
            assert!(matches!(
                sched.unpark(&mut registry, 12345, &engine),
                Err(ParkError::NoSuchToken)
            ));
            sched.finish(id);
            assert_eq!(sched.park(id, &mut registry), Err(ParkError::NoSuchSession));
        }

        #[test]
        fn ttl_expires_parked_sessions_against_the_registry_clock() {
            let engine = engine();
            let clock = Arc::new(SimulatedClock::new());
            let mut registry = ParkingRegistry::with_clock(Duration::from_secs(30), clock.clone());
            let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare);
            let id = sched.admit(session(&engine, 3));
            sched.poll();
            let token = sched.park(id, &mut registry).unwrap();

            // One tick short of the TTL: still resumable.
            clock.advance(Duration::from_secs(29));
            assert!(registry.get(token).is_ok());

            // At exactly the TTL the entry is expired.
            clock.advance(Duration::from_secs(1));
            assert!(matches!(registry.get(token), Err(ParkError::NoSuchToken)));
            assert!(registry.is_empty());
            assert_eq!(registry.bytes(), 0);
            let stats = registry.stats();
            assert_eq!(stats.expired_total, 1);
            assert_eq!(stats.resumed_total, 0);
        }

        #[test]
        fn byte_cap_rejects_parks_and_counts_them() {
            let engine = engine();
            let mut registry = ParkingRegistry::new(Duration::from_secs(60)).with_byte_cap(1);
            let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare);
            let id = sched.admit(session(&engine, 5));
            sched.poll();
            match sched.park(id, &mut registry) {
                Err(ParkError::OverCapacity { needed, cap }) => {
                    assert!(needed > 1);
                    assert_eq!(cap, 1);
                }
                other => panic!("expected OverCapacity, got {other:?}"),
            }
            assert_eq!(registry.stats().rejected_total, 1);
            // Rejection leaves the session live.
            assert_eq!(sched.len(), 1);
            assert!(sched.finish(id).is_some());
        }

        #[test]
        fn tokens_are_deterministic_and_start_at_one() {
            let engine = engine();
            let mut registry = ParkingRegistry::new(Duration::from_secs(60));
            let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare);
            let a = sched.admit(session(&engine, 1));
            let b = sched.admit(session(&engine, 2));
            assert_eq!(sched.park(a, &mut registry).unwrap(), 1);
            assert_eq!(sched.park(b, &mut registry).unwrap(), 2);
        }

        #[test]
        fn reserved_tokens_support_refresh_and_discard() {
            let engine = engine();
            let mut registry = ParkingRegistry::new(Duration::from_secs(60));
            let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare);
            let id = sched.admit(session(&engine, 11));
            let token = registry.reserve();
            assert_eq!(token, 1);

            // Periodic durability refresh: checkpoint without removal,
            // upsert under the reserved token. parked_total counts the
            // token once, not per refresh.
            for _ in 0..3 {
                sched.poll();
                let ck = sched.checkpoint(id).unwrap();
                assert!(sched.stats(id).unwrap().checkpoint_bytes > 0);
                registry.park_reserved(token, ck).unwrap();
            }
            assert_eq!(registry.len(), 1);
            assert_eq!(registry.stats().parked_total, 1);
            assert_eq!(
                registry.bytes(),
                registry.get(token).unwrap().approx_bytes(),
                "refresh replaces the byte charge instead of accumulating it"
            );
            // The session is still live (checkpoint does not remove).
            assert_eq!(sched.len(), 1);

            // Disconnect: park the live session under the same token.
            assert_eq!(
                sched.park_reserved(id, &mut registry, token).unwrap(),
                token
            );
            assert_eq!(sched.len(), 0);

            // Completion elsewhere: discard drops the shadow without
            // touching resumed/expired counters.
            assert!(registry.discard(token));
            assert!(!registry.discard(token));
            assert!(registry.is_empty());
            assert_eq!(registry.bytes(), 0);
            let stats = registry.stats();
            assert_eq!(stats.resumed_total, 0);
            assert_eq!(stats.expired_total, 0);
        }

        #[test]
        fn park_resume_cycle_does_not_double_charge_the_global_budget() {
            let engine = engine();
            let mut registry = ParkingRegistry::new(Duration::from_secs(60));
            let mut sched = MultiQueryScheduler::new(SchedulePolicy::FairShare);
            let id = sched.admit(session(&engine, 9));
            for _ in 0..3 {
                sched.poll();
            }
            let before = sched.total_samples();
            let token = sched.park(id, &mut registry).unwrap();
            assert_eq!(
                sched.total_samples(),
                before,
                "parking retires the session's draws without refunding them"
            );
            sched.unpark(&mut registry, token, &engine).unwrap();
            assert_eq!(
                sched.total_samples(),
                before,
                "resuming un-retires exactly the parked draws"
            );
        }
    }
}
