//! Resumable query sessions: the streaming, budget-aware front door.
//!
//! [`QuerySession`] (created by [`crate::VizQuery::start`]) owns everything
//! a run needs — the storage-backed group samplers, the algorithm's state
//! machine, and the RNG — and advances **one round per [`QuerySession::step`]
//! call**, handing back a [`RoundUpdate`] after each. A dashboard can
//! therefore re-render the partial ordering after every round, stop the
//! moment the bars it cares about have certified, enforce sample or
//! wall-clock budgets, or cancel outright — and still walk away with the
//! best answer computed so far via [`QuerySession::finish`].
//!
//! # Progressive rendering, worked example
//!
//! ```
//! use rapidviz::needletail::{read_csv, CsvOptions, NeedleTail};
//! use rapidviz::{StepOutcome, VizQuery};
//! use rand::SeedableRng;
//!
//! let mut csv = String::from("airline,delay\n");
//! for i in 0..600 {
//!     // Three airlines with well-separated mean delays.
//!     let (name, delay) = match i % 3 {
//!         0 => ("AA", 40.0 + f64::from(i % 7)),
//!         1 => ("JB", 10.0 + f64::from(i % 5)),
//!         _ => ("UA", 80.0 + f64::from(i % 11)),
//!     };
//!     csv.push_str(&format!("{name},{delay}\n"));
//! }
//! let table = read_csv(&csv, &CsvOptions::default()).unwrap();
//! let engine = NeedleTail::new(table, &["airline"]).unwrap();
//!
//! let mut session = VizQuery::new(&engine)
//!     .group_by("airline")
//!     .avg("delay")
//!     .bound(100.0)
//!     .start(rand::rngs::StdRng::seed_from_u64(1))
//!     .unwrap();
//!
//! // Drive the session round by round, redrawing after each update.
//! let mut last = None;
//! for update in session.by_ref() {
//!     // Bars certified so far, in display order — safe to render now.
//!     for &g in &update.snapshot.certified_order() {
//!         let _bar = (&update.snapshot.labels[g], update.snapshot.estimates[g]);
//!     }
//!     last = Some(update.outcome);
//! }
//! assert_eq!(last, Some(StepOutcome::Converged));
//! let answer = session.finish();
//! assert_eq!(answer.ranked_labels(), vec!["JB", "AA", "UA"]);
//! assert!(answer.fraction_sampled() < 1.0);
//! ```

use rand::{RngCore, SeedableRng};
use rapidviz_core::clock::{Clock, SystemClock};
use rapidviz_core::extensions::{CountSource, IFocusSum1Stepper, IFocusSum2Stepper};
use rapidviz_core::runner::AlgorithmStepper;
use rapidviz_core::saved::{RestoreError, SavedStepper};
use rapidviz_core::{
    viz, IFocusStepper, IRefineStepper, RoundRobinStepper, RunResult, ScanStepper, Snapshot,
    StepOutcome,
};
use rapidviz_needletail::NeedleTail;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::adapter::{NeedletailGroup, SizedNeedletailGroup};
use crate::checkpoint::{CheckpointError, QuerySpec, SessionCheckpoint};

/// The mean-space algorithm steppers a session can drive (AVG under any
/// ordering algorithm, plus SUM with known group sizes).
#[derive(Debug)]
pub(crate) enum MeanStepper {
    /// IFOCUS (Algorithm 1 / IFOCUS-R).
    IFocus(IFocusStepper),
    /// IREFINE (Algorithm 3).
    IRefine(IRefineStepper),
    /// The ROUNDROBIN baseline.
    RoundRobin(RoundRobinStepper),
    /// The exhaustive SCAN baseline (one group per step).
    Scan(ScanStepper),
    /// SUM with known group sizes (Algorithm 4).
    Sum1(IFocusSum1Stepper),
}

/// A session's algorithm state machine paired with the groups it samples.
#[derive(Debug)]
pub(crate) enum SessionEngine {
    /// Algorithms over plain [`NeedletailGroup`] handles.
    Mean {
        /// The round-level state machine.
        stepper: MeanStepper,
        /// Storage-backed samplers, one per group.
        groups: Vec<NeedletailGroup>,
    },
    /// Algorithm 5 over size-estimating handles (the COUNT reduction).
    Sized {
        /// The round-level state machine.
        stepper: IFocusSum2Stepper,
        /// Size-estimating samplers wrapped in the COUNT rewrite.
        groups: Vec<CountSource<SizedNeedletailGroup>>,
    },
}

/// The RNG a session owns. The concrete shim [`rand::rngs::StdRng`] is
/// kept visible (not erased behind `dyn RngCore`) so
/// [`QuerySession::checkpoint`] can capture its xoshiro256** state words;
/// any other RNG is boxed as opaque — fully usable, but the session then
/// refuses to checkpoint with [`CheckpointError::OpaqueRng`].
pub(crate) enum SessionRng {
    /// The checkpointable shim generator.
    Std(rand::rngs::StdRng),
    /// Any other caller-supplied RNG.
    Opaque(Box<dyn RngCore>),
}

impl SessionRng {
    /// Wraps a caller RNG, detecting the shim `StdRng` by concrete type.
    pub(crate) fn capture<R: RngCore + 'static>(rng: R) -> Self {
        let mut slot = Some(rng);
        let any = &mut slot as &mut dyn std::any::Any;
        if let Some(std) = any.downcast_mut::<Option<rand::rngs::StdRng>>() {
            if let Some(r) = std.take() {
                return SessionRng::Std(r);
            }
        }
        match slot.take() {
            Some(r) => SessionRng::Opaque(Box::new(r)),
            // The slot is emptied only on the `Std` path above, which
            // returns before reaching here.
            None => unreachable!("rng slot is still full on the opaque path"),
        }
    }
}

impl RngCore for SessionRng {
    fn next_u32(&mut self) -> u32 {
        match self {
            SessionRng::Std(r) => r.next_u32(),
            SessionRng::Opaque(r) => r.next_u32(),
        }
    }

    fn next_u64(&mut self) -> u64 {
        match self {
            SessionRng::Std(r) => r.next_u64(),
            SessionRng::Opaque(r) => r.next_u64(),
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        match self {
            SessionRng::Std(r) => r.fill_bytes(dest),
            SessionRng::Opaque(r) => r.fill_bytes(dest),
        }
    }
}

impl SessionEngine {
    fn step(&mut self, rng: &mut dyn RngCore) -> StepOutcome {
        match self {
            SessionEngine::Mean { stepper, groups } => match stepper {
                MeanStepper::IFocus(s) => s.step(groups.as_mut_slice(), rng),
                MeanStepper::IRefine(s) => s.step(groups.as_mut_slice(), rng),
                MeanStepper::RoundRobin(s) => s.step(groups.as_mut_slice(), rng),
                MeanStepper::Scan(s) => s.step_any(groups.as_mut_slice(), rng),
                MeanStepper::Sum1(s) => s.step_any(groups.as_mut_slice(), rng),
            },
            SessionEngine::Sized { stepper, groups } => stepper.step(groups.as_mut_slice(), rng),
        }
    }

    fn snapshot(&self) -> Snapshot {
        match self {
            SessionEngine::Mean { stepper, .. } => match stepper {
                MeanStepper::IFocus(s) => s.snapshot(),
                MeanStepper::IRefine(s) => s.snapshot(),
                MeanStepper::RoundRobin(s) => s.snapshot(),
                MeanStepper::Scan(s) => s.snapshot(),
                MeanStepper::Sum1(s) => s.snapshot(),
            },
            SessionEngine::Sized { stepper, .. } => stepper.snapshot(),
        }
    }

    fn total_samples(&self) -> u64 {
        match self {
            SessionEngine::Mean { stepper, .. } => match stepper {
                MeanStepper::IFocus(s) => s.total_samples(),
                MeanStepper::IRefine(s) => s.total_samples(),
                MeanStepper::RoundRobin(s) => s.total_samples(),
                MeanStepper::Scan(s) => s.total_samples(),
                MeanStepper::Sum1(s) => s.total_samples(),
            },
            SessionEngine::Sized { stepper, .. } => stepper.total_samples(),
        }
    }

    fn approx_bytes(&self) -> usize {
        match self {
            SessionEngine::Mean { stepper, .. } => match stepper {
                MeanStepper::IFocus(s) => s.approx_bytes(),
                MeanStepper::IRefine(s) => s.approx_bytes(),
                MeanStepper::RoundRobin(s) => s.approx_bytes(),
                MeanStepper::Scan(s) => s.approx_bytes(),
                MeanStepper::Sum1(s) => s.approx_bytes(),
            },
            SessionEngine::Sized { stepper, .. } => stepper.approx_bytes(),
        }
    }

    fn finish(self) -> RunResult {
        match self {
            SessionEngine::Mean { stepper, .. } => match stepper {
                MeanStepper::IFocus(s) => s.finish(),
                MeanStepper::IRefine(s) => s.finish(),
                MeanStepper::RoundRobin(s) => s.finish(),
                MeanStepper::Scan(s) => s.finish(),
                MeanStepper::Sum1(s) => s.finish(),
            },
            SessionEngine::Sized { stepper, .. } => stepper.finish(),
        }
    }

    /// The stepper's resumable state (every session-reachable stepper
    /// supports save, so `None` signals an internal gap, not user error).
    fn save(&self) -> Option<SavedStepper> {
        match self {
            SessionEngine::Mean { stepper, .. } => match stepper {
                MeanStepper::IFocus(s) => s.save(),
                MeanStepper::IRefine(s) => s.save(),
                MeanStepper::RoundRobin(s) => s.save(),
                MeanStepper::Scan(s) => AlgorithmStepper::save(s),
                MeanStepper::Sum1(s) => s.save(),
            },
            SessionEngine::Sized { stepper, .. } => Some(stepper.save()),
        }
    }

    /// Overwrites the stepper's mutable state from a checkpoint bag.
    fn restore(&mut self, saved: &SavedStepper) -> Result<(), RestoreError> {
        match self {
            SessionEngine::Mean { stepper, .. } => match stepper {
                MeanStepper::IFocus(s) => s.restore(saved),
                MeanStepper::IRefine(s) => s.restore(saved),
                MeanStepper::RoundRobin(s) => s.restore(saved),
                MeanStepper::Scan(s) => AlgorithmStepper::restore(s, saved),
                MeanStepper::Sum1(s) => s.restore(saved),
            },
            SessionEngine::Sized { stepper, .. } => stepper.restore(saved),
        }
    }

    /// Per-group without-replacement permutation records, in group order.
    /// Empty for the `COUNT` engine, whose with-replacement samplers are
    /// stateless.
    fn sampler_states(&self) -> Vec<(u64, Vec<(u64, u64)>)> {
        match self {
            SessionEngine::Mean { groups, .. } => groups
                .iter()
                .map(NeedletailGroup::permutation_state)
                .collect(),
            SessionEngine::Sized { .. } => Vec::new(),
        }
    }

    /// Restores permutation records captured by
    /// [`SessionEngine::sampler_states`] onto freshly planned groups.
    fn restore_samplers(
        &mut self,
        samplers: &[(u64, Vec<(u64, u64)>)],
    ) -> Result<(), CheckpointError> {
        match self {
            SessionEngine::Mean { groups, .. } => {
                if samplers.len() != groups.len() {
                    return Err(CheckpointError::Mismatch(format!(
                        "checkpoint has {} sampler records for {} groups",
                        samplers.len(),
                        groups.len()
                    )));
                }
                for (g, (drawn, entries)) in groups.iter_mut().zip(samplers) {
                    g.restore_permutation(*drawn, entries);
                }
                Ok(())
            }
            SessionEngine::Sized { .. } => {
                if samplers.is_empty() {
                    Ok(())
                } else {
                    Err(CheckpointError::Mismatch(
                        "COUNT sessions sample with replacement; the checkpoint should carry \
                         no sampler records"
                            .into(),
                    ))
                }
            }
        }
    }
}

/// How the engine's planning caches treated one query's planning phase:
/// per-cache hit/miss deltas captured around
/// [`crate::VizQuery::start`] / [`crate::VizQuery::execute`] planning.
///
/// A warm repeat of a seen query plans entirely from cache
/// (`plan_hits > 0`, zero misses); a cold or cache-evicted plan shows the
/// misses instead. A serving layer watches these to see when workload
/// filter diversity outruns the LRUs — silently paying cold-plan cost on
/// every request — rather than guessing from latency. Deltas are read
/// from the engine's shared [`rapidviz_needletail::MetricsSnapshot`], so
/// if several queries plan concurrently on one engine each delta may
/// include a neighbour's lookups; totals across sessions stay exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Predicate-bitmap LRU hits during planning.
    pub predicate_hits: u64,
    /// Predicate-bitmap LRU misses (predicate evaluated cold).
    pub predicate_misses: u64,
    /// Group-plan LRU hits (ready `(label, rows)` sets reused).
    pub plan_hits: u64,
    /// Group-plan LRU misses (plan built cold).
    pub plan_misses: u64,
    /// Composite-index LRU hits (multi-attribute group-bys only).
    pub composite_hits: u64,
    /// Composite-index LRU misses.
    pub composite_misses: u64,
}

impl PlanCacheStats {
    /// The delta between two engine metrics snapshots, projected onto the
    /// planning-cache counters (`after` taken after planning, `before`
    /// just before).
    #[must_use]
    pub fn delta(
        before: &rapidviz_needletail::MetricsSnapshot,
        after: &rapidviz_needletail::MetricsSnapshot,
    ) -> Self {
        Self {
            predicate_hits: after.predicate_cache_hits - before.predicate_cache_hits,
            predicate_misses: after.predicate_cache_misses - before.predicate_cache_misses,
            plan_hits: after.plan_cache_hits - before.plan_cache_hits,
            plan_misses: after.plan_cache_misses - before.plan_cache_misses,
            composite_hits: after.composite_cache_hits - before.composite_cache_hits,
            composite_misses: after.composite_cache_misses - before.composite_cache_misses,
        }
    }

    /// Whether planning ran entirely warm: at least one cache hit and not
    /// a single miss.
    #[must_use]
    pub fn fully_warm(&self) -> bool {
        self.predicate_misses == 0
            && self.plan_misses == 0
            && self.composite_misses == 0
            && (self.plan_hits > 0 || self.predicate_hits > 0 || self.composite_hits > 0)
    }
}

/// What one session round produced: the step outcome plus a full
/// [`Snapshot`] for progressive rendering, and bookkeeping deltas.
#[derive(Debug, Clone)]
pub struct RoundUpdate {
    /// Outcome of the round ([`StepOutcome::Running`] means keep stepping).
    pub outcome: StepOutcome,
    /// Round counter after this step.
    pub round: u64,
    /// Total samples drawn so far, across all groups.
    pub total_samples: u64,
    /// `total_samples / population`, clamped to at most 1.0 — monotone
    /// over a session's updates. With-replacement sampling on small groups
    /// can draw more samples than there are rows; the clamp keeps the
    /// value an honest "fraction of the data touched" for progress bars.
    pub fraction_sampled: f64,
    /// Groups whose ordering position certified **during this step**
    /// (indices in input order). Their estimates are frozen from here on.
    pub newly_certified: Vec<usize>,
    /// Full point-in-time view: estimates, confidence intervals, active
    /// set, and the certified partial ordering.
    pub snapshot: Snapshot,
}

/// Budget + progress bookkeeping shared by the blocking `execute()` loop
/// and the streaming [`QuerySession`] — both drive exactly this state, so
/// their fixed-seed results are identical by construction.
#[derive(Debug)]
pub(crate) struct SessionCore {
    engine: SessionEngine,
    population: u64,
    max_samples: Option<u64>,
    deadline: Option<Instant>,
    /// Time source the deadline is checked against — the builder's
    /// configured clock ([`crate::VizQuery::clock`]), so simulated time
    /// governs budgets exactly like the real wall clock does.
    clock: Arc<dyn Clock>,
    /// Active flags after the last delivered update (for `newly_certified`).
    prev_active: Vec<bool>,
    /// Set once a non-`Running` outcome has been returned.
    terminal: Option<StepOutcome>,
    /// Whether the terminal outcome came from a session budget (sample or
    /// deadline), as opposed to natural convergence.
    budget_tripped: bool,
    /// Planning-cache hit/miss delta captured while this query planned.
    planning: PlanCacheStats,
}

impl SessionCore {
    pub(crate) fn new(
        engine: SessionEngine,
        population: u64,
        max_samples: Option<u64>,
        deadline: Option<Instant>,
        clock: Arc<dyn Clock>,
        planning: PlanCacheStats,
    ) -> Self {
        let prev_active = engine.snapshot().active;
        Self {
            engine,
            population,
            max_samples,
            deadline,
            clock,
            prev_active,
            terminal: None,
            budget_tripped: false,
            planning,
        }
    }

    pub(crate) fn planning_stats(&self) -> PlanCacheStats {
        self.planning
    }

    fn budget_hit(&self) -> bool {
        self.max_samples
            .is_some_and(|cap| self.engine.total_samples() >= cap)
            || self.deadline.is_some_and(|d| self.clock.now() >= d)
    }

    /// Advances one round without building a `RoundUpdate` — the blocking
    /// `execute()` path, which skips the per-round snapshot allocation.
    pub(crate) fn raw_step(&mut self, rng: &mut dyn RngCore) -> StepOutcome {
        if let Some(t) = self.terminal {
            return t;
        }
        let outcome = if self.budget_hit() {
            self.budget_tripped = true;
            StepOutcome::BudgetExhausted
        } else {
            self.engine.step(rng)
        };
        if !outcome.is_running() {
            self.terminal = Some(outcome);
        }
        outcome
    }

    /// Advances one round and packages the full per-round update.
    pub(crate) fn step_update(&mut self, rng: &mut dyn RngCore) -> RoundUpdate {
        let outcome = self.raw_step(rng);
        let snapshot = self.snapshot();
        let newly_certified: Vec<usize> = self
            .prev_active
            .iter()
            .zip(&snapshot.active)
            .enumerate()
            .filter(|(_, (&was, &is))| was && !is)
            .map(|(i, _)| i)
            .collect();
        self.prev_active.clone_from(&snapshot.active);
        let total_samples = snapshot.total_samples();
        RoundUpdate {
            outcome,
            round: snapshot.rounds,
            total_samples,
            fraction_sampled: fraction(total_samples, self.population),
            newly_certified,
            snapshot,
        }
    }

    pub(crate) fn snapshot(&self) -> Snapshot {
        let mut snap = self.engine.snapshot();
        // The stepper only knows about its own round cap; session budgets
        // truncate the run just the same, and snapshots must say so.
        snap.truncated |= self.budget_tripped;
        snap
    }

    pub(crate) fn total_samples(&self) -> u64 {
        self.engine.total_samples()
    }

    pub(crate) fn population(&self) -> u64 {
        self.population
    }

    pub(crate) fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    pub(crate) fn approx_bytes(&self) -> usize {
        self.engine.approx_bytes() + self.prev_active.capacity() * std::mem::size_of::<bool>()
    }

    pub(crate) fn outcome(&self) -> StepOutcome {
        self.terminal.unwrap_or(StepOutcome::Running)
    }

    // --- checkpoint/resume surface (crate-private) --------------------

    pub(crate) fn engine(&self) -> &SessionEngine {
        &self.engine
    }

    pub(crate) fn engine_mut(&mut self) -> &mut SessionEngine {
        &mut self.engine
    }

    /// Time left until the deadline as measured by the session clock —
    /// what a checkpoint stores so parked wall time never counts against
    /// the query's budget.
    pub(crate) fn remaining_time(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(self.clock.now()))
    }

    pub(crate) fn prev_active(&self) -> &[bool] {
        &self.prev_active
    }

    pub(crate) fn set_prev_active(&mut self, prev_active: Vec<bool>) {
        self.prev_active = prev_active;
    }

    pub(crate) fn terminal(&self) -> Option<StepOutcome> {
        self.terminal
    }

    pub(crate) fn budget_tripped(&self) -> bool {
        self.budget_tripped
    }

    pub(crate) fn set_terminal(&mut self, terminal: Option<StepOutcome>, budget_tripped: bool) {
        self.terminal = terminal;
        self.budget_tripped = budget_tripped;
    }

    pub(crate) fn finish(self) -> QueryAnswer {
        let outcome = self.outcome();
        let mut result = self.engine.finish();
        if self.budget_tripped {
            // Session budgets truncate exactly like the algorithms' own
            // round caps: best-effort estimates, flagged as such.
            result.truncated = true;
        }
        QueryAnswer {
            result,
            population: self.population,
            outcome,
        }
    }
}

fn fraction(samples: u64, population: u64) -> f64 {
    if population == 0 {
        0.0
    } else {
        // With-replacement draws can exceed the population on small
        // groups; clamp so the reported fraction stays in [0, 1].
        (samples as f64 / population as f64).min(1.0)
    }
}

/// A resumable, cancellable query run. Created by
/// [`crate::VizQuery::start`]; see the [module docs](self) for a worked
/// progressive-rendering example.
///
/// Drive it either poll-style ([`QuerySession::step`] until the outcome
/// stops being [`StepOutcome::Running`]) or as an iterator (each item is a
/// [`RoundUpdate`]; iteration ends after the first terminal update).
/// At any point:
///
/// * [`QuerySession::snapshot`] — current estimates / intervals / partial
///   ordering without advancing;
/// * [`QuerySession::finish`] — consume the session and get the best
///   current [`QueryAnswer`] (this is also how you **cancel**: stop
///   stepping and call `finish`, or just drop the session).
///
/// Budgets configured on the builder ([`crate::VizQuery::max_samples`],
/// [`crate::VizQuery::timeout`] / [`crate::VizQuery::deadline`]) are
/// checked before every round; once one trips, `step` reports
/// [`StepOutcome::BudgetExhausted`] and the session stops advancing, with
/// `fraction_sampled` frozen at its last value (clamped to at most 1 —
/// with-replacement sampling on a small population can draw more samples
/// than there are rows).
pub struct QuerySession {
    core: SessionCore,
    rng: SessionRng,
    delivered_terminal: bool,
    /// The re-plannable query description, embedded in checkpoints.
    /// `None` only for sessions not created through
    /// [`crate::VizQuery::start`] (none exist today) — those cannot
    /// checkpoint.
    spec: Option<QuerySpec>,
}

impl std::fmt::Debug for QuerySession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuerySession")
            .field("core", &self.core)
            .field("delivered_terminal", &self.delivered_terminal)
            .finish_non_exhaustive()
    }
}

impl QuerySession {
    pub(crate) fn new(core: SessionCore, rng: SessionRng, spec: Option<QuerySpec>) -> Self {
        Self {
            core,
            rng,
            delivered_terminal: false,
            spec,
        }
    }

    /// Captures the session's full resumable state as a
    /// [`SessionCheckpoint`]: the query spec, the stepper's mutable state,
    /// per-group sampler permutations, the RNG words, and budget
    /// bookkeeping (time-to-deadline, not an absolute instant — parked
    /// wall time never counts against the query). The engine's planning
    /// caches are deliberately **not** captured; resume re-plans through
    /// the normal path, so the checkpoint restores on a restarted server
    /// with cold caches. See [`crate::checkpoint`] for the format.
    ///
    /// Stepping a resumed session produces a round stream bit-identical
    /// (`f64::to_bits`) to the uninterrupted original.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::OpaqueRng`] when the session was started with an
    /// RNG other than the shim [`rand::rngs::StdRng`];
    /// [`CheckpointError::Unsupported`] when the session was not created
    /// through [`crate::VizQuery::start`].
    pub fn checkpoint(&self) -> Result<SessionCheckpoint, CheckpointError> {
        let Some(spec) = &self.spec else {
            return Err(CheckpointError::Unsupported(
                "session was not created by VizQuery::start",
            ));
        };
        let SessionRng::Std(rng) = &self.rng else {
            return Err(CheckpointError::OpaqueRng);
        };
        let Some(stepper) = self.core.engine().save() else {
            return Err(CheckpointError::Unsupported(
                "the session's stepper does not support save",
            ));
        };
        Ok(SessionCheckpoint {
            spec: spec.clone(),
            stepper,
            samplers: self.core.engine().sampler_states(),
            rng: rng.state(),
            remaining: self.core.remaining_time(),
            prev_active: self.core.prev_active().to_vec(),
            terminal: self.core.terminal(),
            budget_tripped: self.core.budget_tripped(),
            delivered_terminal: self.delivered_terminal,
        })
    }

    /// Rebuilds a session from a checkpoint against `engine`, measuring
    /// any remaining wall-clock budget with the real system clock. See
    /// [`QuerySession::resume_with_clock`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuerySession::resume_with_clock`].
    pub fn resume(
        engine: &NeedleTail,
        checkpoint: &SessionCheckpoint,
    ) -> Result<Self, CheckpointError> {
        Self::resume_with_clock(engine, checkpoint, Arc::new(SystemClock))
    }

    /// Rebuilds a session from a checkpoint against `engine`: re-plans the
    /// embedded query (rebuilding all derived state — group handles,
    /// labels, ε schedules — through the ordinary planning path, caches
    /// and all), then overwrites the mutable state from the checkpoint:
    /// stepper estimators and flags, per-group sampler permutations, the
    /// RNG words, and budget bookkeeping. The remaining time-to-deadline
    /// is re-anchored at `clock.now()`.
    ///
    /// The resumed session's round stream is bit-identical to what the
    /// original would have produced had it never paused.
    ///
    /// # Errors
    ///
    /// * [`CheckpointError::Engine`] — re-planning failed (schema drift);
    /// * [`CheckpointError::Restore`] / [`CheckpointError::Mismatch`] —
    ///   the checkpoint does not fit the re-planned query's shape (group
    ///   count drift between checkpoint and resume).
    pub fn resume_with_clock(
        engine: &NeedleTail,
        checkpoint: &SessionCheckpoint,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, CheckpointError> {
        let query = crate::VizQuery::from_spec(
            engine,
            &checkpoint.spec,
            Arc::clone(&clock),
            checkpoint.remaining,
        );
        // The bootstrap draws during re-planning consume a throwaway RNG
        // and scratch sampler state; everything they touch is overwritten
        // below, so the seed is irrelevant.
        let mut throwaway = rand::rngs::StdRng::seed_from_u64(0);
        let mut core = query.prepare_core(&mut throwaway)?;
        core.engine_mut().restore(&checkpoint.stepper)?;
        core.engine_mut().restore_samplers(&checkpoint.samplers)?;
        if checkpoint.prev_active.len() != core.prev_active().len() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint has {} active flags for {} groups",
                checkpoint.prev_active.len(),
                core.prev_active().len()
            )));
        }
        core.set_prev_active(checkpoint.prev_active.clone());
        core.set_terminal(checkpoint.terminal, checkpoint.budget_tripped);
        Ok(Self {
            core,
            rng: SessionRng::Std(rand::rngs::StdRng::from_state(checkpoint.rng)),
            delivered_terminal: checkpoint.delivered_terminal,
            spec: Some(checkpoint.spec.clone()),
        })
    }

    /// Advances one round and returns its update. After termination this
    /// keeps returning the terminal outcome without advancing, so a
    /// poll-style driver can simply stop on a non-`Running` outcome.
    ///
    /// The first terminal update — whether a budget deadline slipped past
    /// between rounds or the run converged — is delivered exactly once:
    /// repeated `step` calls re-report it (frozen, for pollers that missed
    /// it), but the [`Iterator`] view never re-yields it, even when `step`
    /// and iteration are mixed on the same session.
    pub fn step(&mut self) -> RoundUpdate {
        let update = self.core.step_update(&mut self.rng);
        if !update.outcome.is_running() {
            // Mark the terminal update consumed for the Iterator view too:
            // without this, reaching the terminal via an explicit `step()`
            // and then iterating would deliver it a second time.
            self.delivered_terminal = true;
        }
        update
    }

    /// The current estimates, intervals, active set, and certified partial
    /// ordering — without advancing the run.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.core.snapshot()
    }

    /// Total samples drawn so far.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.core.total_samples()
    }

    /// Total rows eligible across groups.
    #[must_use]
    pub fn population(&self) -> u64 {
        self.core.population()
    }

    /// Fraction of eligible rows sampled so far (monotone over the run,
    /// clamped to at most 1.0).
    #[must_use]
    pub fn fraction_sampled(&self) -> f64 {
        fraction(self.total_samples(), self.population())
    }

    /// The effective wall-clock deadline configured on the builder
    /// ([`crate::VizQuery::deadline`] combined with
    /// [`crate::VizQuery::timeout`], whichever ends first), if any — what a
    /// deadline-aware multi-query scheduler prioritizes by.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.core.deadline()
    }

    /// Approximate resident bytes of the session's algorithm state
    /// (estimators, activity flags, scratch arenas) — the figure a
    /// multi-query scheduler charges to this session's memory account.
    /// The storage layer's per-group samplers (bitmap copies, permutation
    /// maps) are deliberately not counted: accounting covers the algorithm
    /// layer, whose footprint is what snapshots and round bookkeeping
    /// actually grow.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.core.approx_bytes()
    }

    /// How the engine's planning caches treated this query's planning
    /// phase (captured once at [`crate::VizQuery::start`]): a warm repeat
    /// of a seen query shows `plan_hits > 0` with zero misses. A
    /// multi-query scheduler copies this into its
    /// [`crate::SessionStats`] at admission, and the serving layer echoes
    /// the engine-wide totals in its stats frame.
    #[must_use]
    pub fn planning_stats(&self) -> PlanCacheStats {
        self.core.planning_stats()
    }

    /// The session's current terminal status: [`StepOutcome::Running`]
    /// while more rounds are needed, otherwise the outcome that ended it.
    #[must_use]
    pub fn outcome(&self) -> StepOutcome {
        self.core.outcome()
    }

    /// Whether the session has terminated (converged or budget-exhausted).
    #[must_use]
    pub fn is_finished(&self) -> bool {
        !self.outcome().is_running()
    }

    /// Consumes the session and returns the best current answer: the final
    /// one after convergence; best-effort with `result.truncated` set
    /// after budget exhaustion; and after mid-run cancellation (stop
    /// stepping, call `finish`) best-effort with the answer's `outcome`
    /// left at [`StepOutcome::Running`] — check
    /// [`QueryAnswer::converged`](crate::QueryAnswer::converged) before
    /// presenting any of these as guaranteed.
    #[must_use]
    pub fn finish(self) -> QueryAnswer {
        self.core.finish()
    }
}

impl Iterator for QuerySession {
    type Item = RoundUpdate;

    /// Yields one [`RoundUpdate`] per round, ending (returns `None`) after
    /// the first terminal update has been delivered. Use
    /// [`Iterator::by_ref`] to keep the session afterwards for `finish()`.
    fn next(&mut self) -> Option<RoundUpdate> {
        if self.delivered_terminal {
            return None;
        }
        // `step` flags the terminal update as delivered, so the iterator
        // fuses right after yielding it.
        Some(self.step())
    }
}

/// A completed (or best-effort) query: the run result plus display helpers.
///
/// Constructed by [`QuerySession::finish`] (and by
/// [`VizQuery::execute`](crate::VizQuery::execute), which drives a
/// session to completion internally); re-exported from [`crate::query`].
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// The underlying algorithm result.
    pub result: RunResult,
    /// Total rows eligible across groups.
    pub population: u64,
    /// How the run ended: [`StepOutcome::Converged`] for a natural finish,
    /// [`StepOutcome::BudgetExhausted`] when a round cap or session budget
    /// tripped (estimates are best-effort and `result.truncated` is set),
    /// or [`StepOutcome::Running`] when a session was finished/cancelled
    /// mid-run.
    pub outcome: StepOutcome,
}

impl QueryAnswer {
    /// Whether the run terminated naturally with its full `1 − δ` ordering
    /// guarantee (as opposed to budget exhaustion or cancellation).
    #[must_use]
    pub fn converged(&self) -> bool {
        self.outcome == StepOutcome::Converged
    }
    /// Group labels sorted by ascending estimate.
    #[must_use]
    pub fn ranked_labels(&self) -> Vec<&str> {
        self.result.ranked().into_iter().map(|(l, _)| l).collect()
    }

    /// Fraction of eligible rows sampled.
    #[must_use]
    pub fn fraction_sampled(&self) -> f64 {
        self.result.fraction_sampled(self.population)
    }

    /// Renders the answer as a bar chart (ascending), `width` chars wide.
    #[must_use]
    pub fn to_bar_chart(&self, width: usize) -> String {
        let ranked = self.result.ranked();
        let labels: Vec<&str> = ranked.iter().map(|(l, _)| *l).collect();
        let values: Vec<f64> = ranked.iter().map(|(_, v)| *v).collect();
        viz::bar_chart(&labels, &values, width)
    }
}
