//! # rapidviz — rapid sampling for visualizations with ordering guarantees
//!
//! A Rust implementation of the IFOCUS family of visualization-aware sampling
//! algorithms and the NEEDLETAIL sampling engine from
//! *"Rapid Sampling for Visualizations with Ordering Guarantees"*
//! (Kim, Blais, Parameswaran, Indyk, Madden, Rubinfeld — VLDB 2015).
//!
//! This facade crate re-exports the workspace crates under stable paths:
//!
//! * [`stats`] — concentration inequalities and the anytime ε-schedule.
//! * [`needletail`] — the bitmap-indexed sampling storage engine.
//! * [`datagen`] — the paper's synthetic workloads and the flight model.
//! * [`core`] — IFOCUS / IREFINE / ROUNDROBIN / SCAN and all §6 extensions.
//!
//! ## Quickstart
//!
//! ```
//! use rapidviz::core::{AlgoConfig, IFocus};
//! use rapidviz::datagen::VecGroup;
//! use rand::SeedableRng;
//!
//! // Three groups of bounded values with well-separated means.
//! let mut groups: Vec<VecGroup> = [30.0, 55.0, 80.0]
//!     .iter()
//!     .enumerate()
//!     .map(|(i, &mu)| {
//!         VecGroup::new(
//!             format!("g{i}"),
//!             (0..20_000).map(|j| mu + f64::from(j % 7) - 3.0).collect(),
//!         )
//!     })
//!     .collect();
//!
//! let config = AlgoConfig::new(100.0, 0.05); // values in [0, 100], δ = 0.05
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let result = IFocus::new(config).run(&mut groups, &mut rng);
//!
//! // Estimates are ordered like the true means, w.p. ≥ 1 − δ.
//! assert!(result.estimates[0] < result.estimates[1]);
//! assert!(result.estimates[1] < result.estimates[2]);
//! // ...while sampling only a fraction of the data.
//! assert!(result.total_samples() < 3 * 20_000);
//! ```

pub mod adapter;
pub mod checkpoint;
pub mod query;
pub mod scheduler;
pub mod session;

pub use adapter::{query_groups, query_sized_groups, NeedletailGroup, SizedNeedletailGroup};
pub use checkpoint::{CheckpointError, QuerySpec, SessionCheckpoint};
pub use query::{Aggregate, AlgorithmChoice, QueryAnswer, VizQuery};
pub use rapidviz_core as core;
pub use rapidviz_core::{Clock, SimulatedClock, Snapshot, StepOutcome, SystemClock};
pub use rapidviz_datagen as datagen;
pub use rapidviz_needletail as needletail;
pub use rapidviz_stats as stats;
pub use scheduler::{
    MultiQueryScheduler, ParkError, ParkingRegistry, ParkingStats, QueryId, RunOutcome,
    SchedulePolicy, SchedulerEvent, SessionStats,
};
pub use session::{PlanCacheStats, QuerySession, RoundUpdate};
